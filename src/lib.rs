//! # Pangea
//!
//! A Rust reproduction of **"Pangea: Monolithic Distributed Storage for
//! Data Analytics"** (Zou, Iyengar, Jermaine — VLDB 2019,
//! arXiv:1808.06094).
//!
//! Pangea manages *all* analytics data — user data, job data, shuffle
//! data, and hash data — in one monolithic storage system: a unified
//! buffer pool per node, locality sets tagged with semantic attributes,
//! a data-aware paging policy, heterogeneous replication that doubles as
//! failure recovery, and in-storage services (sequential read/write,
//! shuffle, hash aggregation, join/broadcast maps).
//!
//! ## Crate map
//!
//! | module | crate | paper section |
//! |---|---|---|
//! | [`core`] | `pangea-core` | §3–§6, §8 — locality sets, node engine, services |
//! | [`storage`] | `pangea-storage` | §4–§5 — buffer pool, disks, paged files |
//! | [`paging`] | `pangea-paging` | §6 — data-aware policy + LRU/MRU/DBMIN baselines |
//! | [`cluster`] | `pangea-cluster` | §3.3, §7 — manager, dispatch, replication, recovery |
//! | [`coord`] | `pangea-coord` | §3.3, §8 — control plane: `pangea-mgr`, membership, `RemoteCluster` |
//! | [`net`] | `pangea-net` | wire layer — `Transport` seam, TCP framing + protocol, `pangead`, client |
//! | [`obs`] | `pangea-obs` | observability — metrics registry, trace rings, retained time-series, span trees |
//! | [`layered`] | `pangea-layered` | §9 baselines — HDFS/Alluxio/Ignite/Spark/OS/Redis |
//! | [`query`] | `pangea-query` | §9.1.2 — TPC-H on Pangea and on Spark |
//! | [`kmeans`] | `pangea-kmeans` | §9.1.1 — the Fig. 1 workload |
//! | [`common`] | `pangea-common` | ids, errors, clock, throttles, codec |
//! | [`alloc`] | `pangea-alloc` | §5 — TLSF and slab pool allocators |
//!
//! ## Quickstart
//!
//! ```
//! use pangea::prelude::*;
//!
//! let dir = std::env::temp_dir().join(format!("pangea-doc-{}", std::process::id()));
//! let node = StorageNode::new(
//!     NodeConfig::new(&dir).with_pool_capacity(pangea::common::MB),
//! ).unwrap();
//!
//! // A transient (write-back) locality set, written sequentially…
//! let set = node.create_set("events", SetOptions::write_back()).unwrap();
//! let mut writer = set.writer();
//! for i in 0..1000u64 {
//!     writer.add_object(format!("event-{i}").as_bytes()).unwrap();
//! }
//! writer.finish().unwrap();
//!
//! // …and scanned through the sequential read service.
//! let mut count = 0;
//! for num in set.page_numbers() {
//!     let pin = set.pin_page(num).unwrap();
//!     ObjectIter::new(&pin).for_each(|_| count += 1);
//! }
//! assert_eq!(count, 1000);
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

pub use pangea_alloc as alloc;
pub use pangea_cluster as cluster;
pub use pangea_common as common;
pub use pangea_coord as coord;
pub use pangea_core as core;
pub use pangea_kmeans as kmeans;
pub use pangea_layered as layered;
pub use pangea_net as net;
pub use pangea_obs as obs;
pub use pangea_paging as paging;
pub use pangea_query as query;
pub use pangea_storage as storage;

/// The names most applications need.
pub mod prelude {
    pub use pangea_cluster::{ClusterConfig, DispatchConfig, DistSet, PartitionScheme, SimCluster};
    pub use pangea_common::{NodeId, PageId, PangeaError, Result, SetId};
    pub use pangea_coord::{MgrServer, RemoteCluster, WorkerAgent};
    pub use pangea_core::{
        broadcast_map, counting_hash_buffer, HashConfig, JoinMap, JoinMapBuilder, LocalitySet,
        NodeConfig, ObjectIter, SeqWriter, SetOptions, ShuffleConfig, ShuffleService, StorageNode,
        VirtualHashBuffer, VirtualShuffleBuffer,
    };
    pub use pangea_net::{PangeaClient, PangeadServer, TcpTransport, Transport};
    pub use pangea_paging::{CurrentOp, Durability, ReadPattern, WritePattern};
}
