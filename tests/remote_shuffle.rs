//! Loopback TCP integration tests: the same distributed workloads run
//! over the in-process `SimNetwork` and over a real `TcpTransport`
//! against `pangead` servers, and the I/O accounting lines up.

use pangea::cluster::{ClusterConfig, PartitionScheme, SimCluster};
use pangea::common::{NodeId, KB};
use pangea::core::{NodeConfig, StorageNode};
use pangea::net::{PangeaClient, PangeadServer, TcpTransport, Transport};
use std::path::PathBuf;
use std::sync::Arc;

fn dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "pangea-remote-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn small_node(tag: &str) -> StorageNode {
    StorageNode::new(
        NodeConfig::new(dir(tag))
            .with_pool_capacity(256 * KB)
            .with_page_size(4 * KB),
    )
    .unwrap()
}

/// Boots `n` pangead servers on loopback, each wrapping its own node.
fn pangead_fleet(tag: &str, n: u32) -> Vec<PangeadServer> {
    (0..n)
        .map(|i| PangeadServer::bind(small_node(&format!("{tag}-peer{i}")), "127.0.0.1:0").unwrap())
        .collect()
}

fn fleet_transport(fleet: &[PangeadServer]) -> TcpTransport {
    TcpTransport::new(
        fleet
            .iter()
            .enumerate()
            .map(|(i, s)| (NodeId(i as u32), s.local_addr())),
    )
}

/// Runs the Fig.-style shuffle workload (hash-partitioned dispatch of
/// `records` key|value rows) on a cluster over `transport`, returning
/// payload net bytes the transport counted.
fn run_shuffle_workload(cluster_tag: &str, transport: Arc<dyn Transport>, records: u32) -> u64 {
    let config = ClusterConfig::new(dir(cluster_tag), 3)
        .with_pool_capacity(256 * KB)
        .with_page_size(4 * KB);
    let cluster = SimCluster::bootstrap_with_transport(
        config,
        "pangea-default-keypair",
        Arc::clone(&transport),
    )
    .unwrap();
    let set = cluster
        .create_dist_set(
            "shuffled",
            PartitionScheme::hash("key", 6, |r: &[u8]| {
                r.split(|&b| b == b'|').next().unwrap_or(r).to_vec()
            }),
        )
        .unwrap();
    let mut dispatcher = set.loader().unwrap();
    for i in 0..records {
        dispatcher
            .dispatch(format!("{}|row-{i:06}", i % 40).as_bytes())
            .unwrap();
    }
    dispatcher.finish().unwrap();
    assert_eq!(set.total_records().unwrap(), records as u64);
    transport.bytes_moved()
}

/// The acceptance demo: one distributed shuffle measured on both
/// backends. Payload accounting is identical by design, so the byte
/// counts must agree well within the ±1 page the criterion allows.
#[test]
fn tcp_shuffle_matches_sim_network_byte_counts() {
    const RECORDS: u32 = 600;
    let sim: Arc<dyn Transport> = Arc::new(pangea::cluster::SimNetwork::unlimited());
    let sim_bytes = run_shuffle_workload("sim-cluster", sim, RECORDS);

    let fleet = pangead_fleet("tcpfleet", 3);
    let tcp = Arc::new(fleet_transport(&fleet));
    let tcp_bytes = run_shuffle_workload(
        "tcp-cluster",
        Arc::clone(&tcp) as Arc<dyn Transport>,
        RECORDS,
    );

    assert!(sim_bytes > 0);
    let page = 4 * KB as u64;
    assert!(
        tcp_bytes.abs_diff(sim_bytes) <= page,
        "tcp counted {tcp_bytes} B, sim counted {sim_bytes} B (> 1 page apart)"
    );
    // In fact the payload accounting is identical, not merely close.
    assert_eq!(tcp_bytes, sim_bytes);

    // Every remote payload byte the transport counted was observed by
    // some pangead on the other end of a real socket.
    let received: u64 = fleet
        .iter()
        .map(|s| s.daemon().stats().snapshot().net_bytes)
        .sum();
    assert_eq!(received, tcp_bytes);
    // Framing/protocol overhead exists, but is charged as serialization,
    // never as net bytes.
    assert!(tcp.stats().snapshot().serialized_bytes > tcp_bytes);
}

/// Replication + recovery over the TCP transport: kill a node, restore
/// its share from surviving replicas, with every recovery byte moving
/// through real sockets.
#[test]
fn recovery_runs_over_tcp_transport() {
    let fleet = pangead_fleet("recfleet", 3);
    let tcp: Arc<dyn Transport> = Arc::new(fleet_transport(&fleet));
    let config = ClusterConfig::new(dir("rec-cluster"), 3)
        .with_pool_capacity(256 * KB)
        .with_page_size(4 * KB);
    let cluster =
        SimCluster::bootstrap_with_transport(config, "pangea-default-keypair", tcp).unwrap();
    let set = cluster
        .create_dist_set("users", PartitionScheme::round_robin(3))
        .unwrap();
    let mut d = set.loader().unwrap();
    for i in 0..120u32 {
        d.dispatch(format!("{i}|user").as_bytes()).unwrap();
    }
    d.finish().unwrap();
    cluster
        .register_replica(
            "users",
            "users.by-key",
            PartitionScheme::hash("k", 6, |r: &[u8]| {
                r.split(|&b| b == b'|').next().unwrap_or(r).to_vec()
            }),
        )
        .unwrap();
    let before = cluster.network().bytes_moved();
    cluster.kill_node(NodeId(1)).unwrap();
    let report = cluster.recover_node(NodeId(1)).unwrap();
    assert_eq!(report.failed, NodeId(1));
    assert!(report.objects_restored > 0);
    assert!(
        cluster.network().bytes_moved() > before,
        "recovery must move bytes over the TCP wire"
    );
    assert_eq!(set.total_records().unwrap(), 120);
}

/// Drives a shuffle through `pangead` itself: the client partitions
/// records, ships each batch over the wire, and reads partitions back
/// through the remote sequential read service.
#[test]
fn client_drives_shuffle_through_pangead() {
    let server = PangeadServer::bind(small_node("cli-shuffle"), "127.0.0.1:0").unwrap();
    let mut client = PangeaClient::connect(server.local_addr()).unwrap();
    client.ping().unwrap();

    const PARTS: u32 = 4;
    client.shuffle_create("wc", PARTS, None).unwrap();
    let words: Vec<String> = (0..200).map(|i| format!("word-{:03}", i % 50)).collect();
    let mut batches: Vec<Vec<&str>> = vec![Vec::new(); PARTS as usize];
    for w in &words {
        let p = (pangea::common::fx_hash64(w.as_bytes()) % PARTS as u64) as usize;
        batches[p].push(w);
    }
    let mut sent_bytes = 0u64;
    for (p, batch) in batches.iter().enumerate() {
        client.shuffle_send("wc", p as u32, batch).unwrap();
        sent_bytes += batch.iter().map(|w| w.len() as u64).sum::<u64>();
    }
    client.shuffle_finish("wc").unwrap();

    let mut seen = 0usize;
    for p in 0..PARTS {
        let records = client.scan(&format!("wc.part{p}")).unwrap();
        for rec in &records {
            let w = String::from_utf8(rec.clone()).unwrap();
            let expect = (pangea::common::fx_hash64(w.as_bytes()) % PARTS as u64) as u32;
            assert_eq!(expect, p, "record {w} landed in the wrong partition");
        }
        seen += records.len();
    }
    assert_eq!(seen, words.len());

    let stats = client.remote_stats().unwrap();
    assert!(
        stats.net_bytes >= sent_bytes,
        "server saw {} B, client sent {sent_bytes} B of shuffle payload",
        stats.net_bytes
    );
}

/// The recovery read path over the wire: fetch raw remote pages and
/// parse them with the page codec, as a recovering node would.
#[test]
fn fetch_page_supports_remote_recovery_reads() {
    let server = PangeadServer::bind(small_node("cli-fetch"), "127.0.0.1:0").unwrap();
    let mut client = PangeaClient::connect(server.local_addr()).unwrap();
    client.create_set("events", "write-back", None).unwrap();
    let rows: Vec<String> = (0..300).map(|i| format!("event-{i:05}")).collect();
    assert_eq!(client.append("events", &rows).unwrap(), 300);

    let mut restored = Vec::new();
    for num in client.page_numbers("events").unwrap() {
        let bytes = client.fetch_page("events", num).unwrap();
        for rec in pangea::core::page::RecordSlices::new(&bytes) {
            restored.push(String::from_utf8(rec.to_vec()).unwrap());
        }
    }
    assert_eq!(
        restored, rows,
        "page-level fetch restores every record in order"
    );
}

/// Remote errors carry their message across the wire instead of killing
/// the connection.
#[test]
fn remote_errors_round_trip_cleanly() {
    let server = PangeadServer::bind(small_node("cli-err"), "127.0.0.1:0").unwrap();
    let mut client = PangeaClient::connect(server.local_addr()).unwrap();
    match client.scan("missing-set") {
        Err(pangea::common::PangeaError::Remote(m)) => {
            assert!(m.contains("missing-set"), "{m}");
        }
        other => panic!("expected Remote error, got {other:?}"),
    }
    // The connection survives the error.
    client.ping().unwrap();
    client.create_set("ok", "write-through", None).unwrap();
    assert_eq!(client.append("ok", &["x"]).unwrap(), 1);
}
