//! Bounded-memory suite for distributed task execution: a real
//! `pangea-mgr` and `pangead` workers over loopback TCP, each worker
//! given a buffer pool several times smaller than the job's working
//! state, and four properties proven:
//!
//! 1. A distributed tokenize→combine→reduce over input several × the
//!    per-worker pool budget **completes** — the combine accumulators,
//!    reduce accumulators, and dedup ledgers spill through the paged
//!    pool instead of exhausting it.
//! 2. The output matches a **serial `SimCluster` run record-for-record**
//!    under the same tiny pool (same engine, same spill paths).
//! 3. The driver still moves **zero payload bytes** — spilling is a
//!    node-local affair.
//! 4. The pressure is **observable**: `MetricsDump` reports
//!    `paging.spill_bytes > 0` somewhere in the fleet, and every
//!    worker's pool residency stays within its configured budget.

use pangea::cluster::{ClusterConfig, PartitionScheme, SimCluster};
use pangea::common::{NodeId, KB};
use pangea::coord::{MgrServer, RemoteCluster, WorkerAgent};
use pangea::core::{NodeConfig, StorageNode};
use pangea::net::{KeySpec, MapSpec, PangeaClient, PangeadServer, ReduceSpec, WireMetric};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

const SECRET: &str = "pressure-deployment-secret";

/// The per-worker pool budget under test: 16 frames of 4 KB. The corpus
/// below is sized to several × this, so task state cannot all stay
/// resident.
const POOL_BYTES: usize = 64 * KB;
const PAGE_BYTES: usize = 4 * KB;

fn dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "pangea-pressure-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn tiny_node(tag: &str) -> StorageNode {
    StorageNode::new(
        NodeConfig::new(dir(tag))
            .with_pool_capacity(POOL_BYTES)
            .with_page_size(PAGE_BYTES),
    )
    .unwrap()
}

fn worker(tag: &str, mgr: &str, slot: u32) -> (PangeadServer, WorkerAgent) {
    let server =
        PangeadServer::bind_with_secret(tiny_node(tag), "127.0.0.1:0", Some(SECRET.into()))
            .unwrap();
    let agent = WorkerAgent::register(
        mgr,
        Some(SECRET),
        &server.local_addr().to_string(),
        Some(NodeId(slot)),
        Duration::from_millis(50),
    )
    .unwrap();
    (server, agent)
}

fn mgr_server() -> (MgrServer, String) {
    let mgr = MgrServer::bind_with(
        "127.0.0.1:0",
        Duration::from_millis(300),
        Some(SECRET.into()),
    )
    .unwrap();
    let addr = mgr.local_addr().to_string();
    (mgr, addr)
}

/// Three-token lines with thousands of distinct keys: per-mapper combine
/// state alone (~distinct keys × entry bytes) exceeds the whole pool, so
/// the accumulators must page.
fn lines() -> Vec<String> {
    (0..12_000)
        .map(|i| {
            format!(
                "k{:04} k{:04} pad-{:02} xfiller-{:05}",
                i % 6000,
                (i * 7 + 3) % 6000,
                i % 13,
                i
            )
        })
        .collect()
}

fn counter_value(metrics: &[WireMetric], name: &str) -> u64 {
    metrics
        .iter()
        .find_map(|m| match m {
            WireMetric::Counter { name: n, value } if n == name => Some(*value),
            _ => None,
        })
        .unwrap_or(0)
}

fn gauge_value(metrics: &[WireMetric], name: &str) -> Option<u64> {
    metrics.iter().find_map(|m| match m {
        WireMetric::Gauge { name: n, value } if n == name => Some(*value),
        _ => None,
    })
}

fn snapshot_remote(cluster: &RemoteCluster, name: &str) -> BTreeMap<(u32, Vec<u8>), u32> {
    let set = cluster.get_dist_set(name).unwrap().unwrap();
    let mut m = BTreeMap::new();
    set.for_each_record(|n, rec| {
        *m.entry((n.raw(), rec.to_vec())).or_insert(0) += 1;
    })
    .unwrap();
    m
}

fn snapshot_sim(cluster: &SimCluster, name: &str) -> BTreeMap<(u32, Vec<u8>), u32> {
    let set = cluster.get_dist_set(name).unwrap();
    let mut m = BTreeMap::new();
    set.for_each_record(|n, rec| {
        *m.entry((n.raw(), rec.to_vec())).or_insert(0) += 1;
    })
    .unwrap();
    m
}

#[test]
fn wordcount_over_input_several_times_the_pool_budget_spills_and_matches_sim() {
    let (_mgr, mgr_addr) = mgr_server();
    let fleet: Vec<_> = (0..4)
        .map(|i| worker(&format!("mem{i}"), &mgr_addr, i))
        .collect();

    let cluster = RemoteCluster::connect(&mgr_addr, Some(SECRET)).unwrap();
    let corpus = lines();
    let payload: usize = corpus.iter().map(|l| l.len()).sum();
    assert!(
        payload >= 4 * POOL_BYTES,
        "corpus ({payload}B) must dwarf the per-worker pool ({POOL_BYTES}B)"
    );

    let set = cluster
        .create_dist_set("lines", PartitionScheme::round_robin(8))
        .unwrap();
    let mut d = set.loader().unwrap();
    for row in &corpus {
        d.dispatch(row.as_bytes()).unwrap();
    }
    d.finish().unwrap();

    // Property 1 + 3: the job completes under pressure, with zero
    // payload bytes through the driver.
    let map = MapSpec::tokenize(b' ');
    let reduce = ReduceSpec::count(KeySpec::WholeRecord, b'|');
    let driver_before = cluster.workers().stats().snapshot();
    let report = cluster
        .map_reduce(
            "lines",
            "counts",
            &map,
            &reduce,
            PartitionScheme::hash_field("word", 8, b'|', 0),
        )
        .unwrap();
    let driver_delta = cluster
        .workers()
        .stats()
        .snapshot()
        .delta_since(&driver_before);
    assert_eq!(driver_delta.net_bytes, 0, "payload crossed the driver");
    assert_eq!(driver_delta.net_messages, 0);
    assert_eq!(driver_delta.shuffle_bytes, 0);
    assert_eq!(driver_delta.repair_bytes, 0);

    // The fold is exact despite the spilling: recompute from the corpus.
    let mut expect: BTreeMap<Vec<u8>, i64> = BTreeMap::new();
    for line in &corpus {
        for tok in line.split(' ') {
            *expect.entry(tok.as_bytes().to_vec()).or_insert(0) += 1;
        }
    }
    assert_eq!(report.scanned, corpus.len() as u64);
    assert_eq!(report.records_out, expect.len() as u64);
    let mut seen: BTreeMap<Vec<u8>, i64> = BTreeMap::new();
    cluster
        .get_dist_set("counts")
        .unwrap()
        .unwrap()
        .for_each_record(|_, rec| {
            let (word, count) = reduce.decode_record(rec).unwrap();
            assert!(seen.insert(word.to_vec(), count).is_none(), "dup key");
        })
        .unwrap();
    assert_eq!(seen, expect, "counts diverged under memory pressure");

    // Property 4: the pressure is visible. At least one worker spilled
    // task state through the pool, and every worker's residency stayed
    // within its configured budget.
    let mut fleet_spill = 0u64;
    for (i, (server, _)) in fleet.iter().enumerate() {
        let mut c = PangeaClient::connect_with_secret(server.local_addr(), Some(SECRET)).unwrap();
        let (metrics, _) = c.metrics_dump().unwrap();
        fleet_spill += counter_value(&metrics, "paging.spill_bytes");
        let used = gauge_value(&metrics, "paging.pool_used_bytes")
            .unwrap_or_else(|| panic!("worker {i}: no paging.pool_used_bytes gauge"));
        let capacity = gauge_value(&metrics, "paging.pool_capacity_bytes")
            .unwrap_or_else(|| panic!("worker {i}: no paging.pool_capacity_bytes gauge"));
        assert_eq!(capacity, POOL_BYTES as u64, "worker {i}");
        assert!(
            used <= capacity,
            "worker {i}: pool residency {used}B exceeds its {capacity}B budget"
        );
        // The raw Stats RPC carries the same paging counters (what
        // `bench_shuffle` and scripts read).
        let stats = c.remote_stats().unwrap();
        assert_eq!(
            stats.paging_spill_bytes,
            counter_value(&metrics, "paging.spill_bytes")
        );
        assert_eq!(stats.pool_capacity_bytes, POOL_BYTES as u64);
    }
    assert!(
        fleet_spill > 0,
        "input {payload}B over {POOL_BYTES}B pools must spill task state somewhere"
    );

    // Property 2: record-for-record (and placement) parity with the
    // serial engine under the same tiny pool.
    let sim = SimCluster::bootstrap(
        ClusterConfig::new(dir("sim-pressure-parity"), 4)
            .with_pool_capacity(POOL_BYTES)
            .with_page_size(PAGE_BYTES),
        "pangea-default-keypair",
    )
    .unwrap();
    let sset = sim
        .create_dist_set("lines", PartitionScheme::round_robin(8))
        .unwrap();
    let mut sd = sset.loader().unwrap();
    for row in &corpus {
        sd.dispatch(row.as_bytes()).unwrap();
    }
    sd.finish().unwrap();
    sim.map_reduce(
        "lines",
        "counts",
        &map,
        &reduce,
        PartitionScheme::hash_field("word", 8, b'|', 0),
    )
    .unwrap();
    assert_eq!(
        snapshot_remote(&cluster, "counts"),
        snapshot_sim(&sim, "counts"),
        "spilling distributed run and spilling serial run must converge"
    );
}
