//! Cross-crate integration: the unified buffer pool serving every
//! service at once, paging-policy I/O comparisons, and the full
//! distributed load → replicate → fail → recover → query cycle.

use pangea::common::{fx_hash64, NodeId, PartitionId, KB, MB};
use pangea::prelude::*;
use pangea::query::{PangeaTpch, QueryId, TpchData};

fn dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "pangea-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// All three data types of Fig. 1 — user data (sequential write-through),
/// shuffle data (concurrent write-back), hash data (random-mutable) —
/// sharing one small pool, under enough pressure that everything pages.
#[test]
fn one_pool_serves_all_services_under_pressure() {
    let node = StorageNode::new(
        NodeConfig::new(dir("allsvc"))
            .with_pool_capacity(192 * KB)
            .with_page_size(16 * KB),
    )
    .unwrap();

    // User data.
    let users = node
        .create_set("users", SetOptions::write_through())
        .unwrap();
    let mut w = users.writer();
    for i in 0..2_000u64 {
        w.add_object(format!("user-{i:06}").as_bytes()).unwrap();
    }
    w.finish().unwrap();

    // Shuffle data, written by four concurrent threads.
    let shuffle = ShuffleService::create(&node, "sh", ShuffleConfig::new(4)).unwrap();
    std::thread::scope(|scope| {
        for t in 0..4u32 {
            let shuffle = shuffle.clone();
            scope.spawn(move || {
                let mut bufs: Vec<VirtualShuffleBuffer> = (0..4)
                    .map(|p| shuffle.virtual_buffer(PartitionId(p)).unwrap())
                    .collect();
                for i in 0..1_000u32 {
                    let rec = format!("t{t}-rec{i:05}");
                    let p = (fx_hash64(rec.as_bytes()) % 4) as usize;
                    bufs[p].add_object(rec.as_bytes()).unwrap();
                }
                for b in &mut bufs {
                    b.flush().unwrap();
                }
            });
        }
    });
    shuffle.finish_writes().unwrap();

    // Hash data: aggregate the shuffle output.
    let mut agg = counting_hash_buffer(&node, "agg", HashConfig::new(4)).unwrap();
    for p in 0..4 {
        let set = shuffle.partition_set(PartitionId(p)).unwrap();
        for num in set.page_numbers() {
            let pin = set.pin_page(num).unwrap();
            let mut it = ObjectIter::new(&pin);
            let mut staged = Vec::new();
            while let Some(rec) = it.next() {
                staged.push(rec[..2].to_vec()); // key: writer id
            }
            drop(it);
            for key in staged {
                agg.insert_merge(&key, 1).unwrap();
            }
        }
    }
    let counts = agg.finalize().unwrap();
    assert_eq!(counts.len(), 4, "one group per writer");
    assert!(counts.iter().all(|(_, n)| *n == 1_000));

    // User data still fully readable after all that pressure.
    let mut seen = 0;
    let mut iters = users.page_iterators(2).unwrap();
    while let Some(pin) = iters[0].next() {
        seen += ObjectIter::new(&pin.unwrap()).count();
    }
    while let Some(pin) = iters[1].next() {
        seen += ObjectIter::new(&pin.unwrap()).count();
    }
    assert_eq!(seen, 2_000);
    // The pool really was under pressure.
    assert!(node.disk_stats().snapshot().pages_flushed > 0);
}

/// The paper's §9.2.1 claim, measured as I/O volume: on a repeated
/// sequential scan of an oversized set, MRU-for-sequential (data-aware)
/// rereads less than LRU.
#[test]
fn data_aware_rereads_less_than_lru_on_loop_scans() {
    let run = |strategy: &str| -> u64 {
        let node = StorageNode::new(
            NodeConfig::new(dir(&format!("pol-{strategy}")))
                .with_pool_capacity(128 * KB)
                .with_page_size(16 * KB)
                .with_strategy(strategy),
        )
        .unwrap();
        let set = node.create_set("s", SetOptions::write_back()).unwrap();
        let mut w = set.writer();
        for i in 0..16_000u64 {
            w.add_object(format!("row-{i:08}").as_bytes()).unwrap();
        }
        w.finish().unwrap();
        for _ in 0..3 {
            let mut iters = set.page_iterators(1).unwrap();
            while let Some(pin) = iters[0].next() {
                let _ = pin.unwrap();
            }
            set.declare_idle().unwrap();
        }
        node.disk_stats().snapshot().disk_read_bytes
    };
    let data_aware = run("data-aware");
    let lru = run("lru");
    assert!(
        data_aware < lru,
        "data-aware reread {data_aware} B, LRU {lru} B"
    );
}

/// Distributed lifecycle: load, replicate, query, kill, recover, query
/// again — identical answers before and after.
#[test]
fn full_cluster_lifecycle_preserves_query_answers() {
    let data = TpchData::generate(0.001);
    let cluster = SimCluster::bootstrap(
        ClusterConfig::new(dir("lifecycle"), 3)
            .with_pool_capacity(8 * MB)
            .with_page_size(16 * KB),
        "pangea-default-keypair",
    )
    .unwrap();
    let engine = PangeaTpch::load(&cluster, &data).unwrap();
    let before: Vec<_> = QueryId::ALL
        .iter()
        .map(|&q| engine.run(q).unwrap())
        .collect();
    cluster.kill_node(NodeId(2)).unwrap();
    let report = cluster.recover_node(NodeId(2)).unwrap();
    assert!(report.objects_restored > 0);
    for (i, &q) in QueryId::ALL.iter().enumerate() {
        assert_eq!(
            engine.run(q).unwrap(),
            before[i],
            "{} changed after recovery",
            q.label()
        );
    }
}

/// Bootstrap security (paper §3.3): a bad key terminates the system.
#[test]
fn bootstrap_requires_the_deployment_key() {
    let cfg = ClusterConfig::new(dir("auth"), 2).with_auth_key("secret");
    assert!(matches!(
        SimCluster::bootstrap(cfg.clone(), "not-the-key"),
        Err(PangeaError::AuthenticationFailed)
    ));
    assert!(SimCluster::bootstrap(cfg, "secret").is_ok());
}

/// Broadcast-map service: a dimension set broadcast to every node joins
/// a fact set locally.
#[test]
fn broadcast_join_across_services() {
    let node = StorageNode::new(
        NodeConfig::new(dir("bcast"))
            .with_pool_capacity(MB)
            .with_page_size(16 * KB),
    )
    .unwrap();
    let dim = node.create_set("dim", SetOptions::write_through()).unwrap();
    let mut w = dim.writer();
    for i in 0..50u32 {
        w.add_object(format!("{i:03}|name-{i}").as_bytes()).unwrap();
    }
    w.finish().unwrap();
    let map = broadcast_map(&node, &dim, "dim.map", |rec| rec[..3].to_vec()).unwrap();
    let fact = node.create_set("fact", SetOptions::write_back()).unwrap();
    let mut w = fact.writer();
    for i in 0..500u32 {
        w.add_object(format!("{:03}|amount-{i}", i % 50).as_bytes())
            .unwrap();
    }
    w.finish().unwrap();
    let mut joined = 0;
    let mut iters = fact.page_iterators(1).unwrap();
    while let Some(pin) = iters[0].next() {
        let pin = pin.unwrap();
        let mut it = ObjectIter::new(&pin);
        while let Some(rec) = it.next() {
            joined += map.probe(&rec[..3], |_| {});
        }
    }
    assert_eq!(joined, 500, "every fact row finds its dimension");
    map.release().unwrap();
}
