//! Fault-injection suite for worker→worker recovery: a real `pangea-mgr`
//! and `pangead` processes over loopback TCP, workers killed
//! mid-workload, and three properties proven:
//!
//! 1. Repairing a killed worker moves **zero payload bytes through the
//!    driver** — survivors stream their shares straight to the
//!    replacement (`IoStats` ledgers on both sides are the witness).
//! 2. Two dead slots are repaired **concurrently** (a rendezvous hook
//!    shows both repairs in flight at once) and the end state matches a
//!    serial `SimCluster` run node-for-node.
//! 3. A batched dispatch flushing into a freshly-dead worker surfaces
//!    the typed [`PangeaError::NodeUnavailable`] — no hang, no panic,
//!    no error-prose parsing.

use pangea::cluster::{ClusterConfig, DispatchConfig, PartitionScheme, SimCluster};
use pangea::common::{NodeId, PangeaError, KB};
use pangea::coord::{MgrServer, RemoteCluster, WorkerAgent};
use pangea::core::{NodeConfig, StorageNode};
use pangea::net::{PangeaClient, PangeadServer, WireMetric};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SECRET: &str = "recovery-deployment-secret";

fn dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "pangea-recovery-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn small_node(tag: &str) -> StorageNode {
    StorageNode::new(
        NodeConfig::new(dir(tag))
            .with_pool_capacity(256 * KB)
            .with_page_size(4 * KB),
    )
    .unwrap()
}

/// Boots one worker: a secret-gated `pangead` plus its heartbeating
/// control-plane agent, registered at an explicit slot.
fn worker(tag: &str, mgr: &str, slot: u32) -> (PangeadServer, WorkerAgent) {
    let server =
        PangeadServer::bind_with_secret(small_node(tag), "127.0.0.1:0", Some(SECRET.into()))
            .unwrap();
    let agent = WorkerAgent::register(
        mgr,
        Some(SECRET),
        &server.local_addr().to_string(),
        Some(NodeId(slot)),
        Duration::from_millis(50),
    )
    .unwrap();
    assert_eq!(agent.node(), NodeId(slot));
    (server, agent)
}

fn mgr_server() -> (MgrServer, String) {
    let mgr = MgrServer::bind_with(
        "127.0.0.1:0",
        Duration::from_millis(300),
        Some(SECRET.into()),
    )
    .unwrap();
    let addr = mgr.local_addr().to_string();
    (mgr, addr)
}

fn records(n: u32) -> Vec<String> {
    (0..n)
        .map(|i| format!("{}|{}|row-{i:05}", i % 53, i % 17))
        .collect()
}

/// Per-node multiset of a remote distributed set's records.
fn snapshot_remote(cluster: &RemoteCluster, name: &str) -> BTreeMap<(u32, Vec<u8>), u32> {
    let set = cluster.get_dist_set(name).unwrap().unwrap();
    let mut m = BTreeMap::new();
    set.for_each_record(|n, rec| {
        *m.entry((n.raw(), rec.to_vec())).or_insert(0) += 1;
    })
    .unwrap();
    m
}

/// Per-node multiset of a simulated distributed set's records.
fn snapshot_sim(cluster: &SimCluster, name: &str) -> BTreeMap<(u32, Vec<u8>), u32> {
    let set = cluster.get_dist_set(name).unwrap();
    let mut m = BTreeMap::new();
    set.for_each_record(|n, rec| {
        *m.entry((n.raw(), rec.to_vec())).or_insert(0) += 1;
    })
    .unwrap();
    m
}

/// Pulls one named counter out of a `MetricsDump` metric list (0 when
/// the node never touched it).
fn counter_value(metrics: &[WireMetric], name: &str) -> u64 {
    metrics
        .iter()
        .find_map(|m| match m {
            WireMetric::Counter { name: n, value } if n == name => Some(*value),
            _ => None,
        })
        .unwrap_or(0)
}

fn wait_dead(cluster: &RemoteCluster, nodes: &[NodeId]) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let dead = cluster.dead_workers().unwrap();
        if nodes.iter().all(|n| dead.contains(n)) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "manager never declared {nodes:?} dead (saw {dead:?})"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn killed_worker_recovers_worker_to_worker_with_zero_driver_payload() {
    let (_mgr, mgr_addr) = mgr_server();
    let (s0, _a0) = worker("w0", &mgr_addr, 0);
    let (mut s1, mut a1) = worker("w1", &mgr_addr, 1);
    let (s2, _a2) = worker("w2", &mgr_addr, 2);
    let (s3, _a3) = worker("w3", &mgr_addr, 3);

    let cluster = RemoteCluster::connect(&mgr_addr, Some(SECRET)).unwrap();
    assert_eq!(cluster.alive_nodes().len(), 4);

    // Workload: a hash set plus a replica under a different key (the
    // sibling recovery will need), loaded through the driver.
    let rows = records(400);
    let set = cluster
        .create_dist_set("users", PartitionScheme::hash_field("uid", 8, b'|', 0))
        .unwrap();
    let mut d = set.loader().unwrap();
    for row in &rows {
        d.dispatch(row.as_bytes()).unwrap();
    }
    d.finish().unwrap();
    cluster
        .register_replica(
            "users",
            "users_f1",
            PartitionScheme::hash_field("f1", 8, b'|', 1),
        )
        .unwrap();
    let before_users = snapshot_remote(&cluster, "users");
    let before_f1 = snapshot_remote(&cluster, "users_f1");

    // Kill worker 1 mid-workload: heartbeats stop, process gone.
    a1.abandon();
    s1.shutdown();
    wait_dead(&cluster, &[NodeId(1)]);

    // A replacement takes the slot; repair it.
    let (s1b, _a1b) = worker("w1-replacement", &mgr_addr, 1);
    let driver_before = cluster.workers().stats().snapshot();
    let report = cluster.recover_worker(NodeId(1)).unwrap();
    let driver_delta = cluster
        .workers()
        .stats()
        .snapshot()
        .delta_since(&driver_before);

    // The tentpole claim: recovery moved real payload — but none of it
    // through the driver. The driver's shared ledger saw zero payload
    // bytes; the survivors and the replacement attribute the same
    // traffic to their own peer-repair counters.
    assert!(report.objects_restored > 0);
    assert!(report.bytes_moved > 0, "repair moved payload somewhere");
    assert_eq!(
        driver_delta.net_bytes, 0,
        "survivor/rebuilt payload crossed the driver's wire"
    );
    assert_eq!(driver_delta.repair_bytes, 0, "the driver repairs nothing");
    let pushed: u64 = [&s0, &s2, &s3]
        .iter()
        .map(|s| s.daemon().stats().snapshot().repair_bytes)
        .sum();
    let received = s1b.daemon().stats().snapshot().repair_bytes;
    assert!(pushed > 0, "survivors pushed repair payload worker→worker");
    assert!(received > 0, "the replacement appended repair payload");
    assert_eq!(
        received, report.bytes_moved,
        "the engine's byte report is the replacement's appended payload"
    );

    // The recovery ran as one traced job: every driver RPC span under
    // its id is ok, each survivor served a traced `RecoverPush`, and the
    // replacement's span set stitches the whole fan-out — driver-issued
    // begin/end plus appends whose parents live on the survivors.
    let job = cluster.workers().last_job().expect("recovery is traced");
    let driver_spans = cluster.workers().obs().ring().since(0);
    let job_spans: Vec<_> = driver_spans.iter().filter(|(_, s)| s.job == job).collect();
    assert!(!job_spans.is_empty(), "driver recorded no spans for {job}");
    assert!(
        job_spans.iter().all(|(_, s)| s.outcome == "ok"),
        "recovery RPCs all succeeded: {job_spans:?}"
    );
    for (name, server) in [("s0", &s0), ("s2", &s2), ("s3", &s3)] {
        let mut dump =
            PangeaClient::connect_with_secret(server.local_addr(), Some(SECRET)).unwrap();
        let (metrics, spans) = dump.metrics_dump().unwrap();
        assert!(
            counter_value(&metrics, "rpc.count.RecoverPush") >= 1,
            "survivor {name} served no RecoverPush"
        );
        assert!(
            spans
                .iter()
                .any(|s| s.job == job && s.op == "RecoverPush" && s.outcome == "ok"),
            "survivor {name} has no RecoverPush span under job {job}"
        );
    }
    {
        let mut dump = PangeaClient::connect_with_secret(s1b.local_addr(), Some(SECRET)).unwrap();
        let (metrics, spans) = dump.metrics_dump().unwrap();
        let begun = counter_value(&metrics, "sessions.repair.begun");
        assert!(begun >= 1, "replacement opened repair sessions");
        assert_eq!(
            begun,
            counter_value(&metrics, "sessions.repair.ended"),
            "every repair session sealed"
        );
        for op in ["RecoverBegin", "RecoverAppend", "RecoverEnd"] {
            assert!(
                spans.iter().any(|s| s.job == job && s.op == op),
                "replacement has no {op} span under job {job}: {spans:?}"
            );
        }
        // The appends arrived from the survivors' RecoverPush spans,
        // not from the driver: their parents are not local span ids.
        let own: BTreeMap<u64, ()> = spans.iter().map(|s| (s.span, ())).collect();
        assert!(
            spans
                .iter()
                .any(|s| s.job == job && s.op == "RecoverAppend" && !own.contains_key(&s.parent)),
            "repair appends must stitch under survivor spans"
        );
    }

    // The set is fully readable and placed exactly as before the kill.
    assert_eq!(snapshot_remote(&cluster, "users"), before_users);
    assert_eq!(snapshot_remote(&cluster, "users_f1"), before_f1);
    let scheme = set.scheme().unwrap();
    set.for_each_record(|node, rec| {
        assert_eq!(scheme.node_of(rec, 0, 4), node);
    })
    .unwrap();

    // Repair is retryable and idempotent end to end: provisioning
    // tolerates existing sets and the repair session seeds itself with
    // what the replacement already holds, so running recovery again
    // restores nothing and duplicates nothing.
    let again = cluster.recover_worker(NodeId(1)).unwrap();
    assert_eq!(again.objects_restored, 0, "retry must not re-restore");
    assert_eq!(again.bytes_moved, 0);
    assert_eq!(snapshot_remote(&cluster, "users"), before_users);
    assert_eq!(snapshot_remote(&cluster, "users_f1"), before_f1);
}

#[test]
fn two_dead_slots_repair_concurrently_and_match_the_serial_sim() {
    let (_mgr, mgr_addr) = mgr_server();
    let (_s0, _a0) = worker("p0", &mgr_addr, 0);
    let (mut s1, mut a1) = worker("p1", &mgr_addr, 1);
    let (mut s2, mut a2) = worker("p2", &mgr_addr, 2);
    let (_s3, _a3) = worker("p3", &mgr_addr, 3);

    let cluster = RemoteCluster::connect(&mgr_addr, Some(SECRET)).unwrap();
    let rows = records(400);
    let set = cluster
        .create_dist_set("users", PartitionScheme::hash_field("uid", 8, b'|', 0))
        .unwrap();
    let mut d = set.loader().unwrap();
    for row in &rows {
        d.dispatch(row.as_bytes()).unwrap();
    }
    d.finish().unwrap();
    // r = 2: two concurrent failures must be tolerable, so objects whose
    // copies span ≤ 2 nodes get two extra colliding-set copies.
    cluster
        .core()
        .register_replica_with_r(
            "users",
            "users_f1",
            PartitionScheme::hash_field("f1", 8, b'|', 1),
            2,
        )
        .unwrap();
    let before_users = snapshot_remote(&cluster, "users");
    let before_f1 = snapshot_remote(&cluster, "users_f1");

    // Two workers die.
    a1.abandon();
    s1.shutdown();
    a2.abandon();
    s2.shutdown();
    wait_dead(&cluster, &[NodeId(1), NodeId(2)]);
    let (_s1b, _a1b) = worker("p1-replacement", &mgr_addr, 1);
    let (_s2b, _a2b) = worker("p2-replacement", &mgr_addr, 2);

    // Rendezvous: each slot's repair announces itself, then waits for
    // the other. `overlapped` only becomes true if both repairs were in
    // flight at the same time — a serialized run times out the wait and
    // fails the assertion below.
    let arrivals = Arc::new(AtomicUsize::new(0));
    let overlapped = Arc::new(AtomicBool::new(false));
    {
        let arrivals = Arc::clone(&arrivals);
        let overlapped = Arc::clone(&overlapped);
        cluster.set_recovery_hook(Some(Arc::new(move |n: NodeId| {
            arrivals.fetch_add(1, Ordering::SeqCst);
            let deadline = Instant::now() + Duration::from_secs(10);
            while arrivals.load(Ordering::SeqCst) < 2 {
                // A serialized run can never release the first repair:
                // fail it loudly rather than report false overlap.
                assert!(
                    Instant::now() < deadline,
                    "repair of {n} waited 10s without a concurrent peer repair"
                );
                std::thread::sleep(Duration::from_millis(1));
            }
            overlapped.store(true, Ordering::SeqCst);
        })));
    }
    let reports = cluster
        .recover_workers(&[NodeId(1), NodeId(2)])
        .unwrap()
        .into_iter()
        .collect::<Vec<_>>();
    cluster.set_recovery_hook(None);
    assert_eq!(reports.len(), 2);
    assert!(
        overlapped.load(Ordering::SeqCst),
        "slot repairs ran serially; expected overlapping RPCs"
    );
    assert!(reports.iter().all(|r| r.objects_restored > 0));

    // End state identical to before the kills…
    assert_eq!(snapshot_remote(&cluster, "users"), before_users);
    assert_eq!(snapshot_remote(&cluster, "users_f1"), before_f1);

    // …and node-for-node identical to the same double failure repaired
    // *serially* on the in-process simulation.
    let sim = SimCluster::bootstrap(
        ClusterConfig::new(dir("sim-parallel-parity"), 4)
            .with_pool_capacity(256 * KB)
            .with_page_size(4 * KB),
        "pangea-default-keypair",
    )
    .unwrap();
    let sset = sim
        .create_dist_set("users", PartitionScheme::hash_field("uid", 8, b'|', 0))
        .unwrap();
    let mut sd = sset.loader().unwrap();
    for row in &rows {
        sd.dispatch(row.as_bytes()).unwrap();
    }
    sd.finish().unwrap();
    sim.register_replica_with_r(
        "users",
        "users_f1",
        PartitionScheme::hash_field("f1", 8, b'|', 1),
        2,
    )
    .unwrap();
    sim.kill_node(NodeId(1)).unwrap();
    sim.kill_node(NodeId(2)).unwrap();
    sim.recover_node(NodeId(1)).unwrap();
    sim.recover_node(NodeId(2)).unwrap();
    assert_eq!(
        snapshot_remote(&cluster, "users"),
        snapshot_sim(&sim, "users"),
        "parallel remote repair and serial sim repair must converge"
    );
    assert_eq!(
        snapshot_remote(&cluster, "users_f1"),
        snapshot_sim(&sim, "users_f1"),
    );
}

/// A catalog mixing hash-only replica groups with a round-robin-carrying
/// group: the hash groups must still repair both dead slots
/// *concurrently* (the serial fallback is scoped to the round-robin
/// group now, not the whole recovery), the round-robin target's repair
/// must ship ~the lost share (`Absent` filters at the source instead of
/// shipping every survivor's whole share), and the end state must be
/// exactly the pre-kill one.
#[test]
fn mixed_groups_keep_hash_parallelism_and_absent_trims_rr_repair() {
    let (_mgr, mgr_addr) = mgr_server();
    let (s0, _a0) = worker("m0", &mgr_addr, 0);
    let (mut s1, mut a1) = worker("m1", &mgr_addr, 1);
    let (mut s2, mut a2) = worker("m2", &mgr_addr, 2);
    let (s3, _a3) = worker("m3", &mgr_addr, 3);

    let cluster = RemoteCluster::connect(&mgr_addr, Some(SECRET)).unwrap();
    let rows = records(400);
    // Hash group: users (hash) + users_f1 (hash), r = 2.
    let users = cluster
        .create_dist_set("users", PartitionScheme::hash_field("uid", 8, b'|', 0))
        .unwrap();
    let mut d = users.loader().unwrap();
    for row in &rows {
        d.dispatch(row.as_bytes()).unwrap();
    }
    d.finish().unwrap();
    cluster
        .core()
        .register_replica_with_r(
            "users",
            "users_f1",
            PartitionScheme::hash_field("f1", 8, b'|', 1),
            2,
        )
        .unwrap();
    // Round-robin-carrying group: lines (round-robin source) replicated
    // into lines_f1 (hash), r = 2 — recovery of `lines` is defined by
    // absence, the case the serial phase exists for.
    let lines = cluster
        .create_dist_set("lines", PartitionScheme::round_robin(8))
        .unwrap();
    let mut d = lines.loader().unwrap();
    for row in &rows {
        d.dispatch(row.as_bytes()).unwrap();
    }
    d.finish().unwrap();
    cluster
        .core()
        .register_replica_with_r(
            "lines",
            "lines_f1",
            PartitionScheme::hash_field("f1", 8, b'|', 1),
            2,
        )
        .unwrap();
    let before: Vec<_> = ["users", "users_f1", "lines", "lines_f1"]
        .iter()
        .map(|s| snapshot_remote(&cluster, s))
        .collect();

    a1.abandon();
    s1.shutdown();
    a2.abandon();
    s2.shutdown();
    wait_dead(&cluster, &[NodeId(1), NodeId(2)]);
    let (s1b, _a1b) = worker("m1-replacement", &mgr_addr, 1);
    let (s2b, _a2b) = worker("m2-replacement", &mgr_addr, 2);

    // The rendezvous proves the hash phase still overlaps: with the old
    // whole-recovery serial fallback, the first slot's repair would
    // park here forever and fail the deadline.
    let arrivals = Arc::new(AtomicUsize::new(0));
    let overlapped = Arc::new(AtomicBool::new(false));
    {
        let arrivals = Arc::clone(&arrivals);
        let overlapped = Arc::clone(&overlapped);
        cluster.set_recovery_hook(Some(Arc::new(move |n: NodeId| {
            arrivals.fetch_add(1, Ordering::SeqCst);
            let deadline = Instant::now() + Duration::from_secs(10);
            while arrivals.load(Ordering::SeqCst) < 2 {
                assert!(
                    Instant::now() < deadline,
                    "hash-phase repair of {n} waited 10s without a concurrent peer"
                );
                std::thread::sleep(Duration::from_millis(1));
            }
            overlapped.store(true, Ordering::SeqCst);
        })));
    }
    let reports = cluster.recover_workers(&[NodeId(1), NodeId(2)]).unwrap();
    cluster.set_recovery_hook(None);
    assert!(
        overlapped.load(Ordering::SeqCst),
        "hash-only groups must still repair concurrently"
    );
    assert_eq!(reports.len(), 2);
    assert!(reports.iter().all(|r| r.objects_restored > 0));
    assert!(
        reports
            .iter()
            .all(|r| r.replicas_recovered.iter().any(|s| s == "lines")),
        "the round-robin group was repaired too: {reports:?}"
    );

    // End state: hash sets restored *in place* (placement is
    // content-determined); the round-robin set restored in *content* —
    // a double failure's absence-defined lost shares are indivisible,
    // so the first repaired slot absorbs both and placement (arbitrary
    // by design for round-robin) shifts while the record multiset is
    // exactly preserved.
    for (name, snap) in ["users", "users_f1", "lines_f1"]
        .iter()
        .zip([&before[0], &before[1], &before[3]])
    {
        assert_eq!(&snapshot_remote(&cluster, name), snap, "{name} diverged");
    }
    let contents = |snap: &BTreeMap<(u32, Vec<u8>), u32>| -> BTreeMap<Vec<u8>, u32> {
        let mut m = BTreeMap::new();
        for ((_, rec), n) in snap {
            *m.entry(rec.clone()).or_insert(0) += n;
        }
        m
    };
    assert_eq!(
        contents(&snapshot_remote(&cluster, "lines")),
        contents(&before[2]),
        "round-robin set contents diverged"
    );

    // The payload still flowed worker→worker (the per-record source
    // filtering of the round-robin repair is priced exactly by the
    // daemon-scope `absent_push_filters_at_the_source…` test; here the
    // end-state equality above is the witness that Absent lost nothing).
    let survivor_pushed: u64 = [&s0, &s3, &s1b, &s2b]
        .iter()
        .map(|s| s.daemon().stats().snapshot().repair_bytes)
        .sum();
    assert!(
        survivor_pushed > 0,
        "repair payload moved worker→worker at all"
    );
}

#[test]
fn dispatch_flush_into_freshly_dead_worker_is_a_typed_error() {
    let (_mgr, mgr_addr) = mgr_server();
    let (_s0, _a0) = worker("d0", &mgr_addr, 0);
    let (mut s1, mut a1) = worker("d1", &mgr_addr, 1);

    let cluster = RemoteCluster::connect(&mgr_addr, Some(SECRET)).unwrap();
    let set = cluster
        .create_dist_set("events", PartitionScheme::round_robin(2))
        .unwrap();
    let mut d = set
        .loader_with(DispatchConfig {
            max_batch_records: 8,
            max_batch_bytes: 64 * KB,
        })
        .unwrap();
    d.dispatch(b"0|warm-up").unwrap();

    // The worker dies with records still pending for it: the membership
    // snapshot has not been refreshed, so the dispatcher still believes
    // in the slot and its address.
    a1.abandon();
    s1.shutdown();

    let started = Instant::now();
    let mut outcome = Ok(());
    for i in 0..64u32 {
        match d.dispatch(format!("{i}|after-death").as_bytes()) {
            Ok(_) => {}
            Err(e) => {
                outcome = Err(e);
                break;
            }
        }
    }
    if outcome.is_ok() {
        outcome = d.finish();
    }
    match outcome {
        Err(PangeaError::NodeUnavailable(n)) => assert_eq!(n, NodeId(1)),
        other => panic!("expected typed NodeUnavailable(node#1), got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "a dead worker must fail fast, not hang the flush"
    );
}
