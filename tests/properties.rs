//! Property-based tests over the core data structures and invariants:
//! the in-page record layout, the in-page hash table, the virtual hash
//! buffer (against a model), partitioning determinism, and the
//! colliding-ratio formula.

use pangea::common::{KB, MB};
use pangea::core::HashConfig;
use pangea::core::{hashpage, page, NodeConfig, SetOptions, StorageNode, VirtualHashBuffer};
use proptest::prelude::*;
use std::collections::HashMap;

fn dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "pangea-prop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

proptest! {
    /// Every record appended to a page reads back identically, in order,
    /// and a page never accepts a record it cannot hold.
    #[test]
    fn record_pages_roundtrip(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..100),
        cap in 64usize..2048,
    ) {
        let mut bytes = vec![0u8; cap];
        page::init_record_page(&mut bytes);
        let mut accepted = Vec::new();
        for r in &records {
            if page::append_record(&mut bytes, r) {
                accepted.push(r.clone());
            } else {
                // Full is sticky for anything at least as large.
                prop_assert!(
                    page::free_bytes(&bytes) < r.len() + page::RECORD_PREFIX
                );
            }
        }
        let read: Vec<Vec<u8>> =
            page::RecordSlices::new(&bytes).map(|r| r.to_vec()).collect();
        prop_assert_eq!(read, accepted);
    }

    /// The in-page hash table behaves like a map for any operation
    /// sequence that fits, and signals Full instead of corrupting.
    #[test]
    fn hashpage_matches_model(
        ops in prop::collection::vec(
            (prop::collection::vec(any::<u8>(), 1..12),
             prop::collection::vec(any::<u8>(), 0..12)),
            1..200,
        )
    ) {
        let mut bytes = vec![0u8; 4096];
        hashpage::init(&mut bytes, hashpage::buckets_for(4096), 0).unwrap();
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        for (k, v) in &ops {
            match hashpage::insert(&mut bytes, k, v).unwrap() {
                hashpage::HashInsert::Full => break,
                _ => {
                    model.insert(k.clone(), v.clone());
                }
            }
        }
        prop_assert_eq!(hashpage::n_items(&bytes) as usize, model.len());
        for (k, v) in &model {
            prop_assert_eq!(hashpage::lookup(&bytes, k), Some(v.as_slice()));
        }
        // Everything enumerable matches the model too.
        let mut seen = 0;
        hashpage::for_each(&bytes, |k, v| {
            assert_eq!(model.get(k).map(|x| x.as_slice()), Some(v));
            seen += 1;
        });
        prop_assert_eq!(seen, model.len());
    }

    /// The colliding-ratio formula is a probability, declines with
    /// cluster size, and grows with the failure-tolerance level.
    #[test]
    fn colliding_ratio_formula_properties(k in 2u32..100, r in 1u32..4) {
        let f = pangea::cluster::expected_colliding_ratio(k, r);
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!(f >= pangea::cluster::expected_colliding_ratio(k + 1, r) - 1e-12);
        prop_assert!(
            pangea::cluster::expected_colliding_ratio(k, r + 1) >= f - 1e-12
        );
    }

    /// Hash partitioning is deterministic and respects the partition
    /// count; round-robin cycles exactly.
    #[test]
    fn partition_schemes_are_lawful(
        keys in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..16), 1..50),
        parts in 1u32..32,
    ) {
        let scheme = pangea::cluster::PartitionScheme::hash("k", parts, |r: &[u8]| r.to_vec());
        for key in &keys {
            let p1 = scheme.partition_of(key, 0);
            let p2 = scheme.partition_of(key, 99);
            prop_assert_eq!(p1, p2);
            prop_assert!(p1.raw() < parts);
        }
        let rr = pangea::cluster::PartitionScheme::round_robin(parts);
        for i in 0..(parts as u64 * 2) {
            prop_assert_eq!(rr.partition_of(b"x", i).raw(), (i % parts as u64) as u32);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The virtual hash buffer aggregates exactly like a HashMap model,
    /// including when memory pressure forces splits and spills.
    #[test]
    fn virtual_hash_buffer_matches_model(
        keys in prop::collection::vec(0u32..400, 1..800),
        pool_kb in 3usize..32,
    ) {
        let node = StorageNode::new(
            NodeConfig::new(dir(&format!("vhb-{pool_kb}")))
                .with_pool_capacity(pool_kb * KB)
                .with_page_size(KB),
        ).unwrap();
        let mut vhb = VirtualHashBuffer::create(
            &node,
            "agg",
            HashConfig::new(2),
            |acc: &mut u64, v: u64| *acc += v,
        ).unwrap();
        let mut model: HashMap<Vec<u8>, u64> = HashMap::new();
        for k in &keys {
            let key = format!("key-{k:05}").into_bytes();
            vhb.insert_merge(&key, 1).unwrap();
            *model.entry(key).or_default() += 1;
        }
        let mut got: Vec<(Vec<u8>, u64)> = vhb.finalize().unwrap();
        got.sort();
        let mut want: Vec<(Vec<u8>, u64)> = model.into_iter().collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// Sequential write → scan roundtrips under arbitrary pool pressure:
    /// no record is lost, duplicated, or reordered, whatever fits or
    /// spills.
    #[test]
    fn seq_write_scan_roundtrip_under_pressure(
        n in 1usize..2_000,
        pool_pages in 4usize..24,
    ) {
        let node = StorageNode::new(
            NodeConfig::new(dir(&format!("seq-{pool_pages}")))
                .with_pool_capacity(pool_pages * KB)
                .with_page_size(KB),
        ).unwrap();
        let set = node.create_set("s", SetOptions::write_back()).unwrap();
        let mut w = set.writer();
        for i in 0..n {
            w.add_object(format!("row-{i:07}").as_bytes()).unwrap();
        }
        w.finish().unwrap();
        let mut got = Vec::with_capacity(n);
        let mut iters = set.page_iterators(1).unwrap();
        while let Some(pin) = iters[0].next() {
            let pin = pin.unwrap();
            pangea::core::ObjectIter::new(&pin)
                .for_each(|rec| got.push(String::from_utf8(rec.to_vec()).unwrap()));
        }
        let want: Vec<String> = (0..n).map(|i| format!("row-{i:07}")).collect();
        prop_assert_eq!(got, want);
    }
}

/// Non-proptest sanity guard used by CI to make sure the property file
/// itself is wired in.
#[test]
fn property_suite_is_registered() {
    assert_eq!(MB / KB, 1024);
}
