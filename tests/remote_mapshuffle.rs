//! Fault-and-parity suite for the distributed map-shuffle: a real
//! `pangea-mgr` and `pangead` processes over loopback TCP, declarative
//! map tasks shipped to every worker, and four properties proven:
//!
//! 1. A distributed map-shuffle moves **zero payload bytes through the
//!    driver** — every record flows mapper→destination worker, and the
//!    moved payload is attributed to the workers' `shuffle_bytes`
//!    counters (`IoStats` ledgers on both sides are the witness).
//! 2. The materialized output set matches a **serial `SimCluster` run
//!    record-for-record** (same engine, different backend).
//! 3. Per-worker tasks run **in parallel** (a rendezvous hook shows all
//!    task RPCs in flight at once).
//! 4. A worker killed mid-job surfaces the **typed**
//!    [`PangeaError::NodeUnavailable`], and — after the slot is
//!    recovered — an idempotent retry completes without duplicates.

use pangea::cluster::{ClusterConfig, PartitionScheme, SimCluster};
use pangea::common::{NodeId, PangeaError, KB};
use pangea::coord::{MgrServer, RemoteCluster, WorkerAgent};
use pangea::core::{NodeConfig, StorageNode};
use pangea::net::{
    FilterSpec, KeySpec, MapSpec, PangeaClient, PangeadServer, ReduceSpec, WireMetric,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SECRET: &str = "mapshuffle-deployment-secret";

fn dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "pangea-mapshuffle-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn small_node(tag: &str) -> StorageNode {
    StorageNode::new(
        NodeConfig::new(dir(tag))
            .with_pool_capacity(256 * KB)
            .with_page_size(4 * KB),
    )
    .unwrap()
}

/// Boots one worker: a secret-gated `pangead` plus its heartbeating
/// control-plane agent, registered at an explicit slot.
fn worker(tag: &str, mgr: &str, slot: u32) -> (PangeadServer, WorkerAgent) {
    let server =
        PangeadServer::bind_with_secret(small_node(tag), "127.0.0.1:0", Some(SECRET.into()))
            .unwrap();
    let agent = WorkerAgent::register(
        mgr,
        Some(SECRET),
        &server.local_addr().to_string(),
        Some(NodeId(slot)),
        Duration::from_millis(50),
    )
    .unwrap();
    assert_eq!(agent.node(), NodeId(slot));
    (server, agent)
}

fn mgr_server() -> (MgrServer, String) {
    let mgr = MgrServer::bind_with(
        "127.0.0.1:0",
        Duration::from_millis(300),
        Some(SECRET.into()),
    )
    .unwrap();
    let addr = mgr.local_addr().to_string();
    (mgr, addr)
}

/// `user|word|payload` rows: few distinct words, so the mapped output
/// carries plenty of honest duplicates the provenance-tag dedup must
/// *not* collapse.
fn records(n: u32) -> Vec<String> {
    (0..n)
        .map(|i| format!("u{}|w{:02}|row-{i:05}", i % 7, i % 13))
        .collect()
}

/// The job under test everywhere below: keep rows whose user field is
/// not empty, emit the word field, and hash the emitted word over 8
/// partitions.
fn word_map() -> MapSpec {
    MapSpec::extract(KeySpec::Field {
        delim: b'|',
        index: 1,
    })
    .with_filter(FilterSpec::KeyPresent {
        key: KeySpec::Field {
            delim: b'|',
            index: 0,
        },
    })
}

fn word_scheme() -> PartitionScheme {
    PartitionScheme::hash_whole("word", 8)
}

/// Per-node multiset of a remote distributed set's records.
fn snapshot_remote(cluster: &RemoteCluster, name: &str) -> BTreeMap<(u32, Vec<u8>), u32> {
    let set = cluster.get_dist_set(name).unwrap().unwrap();
    let mut m = BTreeMap::new();
    set.for_each_record(|n, rec| {
        *m.entry((n.raw(), rec.to_vec())).or_insert(0) += 1;
    })
    .unwrap();
    m
}

/// Per-node multiset of a simulated distributed set's records.
fn snapshot_sim(cluster: &SimCluster, name: &str) -> BTreeMap<(u32, Vec<u8>), u32> {
    let set = cluster.get_dist_set(name).unwrap();
    let mut m = BTreeMap::new();
    set.for_each_record(|n, rec| {
        *m.entry((n.raw(), rec.to_vec())).or_insert(0) += 1;
    })
    .unwrap();
    m
}

/// A serial `SimCluster` reference run: same rows, same job, in-process.
fn sim_reference(tag: &str, nodes: u32, rows: &[String]) -> SimCluster {
    let sim = SimCluster::bootstrap(
        ClusterConfig::new(dir(tag), nodes)
            .with_pool_capacity(256 * KB)
            .with_page_size(4 * KB),
        "pangea-default-keypair",
    )
    .unwrap();
    let set = sim
        .create_dist_set("lines", PartitionScheme::round_robin(8))
        .unwrap();
    let mut d = set.loader().unwrap();
    for row in rows {
        d.dispatch(row.as_bytes()).unwrap();
    }
    d.finish().unwrap();
    sim.map_shuffle("lines", "words", &word_map(), word_scheme())
        .unwrap();
    sim
}

fn wait_dead(cluster: &RemoteCluster, nodes: &[NodeId]) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let dead = cluster.dead_workers().unwrap();
        if nodes.iter().all(|n| dead.contains(n)) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "manager never declared {nodes:?} dead (saw {dead:?})"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn map_shuffle_ships_tasks_with_zero_driver_payload_and_matches_sim() {
    let (_mgr, mgr_addr) = mgr_server();
    let fleet: Vec<_> = (0..4)
        .map(|i| worker(&format!("z{i}"), &mgr_addr, i))
        .collect();

    let cluster = RemoteCluster::connect(&mgr_addr, Some(SECRET)).unwrap();
    assert_eq!(cluster.alive_nodes().len(), 4);

    let rows = records(400);
    let set = cluster
        .create_dist_set("lines", PartitionScheme::round_robin(8))
        .unwrap();
    let mut d = set.loader().unwrap();
    for row in &rows {
        d.dispatch(row.as_bytes()).unwrap();
    }
    d.finish().unwrap();

    // The tentpole: the job runs as shipped tasks, and the driver's
    // shared ledger sees not one payload byte while it does.
    let driver_before = cluster.workers().stats().snapshot();
    let report = cluster
        .map_shuffle("lines", "words", &word_map(), word_scheme())
        .unwrap();
    let driver_delta = cluster
        .workers()
        .stats()
        .snapshot()
        .delta_since(&driver_before);
    assert_eq!(report.scanned, 400);
    assert_eq!(report.records_out, 400, "KeyPresent keeps every row");
    assert!(report.bytes_out > 0);
    assert_eq!(report.tasks.len(), 4, "one task per worker");
    assert!(report.tasks.iter().all(|(_, t)| t.scanned > 0));
    assert_eq!(
        driver_delta.net_bytes, 0,
        "map-shuffle payload crossed the driver's wire"
    );
    assert_eq!(driver_delta.net_messages, 0);
    assert_eq!(driver_delta.shuffle_bytes, 0, "the driver shuffles nothing");
    assert_eq!(driver_delta.repair_bytes, 0);

    // The same traffic is attributed worker-side: every worker mapped
    // its share (mapper attribution), and together they appended the
    // materialized output (destination attribution).
    let per_worker: Vec<u64> = fleet
        .iter()
        .map(|(s, _)| s.daemon().stats().snapshot().shuffle_bytes)
        .collect();
    assert!(
        per_worker.iter().all(|&b| b > 0),
        "every worker moved shuffle payload: {per_worker:?}"
    );
    assert!(per_worker.iter().sum::<u64>() >= report.bytes_out);

    // The output is a normal catalog set, fully readable, placed by its
    // scheme, with honest duplicates intact…
    let out = cluster.get_dist_set("words").unwrap().unwrap();
    assert_eq!(out.total_records().unwrap(), 400);
    let scheme = out.scheme().unwrap();
    out.for_each_record(|node, rec| {
        assert!(rec.starts_with(b"w"), "{rec:?} not a projected word");
        assert_eq!(scheme.node_of(rec, 0, 4), node, "{rec:?} misrouted");
    })
    .unwrap();

    // …and matches the serial SimCluster run record-for-record.
    let sim = sim_reference("sim-parity", 4, &rows);
    assert_eq!(
        snapshot_remote(&cluster, "words"),
        snapshot_sim(&sim, "words"),
        "distributed tasks and the serial sim must materialize the same set"
    );
}

/// Pulls one named counter out of a `MetricsDump` metric list (0 when
/// the node never touched it).
fn counter_value(metrics: &[WireMetric], name: &str) -> u64 {
    metrics
        .iter()
        .find_map(|m| match m {
            WireMetric::Counter { name: n, value } if n == name => Some(*value),
            _ => None,
        })
        .unwrap_or(0)
}

/// The observability tentpole, end to end: one distributed wordcount,
/// then `MetricsDump` against every worker proves (a) per-opcode RPC
/// counts matching the job's exact RPC plan, (b) latency histograms
/// populated for every served opcode, and (c) one `job_id`-correlated
/// span set per worker covering the whole fan-out — the driver's
/// `TaskRun` plus the ingest RPCs the *other* mappers pushed in — while
/// the driver's payload ledger still reads exactly zero.
#[test]
fn metrics_dump_correlates_one_job_across_every_worker() {
    let (_mgr, mgr_addr) = mgr_server();
    let fleet: Vec<_> = (0..3)
        .map(|i| worker(&format!("obs{i}"), &mgr_addr, i))
        .collect();
    let cluster = RemoteCluster::connect(&mgr_addr, Some(SECRET)).unwrap();

    // 97 distinct words (coprime with the 8-way input striping) so
    // every mapper emits words into every output partition: each
    // (mapper, destination) pair is guaranteed live, which is what
    // makes the RPC plan below exact.
    let rows: Vec<String> = (0..400)
        .map(|i| format!("u{}|w{:02}|row-{i:05}", i % 7, i % 97))
        .collect();
    let set = cluster
        .create_dist_set("lines", PartitionScheme::round_robin(8))
        .unwrap();
    let mut d = set.loader().unwrap();
    for row in &rows {
        d.dispatch(row.as_bytes()).unwrap();
    }
    d.finish().unwrap();

    let driver_before = cluster.workers().stats().snapshot();
    cluster
        .map_shuffle("lines", "words", &word_map(), word_scheme())
        .unwrap();
    let job = cluster.workers().last_job().expect("map_shuffle is traced");

    // The driver recorded one span per RPC it issued under the job, all
    // ok, and its payload ledger never moved (the dump below uses its
    // own fresh clients, so it cannot move it either).
    let driver_spans: Vec<_> = cluster
        .workers()
        .obs()
        .ring()
        .since(0)
        .into_iter()
        .filter(|(_, s)| s.job == job)
        .collect();
    // 3 TaskRun + 3 IngestBegin + 3 IngestEnd at minimum.
    assert!(driver_spans.len() >= 9, "driver spans: {driver_spans:?}");
    assert!(driver_spans.iter().all(|(_, s)| s.outcome == "ok"));

    for (i, (server, _agent)) in fleet.iter().enumerate() {
        let mut dump =
            PangeaClient::connect_with_secret(server.local_addr(), Some(SECRET)).unwrap();
        let (metrics, spans) = dump.metrics_dump().unwrap();

        // (a) Exact opcode counts from the job's RPC plan: the driver
        // opens and seals one ingest session and runs one task on every
        // worker; the two *other* mappers each push at least one
        // `IngestAppend` batch (13 distinct words cover all 8 output
        // partitions, so every mapper emits to every destination — the
        // self-destined share never becomes an RPC).
        let count = |name: &str| counter_value(&metrics, name);
        assert_eq!(count("rpc.count.TaskRun"), 1, "worker {i}");
        assert_eq!(count("rpc.count.IngestBegin"), 1, "worker {i}");
        assert_eq!(count("rpc.count.IngestEnd"), 1, "worker {i}");
        assert!(
            count("rpc.count.IngestAppend") >= 2,
            "worker {i}: expected pushes from both peer mappers, got {}",
            count("rpc.count.IngestAppend")
        );
        assert!(count("rpc.bytes.IngestAppend") > 0, "worker {i}");
        assert_eq!(
            counter_value(&metrics, "sessions.ingest.begun"),
            1,
            "worker {i}"
        );
        assert_eq!(
            counter_value(&metrics, "sessions.ingest.ended"),
            1,
            "worker {i}"
        );

        // (b) A populated latency histogram for every served opcode.
        for op in ["TaskRun", "IngestBegin", "IngestAppend", "IngestEnd"] {
            let hist = metrics.iter().find_map(|m| match m {
                WireMetric::Histogram { name, count, .. }
                    if name == &format!("rpc.latency_ns.{op}") =>
                {
                    Some(*count)
                }
                _ => None,
            });
            assert_eq!(
                hist,
                Some(count(&format!("rpc.count.{op}"))),
                "worker {i}: histogram count must match rpc.count.{op}"
            );
        }

        // (c) The job's complete span set on this worker: every opcode
        // in the fan-out appears under the driver's job id, stitched to
        // a parent span, monotonic, and ok.
        let job_spans: Vec<_> = spans.iter().filter(|s| s.job == job).collect();
        for op in ["TaskRun", "IngestBegin", "IngestAppend", "IngestEnd"] {
            assert!(
                job_spans.iter().any(|s| s.op == op),
                "worker {i}: no {op} span under job {job}: {job_spans:?}"
            );
        }
        for s in &job_spans {
            assert_eq!(s.outcome, "ok", "worker {i}: {s:?}");
            assert_ne!(s.span, 0, "worker {i}: {s:?}");
            assert_ne!(s.parent, 0, "worker {i}: spans stitch to a caller");
            assert!(s.end_ns >= s.start_ns, "worker {i}: {s:?}");
        }
        // The ingest pushes arrived from the peer mappers' TaskRun
        // spans, not from the driver: at least one `IngestAppend` span's
        // parent is missing from this worker's own span ids.
        let own: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.span).collect();
        assert!(
            job_spans
                .iter()
                .any(|s| s.op == "IngestAppend" && !own.contains(&s.parent)),
            "worker {i}: ingest pushes must stitch under remote mapper spans"
        );
    }

    // The dump clients used their own ledgers: the driver's shared
    // payload ledger is still untouched by the whole job + inspection.
    let driver_delta = cluster
        .workers()
        .stats()
        .snapshot()
        .delta_since(&driver_before);
    assert_eq!(driver_delta.net_bytes, 0);
    assert_eq!(driver_delta.shuffle_bytes, 0);
}

/// Round-robin *output* parity: both backends stripe per source node
/// with a slot-offset start, so even ordinal-placed outputs land on the
/// same nodes as the serial reference — the divergence the old
/// per-source-from-zero vs global-ordinal split silently hid.
#[test]
fn round_robin_output_matches_serial_sim_per_node() {
    let (_mgr, mgr_addr) = mgr_server();
    let _fleet: Vec<_> = (0..3)
        .map(|i| worker(&format!("rr{i}"), &mgr_addr, i))
        .collect();

    let cluster = RemoteCluster::connect(&mgr_addr, Some(SECRET)).unwrap();
    let rows = records(300);
    let set = cluster
        .create_dist_set("lines", PartitionScheme::hash_field("uid", 8, b'|', 0))
        .unwrap();
    let mut d = set.loader().unwrap();
    for row in &rows {
        d.dispatch(row.as_bytes()).unwrap();
    }
    d.finish().unwrap();

    // Identity map, round-robin output over 7 partitions striping 3
    // nodes (a partition count coprime to the fleet, so any striping
    // mistake shows up as misplacement, not coincidental agreement).
    let report = cluster
        .map_shuffle(
            "lines",
            "sprayed",
            &MapSpec::identity(),
            PartitionScheme::round_robin(7),
        )
        .unwrap();
    assert_eq!(report.records_out, 300);

    let sim = SimCluster::bootstrap(
        ClusterConfig::new(dir("sim-rr-parity"), 3)
            .with_pool_capacity(256 * KB)
            .with_page_size(4 * KB),
        "pangea-default-keypair",
    )
    .unwrap();
    let sset = sim
        .create_dist_set("lines", PartitionScheme::hash_field("uid", 8, b'|', 0))
        .unwrap();
    let mut sd = sset.loader().unwrap();
    for row in &rows {
        sd.dispatch(row.as_bytes()).unwrap();
    }
    sd.finish().unwrap();
    sim.map_shuffle(
        "lines",
        "sprayed",
        &MapSpec::identity(),
        PartitionScheme::round_robin(7),
    )
    .unwrap();
    assert_eq!(
        snapshot_remote(&cluster, "sprayed"),
        snapshot_sim(&sim, "sprayed"),
        "round-robin outputs must place per-node identically under the \
         documented per-source striping"
    );
}

/// The tentpole: a full distributed map-combine-reduce. Raw text lines
/// flat-map into words, every mapper combines its share per key, the
/// destinations merge partials, and the materialized counts match the
/// serial fold — with zero driver payload and strictly fewer shuffle
/// bytes than the same job shipped uncombined.
#[test]
fn reduce_wordcount_combines_at_the_source_and_matches_sim() {
    let (_mgr, mgr_addr) = mgr_server();
    let fleet: Vec<_> = (0..4)
        .map(|i| worker(&format!("red{i}"), &mgr_addr, i))
        .collect();

    let cluster = RemoteCluster::connect(&mgr_addr, Some(SECRET)).unwrap();
    // Raw space-separated lines — no pre-split input; the flat-map
    // tokenizes. Few distinct words, so combining collapses a lot.
    let lines: Vec<String> = (0..120)
        .map(|i| {
            format!(
                "w{:02} w{:02} v{:02} filler{}",
                i % 7,
                i % 7,
                (i + 1) % 13,
                i % 3
            )
        })
        .collect();
    let set = cluster
        .create_dist_set("lines", PartitionScheme::round_robin(8))
        .unwrap();
    let mut d = set.loader().unwrap();
    for row in &lines {
        d.dispatch(row.as_bytes()).unwrap();
    }
    d.finish().unwrap();

    let map = MapSpec::tokenize(b' ');
    let reduce = ReduceSpec::count(KeySpec::WholeRecord, b'|');
    let out_scheme = || PartitionScheme::hash_field("word", 8, b'|', 0);

    // Baseline: the same job uncombined (map-only shuffle of raw
    // tokens) — its task reports price the unreduced shuffle.
    let plain = cluster
        .map_shuffle(
            "lines",
            "tokens",
            &map,
            PartitionScheme::hash_whole("word", 8),
        )
        .unwrap();
    assert_eq!(plain.records_out, 120 * 4, "every token materializes");

    let driver_before = cluster.workers().stats().snapshot();
    let reduced = cluster
        .map_reduce("lines", "counts", &map, &reduce, out_scheme())
        .unwrap();
    let driver_delta = cluster
        .workers()
        .stats()
        .snapshot()
        .delta_since(&driver_before);

    // Zero payload through the driver, real payload on every worker.
    assert_eq!(
        driver_delta.net_bytes, 0,
        "reduce payload crossed the driver"
    );
    assert_eq!(driver_delta.shuffle_bytes, 0);
    let per_worker: Vec<u64> = fleet
        .iter()
        .map(|(s, _)| s.daemon().stats().snapshot().shuffle_bytes)
        .collect();
    assert!(
        per_worker.iter().all(|&b| b > 0),
        "every worker moved shuffle payload: {per_worker:?}"
    );

    // Source-side combine shrinks the shuffle: the reduced job shipped
    // strictly fewer worker→worker bytes than the uncombined one.
    let shipped = |r: &pangea::cluster::MapShuffleReport| -> u64 {
        r.tasks.iter().map(|(_, t)| t.emitted_bytes).sum()
    };
    assert!(
        shipped(&reduced) < shipped(&plain),
        "combine must shrink shuffle bytes: {} vs {}",
        shipped(&reduced),
        shipped(&plain)
    );
    assert_eq!(reduced.scanned, 120, "reduce scans the raw lines");
    assert_eq!(
        reduced.records_out,
        7 + 13 + 3,
        "one materialized record per distinct word"
    );

    // The counts are right: every `word|count` row carries the fold of
    // the whole corpus, and each word lives on exactly one node.
    let mut seen = std::collections::HashMap::new();
    cluster
        .get_dist_set("counts")
        .unwrap()
        .unwrap()
        .for_each_record(|node, rec| {
            let (word, count) = reduce.decode_record(rec).unwrap();
            assert!(
                seen.insert(word.to_vec(), (node, count)).is_none(),
                "word duplicated across the output"
            );
        })
        .unwrap();
    // w00..w06 appear twice per line in 120/7-ish lines; spot-check by
    // recomputing from the corpus.
    let mut expect = std::collections::HashMap::new();
    for line in &lines {
        for tok in line.split(' ') {
            *expect.entry(tok.as_bytes().to_vec()).or_insert(0i64) += 1;
        }
    }
    assert_eq!(seen.len(), expect.len());
    for (word, count) in &expect {
        assert_eq!(seen[word].1, *count, "miscount for {word:?}");
    }

    // Record-for-record (and placement) parity with the serial fold.
    let sim = SimCluster::bootstrap(
        ClusterConfig::new(dir("sim-reduce-parity"), 4)
            .with_pool_capacity(256 * KB)
            .with_page_size(4 * KB),
        "pangea-default-keypair",
    )
    .unwrap();
    let sset = sim
        .create_dist_set("lines", PartitionScheme::round_robin(8))
        .unwrap();
    let mut sd = sset.loader().unwrap();
    for row in &lines {
        sd.dispatch(row.as_bytes()).unwrap();
    }
    sd.finish().unwrap();
    sim.map_reduce("lines", "counts", &map, &reduce, out_scheme())
        .unwrap();
    assert_eq!(
        snapshot_remote(&cluster, "counts"),
        snapshot_sim(&sim, "counts"),
        "distributed combine-then-merge and the serial fold must converge"
    );

    // A reduce demands a key-field hash scheme; anything else is a
    // typed usage error before anything destructive runs.
    match cluster.map_reduce(
        "lines",
        "counts",
        &map,
        &reduce,
        PartitionScheme::hash_whole("word", 8),
    ) {
        Err(PangeaError::Remote(m)) | Err(PangeaError::InvalidUsage(m)) => {
            assert!(m.contains("hash_field"), "{m}");
        }
        other => panic!("expected typed usage error, got {other:?}"),
    }
    assert_eq!(
        cluster
            .get_dist_set("counts")
            .unwrap()
            .unwrap()
            .total_records()
            .unwrap(),
        23,
        "the rejected job must not have touched the existing output"
    );
}

#[test]
fn per_worker_tasks_run_in_parallel() {
    let (_mgr, mgr_addr) = mgr_server();
    let _fleet: Vec<_> = (0..3)
        .map(|i| worker(&format!("p{i}"), &mgr_addr, i))
        .collect();

    let cluster = RemoteCluster::connect(&mgr_addr, Some(SECRET)).unwrap();
    let set = cluster
        .create_dist_set("lines", PartitionScheme::round_robin(8))
        .unwrap();
    let mut d = set.loader().unwrap();
    for row in records(60) {
        d.dispatch(row.as_bytes()).unwrap();
    }
    d.finish().unwrap();

    // Rendezvous: each worker's task announces itself, then waits for
    // the others. `overlapped` only becomes true if all three task
    // launches were in flight at the same time — a serialized driver
    // would park the first task forever and fail the deadline loudly.
    let arrivals = Arc::new(AtomicUsize::new(0));
    let overlapped = Arc::new(AtomicBool::new(false));
    {
        let arrivals = Arc::clone(&arrivals);
        let overlapped = Arc::clone(&overlapped);
        cluster.set_task_hook(Some(Arc::new(move |n: NodeId| {
            arrivals.fetch_add(1, Ordering::SeqCst);
            let deadline = Instant::now() + Duration::from_secs(10);
            while arrivals.load(Ordering::SeqCst) < 3 {
                assert!(
                    Instant::now() < deadline,
                    "task for {n} waited 10s without concurrent peer tasks"
                );
                std::thread::sleep(Duration::from_millis(1));
            }
            overlapped.store(true, Ordering::SeqCst);
        })));
    }
    let report = cluster
        .map_shuffle("lines", "words", &word_map(), word_scheme())
        .unwrap();
    cluster.set_task_hook(None);
    assert!(
        overlapped.load(Ordering::SeqCst),
        "tasks ran serially; expected overlapping TaskRun RPCs"
    );
    assert_eq!(report.tasks.len(), 3);
    assert_eq!(report.records_out, 60);
}

#[test]
fn killed_worker_mid_job_is_typed_and_idempotent_retry_completes() {
    let (_mgr, mgr_addr) = mgr_server();
    let (s0, _a0) = worker("k0", &mgr_addr, 0);
    let (s1, _a1) = worker("k1", &mgr_addr, 1);
    let (s2, a2) = worker("k2", &mgr_addr, 2);
    let (s3, _a3) = worker("k3", &mgr_addr, 3);

    let cluster = RemoteCluster::connect(&mgr_addr, Some(SECRET)).unwrap();
    let rows = records(400);
    let set = cluster
        .create_dist_set("lines", PartitionScheme::hash_field("uid", 8, b'|', 0))
        .unwrap();
    let mut d = set.loader().unwrap();
    for row in &rows {
        d.dispatch(row.as_bytes()).unwrap();
    }
    d.finish().unwrap();
    // Replicate the input so the killed worker's share is recoverable
    // before the retry.
    cluster
        .register_replica(
            "lines",
            "lines_f1",
            PartitionScheme::hash_field("f1", 8, b'|', 1),
        )
        .unwrap();
    let before_lines = snapshot_remote(&cluster, "lines");

    // The kill is injected at the task rendezvous: once every task
    // launch is in flight, worker 2's process dies *before its TaskRun
    // is issued* — its own task dials a dead address, and sibling
    // mappers lose their push destination mid-task.
    let victim = std::sync::Mutex::new(Some((s2, a2)));
    let arrivals = Arc::new(AtomicUsize::new(0));
    let hook_arrivals = Arc::clone(&arrivals);
    cluster.set_task_hook(Some(Arc::new(move |n: NodeId| {
        if n == NodeId(2) {
            if let Some((mut server, mut agent)) = victim.lock().unwrap().take() {
                agent.abandon();
                server.shutdown();
            }
        }
        hook_arrivals.fetch_add(1, Ordering::SeqCst);
        let deadline = Instant::now() + Duration::from_secs(10);
        while hook_arrivals.load(Ordering::SeqCst) < 4 {
            assert!(Instant::now() < deadline, "task rendezvous timed out");
            std::thread::sleep(Duration::from_millis(1));
        }
    })));
    let outcome = cluster.map_shuffle("lines", "words", &word_map(), word_scheme());
    cluster.set_task_hook(None);
    match outcome {
        Err(PangeaError::NodeUnavailable(n)) => assert_eq!(n, NodeId(2)),
        other => panic!("expected typed NodeUnavailable(node#2), got {other:?}"),
    }

    // The failed job was traced too: the driver's span ring holds the
    // fatal RPC against the killed worker with the typed outcome text,
    // correlated under the failed job's id.
    let failed_job = cluster
        .workers()
        .last_job()
        .expect("the failed job allocated a trace id");
    let spans = cluster.workers().obs().ring().since(0);
    assert!(
        spans
            .iter()
            .any(|(_, s)| s.job == failed_job && s.outcome.contains("unavailable")),
        "no NodeUnavailable-outcome driver span under job {failed_job}: {spans:?}"
    );

    // While the slot is known-dead, the job is refused up front with
    // the same typed error — a task fleet missing a slot would silently
    // drop that slot's input share from the output.
    wait_dead(&cluster, &[NodeId(2)]);
    match cluster.map_shuffle("lines", "words", &word_map(), word_scheme()) {
        Err(PangeaError::NodeUnavailable(n)) => assert_eq!(n, NodeId(2)),
        other => panic!("expected dead-slot refusal, got {other:?}"),
    }

    // A replacement takes the slot; recovery restores the lost input
    // share worker→worker (PR 3), and the retry of the *same* job
    // completes — materializing the output afresh, no duplicates.
    let (_s2b, _a2b) = worker("k2-replacement", &mgr_addr, 2);
    let recovery = cluster.recover_worker(NodeId(2)).unwrap();
    assert!(recovery.objects_restored > 0);
    assert_eq!(snapshot_remote(&cluster, "lines"), before_lines);

    let report = cluster
        .map_shuffle("lines", "words", &word_map(), word_scheme())
        .unwrap();
    assert_eq!(report.records_out, 400, "retry materializes every record");
    assert_eq!(
        cluster
            .get_dist_set("words")
            .unwrap()
            .unwrap()
            .total_records()
            .unwrap(),
        400,
        "no duplicates survive the failed first attempt"
    );

    // Record-for-record parity with a clean serial sim run: the failed
    // attempt left no trace in the materialized output.
    let sim = SimCluster::bootstrap(
        ClusterConfig::new(dir("sim-retry-parity"), 4)
            .with_pool_capacity(256 * KB)
            .with_page_size(4 * KB),
        "pangea-default-keypair",
    )
    .unwrap();
    let sset = sim
        .create_dist_set("lines", PartitionScheme::hash_field("uid", 8, b'|', 0))
        .unwrap();
    let mut sd = sset.loader().unwrap();
    for row in &rows {
        sd.dispatch(row.as_bytes()).unwrap();
    }
    sd.finish().unwrap();
    sim.map_shuffle("lines", "words", &word_map(), word_scheme())
        .unwrap();
    assert_eq!(
        snapshot_remote(&cluster, "words"),
        snapshot_sim(&sim, "words"),
        "retried remote job and clean serial sim must converge"
    );
    drop((s0, s1, s3));
}

#[test]
fn closure_keyed_scheme_is_a_typed_not_wire_safe_error() {
    let (_mgr, mgr_addr) = mgr_server();
    let _fleet: Vec<_> = (0..2)
        .map(|i| worker(&format!("c{i}"), &mgr_addr, i))
        .collect();

    let cluster = RemoteCluster::connect(&mgr_addr, Some(SECRET)).unwrap();
    let set = cluster
        .create_dist_set("lines", PartitionScheme::round_robin(4))
        .unwrap();
    let mut d = set.loader().unwrap();
    d.dispatch(b"0|w|x").unwrap();
    d.finish().unwrap();

    // A UDF-closure scheme cannot ship with a task: typed error, no
    // silent fallback through the driver.
    let closure_scheme = PartitionScheme::hash("word", 8, |r: &[u8]| r.to_vec());
    match cluster.map_shuffle("lines", "words", &MapSpec::identity(), closure_scheme) {
        Err(PangeaError::NotWireSafe(m)) => {
            assert!(m.contains("hash_field") || m.contains("closure"), "{m}");
        }
        other => panic!("expected typed NotWireSafe, got {other:?}"),
    }
    // The declarative equivalent works.
    cluster
        .map_shuffle(
            "lines",
            "words",
            &MapSpec::identity(),
            PartitionScheme::hash_whole("word", 8),
        )
        .unwrap();
    // A rejected job must reject *before* anything destructive: a
    // closure scheme that happens to share the output's kind/partitions/
    // key name fails typed and leaves the existing output untouched.
    let lookalike = PartitionScheme::hash("word", 8, |r: &[u8]| r.to_vec());
    match cluster.map_shuffle("lines", "words", &MapSpec::identity(), lookalike) {
        Err(PangeaError::NotWireSafe(_)) => {}
        other => panic!("expected typed NotWireSafe, got {other:?}"),
    }
    let out = cluster.get_dist_set("words").unwrap().unwrap();
    assert_eq!(
        out.total_records().unwrap(),
        1,
        "a rejected job must not have dropped the existing output"
    );
}
