//! End-to-end control-plane test: one `pangea-mgr` plus three `pangead`
//! workers over real loopback TCP, driven purely through
//! [`RemoteCluster`] — no shared memory between the driver and any
//! worker. Covers the acceptance flow: registration, wire-served
//! catalog, batched dispatch, a distributed shuffle, a worker killed and
//! detected via missed heartbeats, and replica-based recovery — with
//! payload net-byte accounting matching the equivalent `SimNetwork` run.

use pangea::cluster::{ClusterConfig, PartitionScheme, SimCluster};
use pangea::common::{NodeId, PangeaError, KB};
use pangea::coord::{MgrServer, RemoteCluster, WorkerAgent};
use pangea::core::{NodeConfig, StorageNode};
use pangea::net::{PangeadServer, WorkerState};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const SECRET: &str = "e2e-deployment-secret";

fn dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "pangea-coord-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn small_node(tag: &str) -> StorageNode {
    StorageNode::new(
        NodeConfig::new(dir(tag))
            .with_pool_capacity(256 * KB)
            .with_page_size(4 * KB),
    )
    .unwrap()
}

/// Boots one worker: a secret-gated `pangead` plus its heartbeating
/// control-plane agent, registered at an explicit slot.
fn worker(tag: &str, mgr: &str, slot: u32) -> (PangeadServer, WorkerAgent) {
    let server =
        PangeadServer::bind_with_secret(small_node(tag), "127.0.0.1:0", Some(SECRET.into()))
            .unwrap();
    let agent = WorkerAgent::register(
        mgr,
        Some(SECRET),
        &server.local_addr().to_string(),
        Some(NodeId(slot)),
        Duration::from_millis(50),
    )
    .unwrap();
    assert_eq!(agent.node(), NodeId(slot));
    (server, agent)
}

fn records(n: u32) -> Vec<String> {
    (0..n)
        .map(|i| format!("{}|{}|row-{i:05}", i % 37, i % 11))
        .collect()
}

/// The byte count the same load costs on the in-process simulation:
/// every record crosses the simulated wire once (external loader).
fn sim_net_bytes_for_load(rows: &[String]) -> u64 {
    let config = ClusterConfig::new(dir("sim-parity"), 3)
        .with_pool_capacity(256 * KB)
        .with_page_size(4 * KB);
    let cluster = SimCluster::bootstrap(config, "pangea-default-keypair").unwrap();
    let set = cluster
        .create_dist_set("users", PartitionScheme::hash_field("uid", 6, b'|', 0))
        .unwrap();
    let mut d = set.loader().unwrap();
    for row in rows {
        d.dispatch(row.as_bytes()).unwrap();
    }
    d.finish().unwrap();
    cluster.network().bytes_moved()
}

#[test]
fn full_control_plane_flow_over_loopback_tcp() {
    // -- Control plane up: manager with a tight liveness timeout. ------
    let mgr = MgrServer::bind_with(
        "127.0.0.1:0",
        Duration::from_millis(300),
        Some(SECRET.into()),
    )
    .unwrap();
    let mgr_addr = mgr.local_addr().to_string();

    // -- Three workers register and heartbeat. -------------------------
    let (_s0, _a0) = worker("w0", &mgr_addr, 0);
    let (mut s1, mut a1) = worker("w1", &mgr_addr, 1);
    let (_s2, _a2) = worker("w2", &mgr_addr, 2);

    let cluster = RemoteCluster::connect(&mgr_addr, Some(SECRET)).unwrap();
    assert_eq!(cluster.num_nodes(), 3);
    assert_eq!(cluster.alive_nodes(), vec![NodeId(0), NodeId(1), NodeId(2)]);

    // An unauthenticated driver is rejected with a typed error.
    match RemoteCluster::connect(&mgr_addr, None) {
        Err(PangeaError::Unauthenticated(_)) => {}
        other => panic!("expected Unauthenticated, got {other:?}"),
    }

    // -- Partitioned set via the wire catalog, batched dispatch. -------
    let rows = records(300);
    let set = cluster
        .create_dist_set("users", PartitionScheme::hash_field("uid", 6, b'|', 0))
        .unwrap();
    let before_load = cluster.workers().stats().snapshot().net_bytes;
    let mut d = set.loader().unwrap();
    for row in &rows {
        d.dispatch(row.as_bytes()).unwrap();
    }
    d.finish().unwrap();
    let load_bytes = cluster.workers().stats().snapshot().net_bytes - before_load;

    // Payload accounting parity with the simulation: the same load over
    // SimNetwork moves exactly the same payload bytes.
    let payload: u64 = rows.iter().map(|r| r.len() as u64).sum();
    assert_eq!(load_bytes, payload);
    assert_eq!(load_bytes, sim_net_bytes_for_load(&rows));

    // Fewer wire messages than records: dispatch batched per destination.
    let msgs = cluster.workers().stats().snapshot().net_messages;
    assert!(
        msgs * 10 <= rows.len() as u64,
        "batching should collapse {} records into few RPCs, saw {msgs}",
        rows.len()
    );

    assert_eq!(set.total_records().unwrap(), 300);
    // The catalog entry round-tripped the wire: stats accumulated and
    // the scheme survived as a declarative spec.
    let entry = cluster.core().catalog().entry("users").unwrap().unwrap();
    assert_eq!(entry.stats.objects, 300);
    assert_eq!(entry.scheme.key_name, "uid");

    // Hash placement held: every record landed where the scheme says.
    let scheme = set.scheme().unwrap();
    set.for_each_record(|node, rec| {
        assert_eq!(scheme.node_of(rec, 0, 3), node);
    })
    .unwrap();

    // -- A replica under a different key (recovery needs a sibling). ---
    let report = cluster
        .register_replica(
            "users",
            "users_f1",
            PartitionScheme::hash_field("f1", 6, b'|', 1),
        )
        .unwrap();
    assert_eq!(report.objects, 300);
    assert_eq!(
        cluster.best_replica("users", "f1").unwrap().as_deref(),
        Some("users_f1"),
        "the wire-served statistics DB answers best-replica queries"
    );

    // -- Distributed shuffle, driver-routed and batched. ---------------
    let mut shuffle = cluster.shuffle("wc", 4).unwrap();
    let words: Vec<String> = (0..200).map(|i| format!("word-{:03}", i % 50)).collect();
    let before_shuffle = cluster.workers().stats().snapshot().net_bytes;
    for w in &words {
        shuffle.send(w.as_bytes(), w.as_bytes()).unwrap();
    }
    let word_bytes: u64 = words.iter().map(|w| w.len() as u64).sum();
    shuffle.finish().unwrap();
    let shuffled_bytes = cluster.workers().stats().snapshot().net_bytes - before_shuffle;
    assert_eq!(
        shuffled_bytes, word_bytes,
        "every shuffle payload byte crossed the wire exactly once"
    );
    let mut seen = 0usize;
    for p in 0..4u32 {
        let core = cluster.core();
        core.workers()
            .scan(NodeId(p % 3), &format!("wc.part{p}"), &mut |rec| {
                let w = String::from_utf8(rec.to_vec()).unwrap();
                let expect = (pangea::common::fx_hash64(w.as_bytes()) % 4) as u32;
                assert_eq!(expect, p, "record {w} landed in the wrong partition");
                seen += 1;
                Ok(())
            })
            .unwrap();
    }
    assert_eq!(seen, words.len());

    // -- Kill a worker; the manager detects it via missed heartbeats. --
    let before_kill = snapshot_set(&cluster, "users");
    let before_kill_f1 = snapshot_set(&cluster, "users_f1");
    a1.abandon(); // heartbeats stop, no deregistration: a crash
    s1.shutdown();

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let dead = cluster.dead_workers().unwrap();
        if dead.contains(&NodeId(1)) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "manager never declared node#1 dead"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(cluster.alive_nodes(), vec![NodeId(0), NodeId(2)]);

    // Recovery without a replacement is a usage error, not a hang.
    match cluster.recover_worker(NodeId(1)) {
        Err(PangeaError::InvalidUsage(m)) => assert!(m.contains("--slot 1"), "{m}"),
        other => panic!("expected usage error, got {other:?}"),
    }

    // -- A replacement takes the slot; recovery restores the data. -----
    let (_s1b, a1b) = worker("w1-replacement", &mgr_addr, 1);
    assert!(a1b.epoch() > a1.epoch(), "replacement gets a fresh epoch");
    let recovery = cluster.recover_worker(NodeId(1)).unwrap();
    assert_eq!(recovery.failed, NodeId(1));
    assert!(recovery.objects_restored > 0);
    assert!(recovery.bytes_moved > 0, "recovery moved bytes over TCP");
    assert_eq!(cluster.alive_nodes().len(), 3);

    assert_eq!(
        snapshot_set(&cluster, "users"),
        before_kill,
        "every 'users' record restored"
    );
    assert_eq!(
        snapshot_set(&cluster, "users_f1"),
        before_kill_f1,
        "every 'users_f1' record restored"
    );
    // Hash replicas are restored *in place*: keys still map home.
    let f1 = cluster.get_dist_set("users_f1").unwrap().unwrap();
    let f1_scheme = f1.scheme().unwrap();
    f1.for_each_record(|node, rec| {
        assert_eq!(f1_scheme.node_of(rec, 0, 3), node);
    })
    .unwrap();

    // -- Clean exit deregisters (Left, not Dead — recovery skips it). --
    let (_s3, mut a3) = worker("w3", &mgr_addr, 3);
    a3.shutdown().unwrap();
    let workers = cluster.refresh_membership().unwrap();
    let w3 = workers.iter().find(|w| w.node == 3).unwrap();
    assert_eq!(w3.state, WorkerState::Left);
}

fn snapshot_set(cluster: &RemoteCluster, name: &str) -> BTreeMap<Vec<u8>, u32> {
    let set = cluster.get_dist_set(name).unwrap().unwrap();
    let mut m = BTreeMap::new();
    set.for_each_record(|_, rec| {
        *m.entry(rec.to_vec()).or_insert(0) += 1;
    })
    .unwrap();
    m
}
