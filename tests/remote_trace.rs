//! E2E suite for continuous fleet telemetry: a real `pangea-mgr` with
//! its scrape loop on, real `pangead` workers over loopback TCP, and
//! the `pangea-mgr trace` path proven end to end:
//!
//! 1. A distributed map-reduce leaves a **single connected cross-node
//!    span tree** in the manager's retained store — rooted at the
//!    driver's job span, every worker `TaskRun`/`IngestAppend`
//!    reachable from it, with a non-empty critical path and byte
//!    attribution on the cross-node hops.
//! 2. The scrape loop is **incremental and bounded**: once the fleet
//!    goes idle, repeated scrapes ship zero new spans.
//! 3. Resource gauges are truthful: each worker's retained
//!    `mem.share_bytes` matches the ground-truth sum of its in-process
//!    sets' bytes-on-disk within one scrape interval.
//! 4. A worker ring that **wraps past the scrape cursor** surfaces as a
//!    nonzero dropped-span count — an incomplete trace must say so.

use pangea::cluster::PartitionScheme;
use pangea::common::{NodeId, KB};
use pangea::coord::{trace, ManagerClient, MgrServer, RemoteCluster, WorkerAgent};
use pangea::core::{NodeConfig, StorageNode};
use pangea::net::{FilterSpec, KeySpec, MapSpec, PangeadServer, ReduceSpec, WireMetric};
use pangea::obs::{SpanRecord, SpanTree};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const SECRET: &str = "trace-deployment-secret";
const SCRAPE: Duration = Duration::from_millis(50);

fn dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "pangea-trace-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn small_node(tag: &str) -> StorageNode {
    StorageNode::new(
        NodeConfig::new(dir(tag))
            .with_pool_capacity(256 * KB)
            .with_page_size(4 * KB),
    )
    .unwrap()
}

fn worker(tag: &str, mgr: &str, slot: u32) -> (PangeadServer, WorkerAgent) {
    let server =
        PangeadServer::bind_with_secret(small_node(tag), "127.0.0.1:0", Some(SECRET.into()))
            .unwrap();
    let agent = WorkerAgent::register(
        mgr,
        Some(SECRET),
        &server.local_addr().to_string(),
        Some(NodeId(slot)),
        Duration::from_millis(50),
    )
    .unwrap();
    (server, agent)
}

/// A manager with the scrape loop ticking fast enough for the tests'
/// deadlines.
fn scraping_mgr() -> (MgrServer, String) {
    let mgr = MgrServer::bind_full(
        "127.0.0.1:0",
        Duration::from_millis(300),
        Some(SECRET.into()),
        Some(SCRAPE),
    )
    .unwrap();
    let addr = mgr.local_addr().to_string();
    (mgr, addr)
}

fn word_map() -> MapSpec {
    MapSpec::extract(KeySpec::Field {
        delim: b'|',
        index: 1,
    })
    .with_filter(FilterSpec::KeyPresent {
        key: KeySpec::Field {
            delim: b'|',
            index: 0,
        },
    })
}

/// Polls the manager's trace store until `job` stitches into a tree
/// passing `done`, or panics at the deadline with the last tree's
/// shape.
fn wait_for_tree(mgr_addr: &str, job: u64, done: impl Fn(&SpanTree) -> bool) -> (SpanTree, u64) {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let (tree, dropped) = trace::fetch(mgr_addr, Some(SECRET), job).unwrap();
        if done(&tree) {
            return (tree, dropped);
        }
        assert!(
            Instant::now() < deadline,
            "trace for job {job} never converged: {} spans, {} roots, missing {:?}",
            tree.spans.len(),
            tree.roots.len(),
            tree.missing_parents
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn gauge_value(metrics: &[WireMetric], name: &str) -> Option<u64> {
    metrics.iter().find_map(|m| match m {
        WireMetric::Gauge { name: n, value } if n == name => Some(*value),
        _ => None,
    })
}

#[test]
fn map_reduce_leaves_one_connected_cross_node_tree() {
    let (_mgr, mgr_addr) = scraping_mgr();
    let fleet: Vec<_> = (0..4)
        .map(|i| worker(&format!("t{i}"), &mgr_addr, i))
        .collect();
    let cluster = RemoteCluster::connect(&mgr_addr, Some(SECRET)).unwrap();

    // 97 distinct words over 8 partitions: every mapper pushes to every
    // destination, so the tree genuinely spans all four workers.
    let rows: Vec<String> = (0..400)
        .map(|i| format!("u{}|w{:02}|row-{i:05}", i % 7, i % 97))
        .collect();
    let set = cluster
        .create_dist_set("lines", PartitionScheme::round_robin(8))
        .unwrap();
    let mut d = set.loader().unwrap();
    for row in &rows {
        d.dispatch(row.as_bytes()).unwrap();
    }
    d.finish().unwrap();

    cluster
        .map_reduce(
            "lines",
            "counts",
            &word_map(),
            &ReduceSpec::count(KeySpec::WholeRecord, b'|'),
            PartitionScheme::hash_field("word", 8, b'|', 0),
        )
        .unwrap();
    let job = cluster.workers().last_job().expect("map_reduce is traced");

    // The scrape loop needs a tick or two to pull every worker's spans;
    // converged means: one root, nothing orphaned, and the job's full
    // fan-out present.
    let has = |tree: &SpanTree, op: &str| tree.spans.iter().any(|s| s.record.op == op);
    let (tree, dropped) = wait_for_tree(&mgr_addr, job, |tree| {
        tree.is_connected() && has(tree, "TaskRun") && has(tree, "IngestAppend")
    });
    assert_eq!(dropped, 0, "no ring wrapped in this quiet fleet");

    // Shape: the driver's job span is the single root; one DriverRpc
    // per driver-issued RPC under it; every worker contributed spans.
    let root = &tree.spans[tree.roots[0]];
    assert_eq!(root.record.op, "DriverJob");
    assert_eq!(root.node, "driver");
    assert!(
        root.children
            .iter()
            .all(|&c| tree.spans[c].record.op == "DriverRpc"),
        "every top-level span is a driver RPC"
    );
    for w in 0..4 {
        let name = format!("worker{w}");
        assert!(
            tree.spans.iter().any(|s| s.node == name),
            "no spans scraped from {name}"
        );
    }
    // Every span in the tree belongs to the queried job.
    assert!(tree.spans.iter().all(|s| s.record.job == job));

    // Analysis: a non-empty critical path from the root, and byte
    // attribution on cross-node hops (the mappers pushed real payload).
    let path = tree.critical_path();
    assert!(!path.is_empty());
    assert_eq!(path[0], tree.roots[0]);
    let hops = tree.bytes_per_hop();
    assert!(
        hops.iter().any(|(_, _, b)| *b > 0),
        "cross-node hops must carry bytes: {hops:?}"
    );

    // The CLI renders the same tree: the JSON document the CI smoke
    // parses reports it connected, and the waterfall marks the path.
    let json = trace::run(&mgr_addr, Some(SECRET), job, true).unwrap();
    assert!(json.contains("\"connected\":true"), "{json}");
    assert!(json.contains("\"roots\":1"), "{json}");
    let text = trace::run(&mgr_addr, Some(SECRET), job, false).unwrap();
    assert!(text.contains("critical path"), "{text}");
    assert!(text.contains("DriverJob"), "{text}");

    // -- incremental & bounded: an idle fleet ships no new spans -------
    let count_now = tree.spans.len();
    std::thread::sleep(SCRAPE * 4);
    let (tree2, _) = trace::fetch(&mgr_addr, Some(SECRET), job).unwrap();
    assert_eq!(
        tree2.spans.len(),
        count_now,
        "idle rescrapes must not grow the job's span set"
    );

    // -- resource gauges: retained share bytes match ground truth ------
    std::thread::sleep(SCRAPE * 3);
    let (metrics, _) = pangea::net::PangeaClient::connect_with_secret(&mgr_addr, Some(SECRET))
        .unwrap()
        .metrics_dump()
        .unwrap();
    for (i, (server, _agent)) in fleet.iter().enumerate() {
        let node = server.daemon().node();
        let truth: u64 = node
            .set_ids()
            .into_iter()
            .filter_map(|id| node.get_set_by_id(id))
            .map(|s| s.bytes_on_disk())
            .sum();
        assert!(truth > 0, "worker {i} holds real shares");
        let scraped = gauge_value(&metrics, &format!("fleet.worker{i}.share_bytes"))
            .unwrap_or_else(|| panic!("no fleet share gauge for worker {i}"));
        assert_eq!(scraped, truth, "worker {i} share bytes diverged");
    }
    // The fleet rate gauges exist for every node, manager included.
    assert!(gauge_value(&metrics, "fleet.mgr.rpc_per_sec").is_some());
    for i in 0..4 {
        assert!(
            gauge_value(&metrics, &format!("fleet.worker{i}.rpc_per_sec")).is_some(),
            "no rate gauge for worker {i}"
        );
        assert!(
            gauge_value(&metrics, &format!("fleet.worker{i}.staleness_ms")).is_some(),
            "no per-worker staleness for worker {i}"
        );
    }
}

#[test]
fn wrapped_worker_ring_surfaces_as_dropped_spans() {
    let (_mgr, mgr_addr) = scraping_mgr();
    let (server, _agent) = worker("wrap0", &mgr_addr, 0);

    // Let the scraper establish its cursor on the live ring first.
    std::thread::sleep(SCRAPE * 4);

    // Stuff the worker's ring far past its capacity (4096) in bursts,
    // faster than any scrape can drain: the ring evicts history the
    // manager never saw. One burst's loss is not deterministic — a
    // scrape tick can land mid-burst and drain part of the ring — so
    // re-burst until the manager's drop ledger has provably
    // accumulated over a thousand lost spans.
    let ring = server.daemon().obs().ring();
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut next_span = 1_000_000u64;
    let dropped = loop {
        for i in 0..6000u64 {
            ring.record(SpanRecord {
                job: 777,
                span: next_span + i,
                parent: 0,
                op: "Burst".to_string(),
                peer: String::new(),
                start_ns: i,
                end_ns: i + 1,
                bytes: 0,
                outcome: "ok".to_string(),
            });
        }
        next_span += 6000;
        std::thread::sleep(SCRAPE * 2);
        let (_, dropped) = ManagerClient::connect(&mgr_addr, Some(SECRET))
            .unwrap()
            .trace_query(777)
            .unwrap();
        if dropped >= 1000 {
            break dropped;
        }
        assert!(
            Instant::now() < deadline,
            "scraper never accumulated the wrapped ring's span loss (at {dropped})"
        );
    };
    assert!(dropped >= 1000, "loop contract");

    // The loss is also on the manager's own registry (scrape counter)
    // and the per-node fleet gauge, so `top` shows it without a trace.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (metrics, _) = pangea::net::PangeaClient::connect_with_secret(&mgr_addr, Some(SECRET))
            .unwrap()
            .metrics_dump()
            .unwrap();
        let counted = metrics.iter().any(|m| {
            matches!(m, WireMetric::Counter { name, value }
                if name == "mgr.scrape.dropped_spans" && *value > 0)
        });
        let gauged =
            gauge_value(&metrics, "fleet.worker0.scrape_dropped_spans").is_some_and(|v| v > 0);
        if counted && gauged {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "dropped-span loss never reached the manager's metrics"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // And the stitched trace for the burst job warns instead of looking
    // complete.
    let text = trace::run(&mgr_addr, Some(SECRET), 777, false).unwrap();
    assert!(text.contains("WARNING"), "{text}");
}
