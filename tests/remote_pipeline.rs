//! Pipelined-wire suite for the multiplexed protocol: a real
//! `pangea-mgr` and `pangead` workers over loopback TCP, the same
//! wordcount shuffle run strict-serial (window 1) and pipelined
//! (window 8), and four properties proven:
//!
//! 1. Both window settings materialize the output **record-for-record
//!    identical to a serial `SimCluster` run** — pipelining reorders
//!    acks, never records.
//! 2. The driver still moves **exactly zero payload bytes** while the
//!    pipelined job runs — correlation ids change scheduling, not
//!    accounting.
//! 3. The pipelining is **observable fleet-wide**: the aggregated
//!    `net.inflight` histogram has p99 > 1 with submissions at depth
//!    ≥ 2 (the serial run can never record a depth above 1).
//! 4. A worker killed mid-pipeline surfaces the **typed**
//!    [`PangeaError::NodeUnavailable`], and after slot recovery an
//!    idempotent retry converges with no duplicates.
//!
//! A separate test pins the credit protocol to PR 8's tight-pool
//! machinery: receivers whose buffer pool is far smaller than the
//! shuffle grant tiny credits, senders demonstrably stall on them
//! (`net.credit_stalls > 0`), and receiver pool residency stays within
//! budget for the whole job.

use pangea::cluster::{ClusterConfig, PartitionScheme, SimCluster};
use pangea::common::{NodeId, PangeaError, KB, MB};
use pangea::coord::{MgrServer, RemoteCluster, WorkerAgent};
use pangea::core::{NodeConfig, StorageNode};
use pangea::net::{FilterSpec, KeySpec, MapSpec, PangeaClient, PangeadServer, WireMetric};
use pangea::obs::quantile_from_buckets;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SECRET: &str = "pipeline-deployment-secret";

fn dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "pangea-pipeline-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Worker pool sized so flow-control credit stays above the configured
/// window (2 MB free / 128 KB batches ⇒ credit 16 > 8): depth is then
/// limited by the *window*, which is what this suite measures.
fn roomy_node(tag: &str) -> StorageNode {
    StorageNode::new(
        NodeConfig::new(dir(tag))
            .with_pool_capacity(2 * MB)
            .with_page_size(4 * KB),
    )
    .unwrap()
}

fn worker_with(node: StorageNode, mgr: &str, slot: u32) -> (PangeadServer, WorkerAgent) {
    let server = PangeadServer::bind_with_secret(node, "127.0.0.1:0", Some(SECRET.into())).unwrap();
    let agent = WorkerAgent::register(
        mgr,
        Some(SECRET),
        &server.local_addr().to_string(),
        Some(NodeId(slot)),
        Duration::from_millis(50),
    )
    .unwrap();
    assert_eq!(agent.node(), NodeId(slot));
    (server, agent)
}

fn mgr_server() -> (MgrServer, String) {
    let mgr = MgrServer::bind_with(
        "127.0.0.1:0",
        Duration::from_millis(300),
        Some(SECRET.into()),
    )
    .unwrap();
    let addr = mgr.local_addr().to_string();
    (mgr, addr)
}

/// Four-token lines: every scanned record flat-maps into four shuffled
/// emissions, so each mapper pushes enough batches per destination for
/// an 8-deep pipeline to actually fill.
fn lines(n: u32) -> Vec<String> {
    (0..n)
        .map(|i| {
            format!(
                "w{:03} t{:03} u{:02} v{:02}",
                i % 199,
                (i * 7 + 3) % 151,
                i % 17,
                (i + 5) % 23
            )
        })
        .collect()
}

fn load(cluster: &RemoteCluster, rows: &[String]) {
    let set = cluster
        .create_dist_set("lines", PartitionScheme::round_robin(8))
        .unwrap();
    let mut d = set.loader().unwrap();
    for row in rows {
        d.dispatch(row.as_bytes()).unwrap();
    }
    d.finish().unwrap();
}

fn snapshot_remote(cluster: &RemoteCluster, name: &str) -> BTreeMap<(u32, Vec<u8>), u32> {
    let set = cluster.get_dist_set(name).unwrap().unwrap();
    let mut m = BTreeMap::new();
    set.for_each_record(|n, rec| {
        *m.entry((n.raw(), rec.to_vec())).or_insert(0) += 1;
    })
    .unwrap();
    m
}

fn snapshot_sim(cluster: &SimCluster, name: &str) -> BTreeMap<(u32, Vec<u8>), u32> {
    let set = cluster.get_dist_set(name).unwrap();
    let mut m = BTreeMap::new();
    set.for_each_record(|n, rec| {
        *m.entry((n.raw(), rec.to_vec())).or_insert(0) += 1;
    })
    .unwrap();
    m
}

fn counter_value(metrics: &[WireMetric], name: &str) -> u64 {
    metrics
        .iter()
        .find_map(|m| match m {
            WireMetric::Counter { name: n, value } if n == name => Some(*value),
            _ => None,
        })
        .unwrap_or(0)
}

fn gauge_value(metrics: &[WireMetric], name: &str) -> Option<u64> {
    metrics.iter().find_map(|m| match m {
        WireMetric::Gauge { name: n, value } if n == name => Some(*value),
        _ => None,
    })
}

fn histogram_buckets(metrics: &[WireMetric], name: &str) -> Option<Vec<u64>> {
    metrics.iter().find_map(|m| match m {
        WireMetric::Histogram {
            name: n, buckets, ..
        } if n == name => Some(buckets.clone()),
        _ => None,
    })
}

#[test]
fn pipelined_shuffle_matches_serial_and_sim_with_zero_driver_payload() {
    let (_mgr, mgr_addr) = mgr_server();
    let fleet: Vec<_> = (0..4)
        .map(|i| worker_with(roomy_node(&format!("pl{i}")), &mgr_addr, i))
        .collect();
    let cluster = RemoteCluster::connect(&mgr_addr, Some(SECRET)).unwrap();

    let rows = lines(4000);
    load(&cluster, &rows);
    let map = MapSpec::tokenize(b' ');
    let scheme = || PartitionScheme::hash_whole("word", 8);

    // Strict-serial baseline first: window 1 is the pre-pipelining
    // behavior, kept addressable for exactly this A/B.
    cluster.set_pipeline_window(1);
    let serial = cluster
        .map_shuffle("lines", "tokens_w1", &map, scheme())
        .unwrap();
    assert_eq!(serial.records_out, rows.len() as u64 * 4);

    // The pipelined run: same bytes, windowed pushes, and not one
    // payload byte through the driver while they fly.
    cluster.set_pipeline_window(8);
    let driver_before = cluster.workers().stats().snapshot();
    let pipelined = cluster
        .map_shuffle("lines", "tokens_w8", &map, scheme())
        .unwrap();
    let driver_delta = cluster
        .workers()
        .stats()
        .snapshot()
        .delta_since(&driver_before);
    assert_eq!(pipelined.records_out, serial.records_out);
    assert_eq!(pipelined.bytes_out, serial.bytes_out);
    assert_eq!(driver_delta.net_bytes, 0, "payload crossed the driver");
    assert_eq!(driver_delta.net_messages, 0);
    assert_eq!(driver_delta.shuffle_bytes, 0);

    // Both windows materialized the same multiset on the same nodes
    // (modulo the set name), and both match the serial SimCluster run
    // record-for-record.
    let w1 = snapshot_remote(&cluster, "tokens_w1");
    let w8 = snapshot_remote(&cluster, "tokens_w8");
    assert_eq!(w1, w8, "window depth must never change the output");

    let sim = SimCluster::bootstrap(
        ClusterConfig::new(dir("sim-pipeline-parity"), 4)
            .with_pool_capacity(2 * MB)
            .with_page_size(4 * KB),
        "pangea-default-keypair",
    )
    .unwrap();
    let sset = sim
        .create_dist_set("lines", PartitionScheme::round_robin(8))
        .unwrap();
    let mut sd = sset.loader().unwrap();
    for row in &rows {
        sd.dispatch(row.as_bytes()).unwrap();
    }
    sd.finish().unwrap();
    sim.map_shuffle("lines", "tokens_w8", &map, scheme())
        .unwrap();
    assert_eq!(
        w8,
        snapshot_sim(&sim, "tokens_w8"),
        "pipelined distributed run and the serial sim must converge"
    );

    // Fleet-wide observability: aggregate every worker's `net.inflight`
    // histogram. The pipelined run drove submission depth past 1 — the
    // p99 clears 1 and depth-≥2 submissions were recorded somewhere —
    // and nobody stalled on credit (the pools were sized so the window,
    // not the receiver, was the binding constraint).
    let mut agg = Vec::new();
    let mut depth_ge_2 = 0u64;
    for (i, (server, _)) in fleet.iter().enumerate() {
        let mut c = PangeaClient::connect_with_secret(server.local_addr(), Some(SECRET)).unwrap();
        let (metrics, _) = c.metrics_dump().unwrap();
        let buckets = histogram_buckets(&metrics, "net.inflight")
            .unwrap_or_else(|| panic!("worker {i}: no net.inflight histogram"));
        if agg.is_empty() {
            agg = vec![0u64; buckets.len()];
        }
        for (a, b) in agg.iter_mut().zip(&buckets) {
            *a += *b;
        }
        // Depth d lands in the log2 bucket of d; buckets from index 2
        // up hold observations of depth ≥ 2.
        depth_ge_2 += buckets.iter().skip(2).sum::<u64>();
        assert!(
            gauge_value(&metrics, "net.conns_open").is_some(),
            "worker {i}: the io-pool core must gauge its live connections"
        );
    }
    assert!(
        quantile_from_buckets(&agg, 0.99) > 1,
        "fleet net.inflight p99 must clear 1: {agg:?}"
    );
    assert!(
        depth_ge_2 > 0,
        "an 8-deep window must record submissions at depth ≥ 2: {agg:?}"
    );
}

/// The credit protocol against PR 8's tight-pool state: receivers with
/// a 64 KB pool grant ~1 batch of credit, so 8-deep senders stall on
/// the grant (visible in `net.credit_stalls`) instead of burying the
/// receiver — whose pool residency never exceeds its budget.
#[test]
fn tight_pool_receivers_throttle_pipelined_senders_via_credit() {
    const POOL_BYTES: usize = 64 * KB;
    let (_mgr, mgr_addr) = mgr_server();
    let fleet: Vec<_> = (0..3)
        .map(|i| {
            let node = StorageNode::new(
                NodeConfig::new(dir(&format!("cr{i}")))
                    .with_pool_capacity(POOL_BYTES)
                    .with_page_size(4 * KB),
            )
            .unwrap();
            worker_with(node, &mgr_addr, i)
        })
        .collect();
    let cluster = RemoteCluster::connect(&mgr_addr, Some(SECRET)).unwrap();

    let rows = lines(3000);
    load(&cluster, &rows);
    cluster.set_pipeline_window(8);
    let report = cluster
        .map_shuffle(
            "lines",
            "tokens",
            &MapSpec::tokenize(b' '),
            PartitionScheme::hash_whole("word", 8),
        )
        .unwrap();
    assert_eq!(report.records_out, rows.len() as u64 * 4);

    let mut fleet_stalls = 0u64;
    for (i, (server, _)) in fleet.iter().enumerate() {
        let mut c = PangeaClient::connect_with_secret(server.local_addr(), Some(SECRET)).unwrap();
        let (metrics, _) = c.metrics_dump().unwrap();
        fleet_stalls += counter_value(&metrics, "net.credit_stalls");
        let used = gauge_value(&metrics, "paging.pool_used_bytes")
            .unwrap_or_else(|| panic!("worker {i}: no paging.pool_used_bytes gauge"));
        let capacity = gauge_value(&metrics, "paging.pool_capacity_bytes")
            .unwrap_or_else(|| panic!("worker {i}: no paging.pool_capacity_bytes gauge"));
        assert_eq!(capacity, POOL_BYTES as u64, "worker {i}");
        assert!(
            used <= capacity,
            "worker {i}: pool residency {used}B exceeds its {capacity}B budget"
        );
    }
    assert!(
        fleet_stalls > 0,
        "64 KB pools must grant credit below an 8-deep window somewhere"
    );
}

/// A destination killed while pipelines are in flight: the job fails
/// with the typed [`PangeaError::NodeUnavailable`], and once the slot
/// is replaced and recovered, the *same* job retries to a duplicate-free
/// output (the receivers' provenance-tag dedup absorbs every batch the
/// first attempt already landed).
#[test]
fn mid_pipeline_kill_is_typed_and_idempotent_retry_converges() {
    let (_mgr, mgr_addr) = mgr_server();
    let (s0, _a0) = worker_with(roomy_node("pk0"), &mgr_addr, 0);
    let (s1, _a1) = worker_with(roomy_node("pk1"), &mgr_addr, 1);
    let (s2, a2) = worker_with(roomy_node("pk2"), &mgr_addr, 2);

    let cluster = RemoteCluster::connect(&mgr_addr, Some(SECRET)).unwrap();
    let rows: Vec<String> = (0..900)
        .map(|i| format!("u{}|w{:02}|row-{i:05}", i % 7, i % 13))
        .collect();
    let set = cluster
        .create_dist_set("lines", PartitionScheme::hash_field("uid", 8, b'|', 0))
        .unwrap();
    let mut d = set.loader().unwrap();
    for row in &rows {
        d.dispatch(row.as_bytes()).unwrap();
    }
    d.finish().unwrap();
    // Replicate the input so the killed worker's share is recoverable
    // before the retry.
    cluster
        .register_replica(
            "lines",
            "lines_f1",
            PartitionScheme::hash_field("f1", 8, b'|', 1),
        )
        .unwrap();

    cluster.set_pipeline_window(8);
    let map = MapSpec::extract(KeySpec::Field {
        delim: b'|',
        index: 1,
    })
    .with_filter(FilterSpec::KeyPresent {
        key: KeySpec::Field {
            delim: b'|',
            index: 0,
        },
    });
    let scheme = || PartitionScheme::hash_whole("word", 8);

    // Kill worker 2 at the task rendezvous: every mapper is mid-job with
    // pipelined pushes toward it when its process dies.
    let victim = std::sync::Mutex::new(Some((s2, a2)));
    let arrivals = Arc::new(AtomicUsize::new(0));
    let hook_arrivals = Arc::clone(&arrivals);
    cluster.set_task_hook(Some(Arc::new(move |n: NodeId| {
        if n == NodeId(2) {
            if let Some((mut server, mut agent)) = victim.lock().unwrap().take() {
                agent.abandon();
                server.shutdown();
            }
        }
        hook_arrivals.fetch_add(1, Ordering::SeqCst);
        let deadline = Instant::now() + Duration::from_secs(10);
        while hook_arrivals.load(Ordering::SeqCst) < 3 {
            assert!(Instant::now() < deadline, "task rendezvous timed out");
            std::thread::sleep(Duration::from_millis(1));
        }
    })));
    let outcome = cluster.map_shuffle("lines", "words", &map, scheme());
    cluster.set_task_hook(None);
    match outcome {
        Err(PangeaError::NodeUnavailable(n)) => assert_eq!(n, NodeId(2)),
        other => panic!("expected typed NodeUnavailable(node#2), got {other:?}"),
    }

    // Replace the slot, restore its input share, and retry the same job:
    // it converges duplicate-free, matching a clean serial sim.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let dead = cluster.dead_workers().unwrap();
        if dead.contains(&NodeId(2)) {
            break;
        }
        assert!(Instant::now() < deadline, "node#2 never declared dead");
        std::thread::sleep(Duration::from_millis(50));
    }
    let (_s2b, _a2b) = worker_with(roomy_node("pk2-replacement"), &mgr_addr, 2);
    let recovery = cluster.recover_worker(NodeId(2)).unwrap();
    assert!(recovery.objects_restored > 0);

    let report = cluster
        .map_shuffle("lines", "words", &map, scheme())
        .unwrap();
    assert_eq!(report.records_out, 900, "retry materializes every record");

    let sim = SimCluster::bootstrap(
        ClusterConfig::new(dir("sim-kill-parity"), 3)
            .with_pool_capacity(2 * MB)
            .with_page_size(4 * KB),
        "pangea-default-keypair",
    )
    .unwrap();
    let sset = sim
        .create_dist_set("lines", PartitionScheme::hash_field("uid", 8, b'|', 0))
        .unwrap();
    let mut sd = sset.loader().unwrap();
    for row in &rows {
        sd.dispatch(row.as_bytes()).unwrap();
    }
    sd.finish().unwrap();
    sim.map_shuffle("lines", "words", &map, scheme()).unwrap();
    assert_eq!(
        snapshot_remote(&cluster, "words"),
        snapshot_sim(&sim, "words"),
        "retried pipelined job and clean serial sim must converge"
    );
    drop((s0, s1));
}
