//! Word count as a **distributed map-combine-reduce** (paper §8
//! shuffle, run the Pangea way: ship the task — and the aggregation —
//! to the data).
//!
//! A full deployment boots on loopback — one `pangea-mgr` plus three
//! `pangead` workers — and *raw text lines* are dispatched round-robin
//! into a distributed `docs` set: no pre-splitting, no `line|word`
//! massaging. The driver then ships one declarative job to every
//! worker: *whitespace-tokenize each line (flat-map), count per word,
//! hash each word's row over 6 partitions*. Each worker scans its
//! **local** share, folds its own counts first (source-side combine),
//! and streams only the per-word partials to the destination workers,
//! whose reducing ingest sessions merge them and materialize one
//! `word|count` record per word. The driver moves zero record bytes —
//! asserted below from its ledger — and the "reduce" step of classic
//! wordcount needs no driver-side pass at all: the output *is* the
//! counts.
//!
//! (The in-process shuffle/hash services this example used to drive
//! directly still back `ShuffleService` — see `tests/end_to_end.rs` and
//! the Table 3 benches.)
//!
//! Run with: `cargo run --example shuffle_wordcount`

use pangea::common::{NodeId, KB, MB};
use pangea::coord::{MgrServer, RemoteCluster, WorkerAgent};
use pangea::core::{NodeConfig, StorageNode};
use pangea::net::{KeySpec, MapSpec, PangeadServer, ReduceSpec};
use pangea::prelude::{PartitionScheme, Result};
use std::time::Duration;

const SECRET: &str = "wordcount-secret";

const TEXT: [&str; 3] = [
    "the quick brown fox jumps over the lazy dog",
    "the dog barks and the fox runs over the hill",
    "a quick dog and a lazy fox share the hill",
];

fn main() -> Result<()> {
    let root = std::env::temp_dir().join(format!("pangea-wordcount-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // -- Deployment: manager + three workers on loopback. --------------
    let mgr = MgrServer::bind_with(
        "127.0.0.1:0",
        Duration::from_millis(500),
        Some(SECRET.into()),
    )?;
    let mgr_addr = mgr.local_addr().to_string();
    let mut fleet = Vec::new();
    for i in 0..3u32 {
        let node = StorageNode::new(
            NodeConfig::new(root.join(format!("node{i}")))
                .with_pool_capacity(2 * MB)
                .with_page_size(16 * KB),
        )?;
        let server = PangeadServer::bind_with_secret(node, "127.0.0.1:0", Some(SECRET.into()))?;
        let agent = WorkerAgent::register(
            &mgr_addr,
            Some(SECRET),
            &server.local_addr().to_string(),
            Some(NodeId(i)),
            Duration::from_millis(100),
        )?;
        fleet.push((server, agent));
    }
    let cluster = RemoteCluster::connect(&mgr_addr, Some(SECRET))?;

    // -- Load: raw text lines, sprayed round-robin. ---------------------
    let docs = cluster.create_dist_set("docs", PartitionScheme::round_robin(6))?;
    let mut d = docs.loader()?;
    for line in TEXT {
        d.dispatch(line.as_bytes())?;
    }
    d.finish()?;
    let loaded_bytes = cluster.workers().stats().snapshot().net_bytes;
    println!(
        "loaded {} lines across {:?} ({loaded_bytes} payload B through the driver)",
        docs.total_records()?,
        docs.records_per_node()?,
    );

    // -- Map-combine-reduce: tokenize, count, push worker→worker. -------
    let reduce = ReduceSpec::count(KeySpec::WholeRecord, b'|');
    let report = cluster.map_reduce(
        "docs",
        "counts",
        &MapSpec::tokenize(b' '),
        &reduce,
        // The reduced output is `word|count` rows: hash by the word
        // (field 0 under the reduce's delimiter).
        PartitionScheme::hash_field("word", 6, b'|', 0),
    )?;
    let after_bytes = cluster.workers().stats().snapshot().net_bytes;
    println!(
        "map-combine-reduce: {} lines scanned → {} distinct words in {:?} across {} tasks",
        report.scanned,
        report.records_out,
        report.duration,
        report.tasks.len(),
    );
    let combined: u64 = report.tasks.iter().map(|(_, t)| t.emitted_bytes).sum();
    println!(
        "shuffle payload after source-side combine: {combined} B worker→worker \
         (driver payload delta: {} B; worker shuffle_bytes: {:?})",
        after_bytes - loaded_bytes,
        fleet
            .iter()
            .map(|(s, _)| s.daemon().stats().snapshot().shuffle_bytes)
            .collect::<Vec<_>>(),
    );
    assert_eq!(after_bytes, loaded_bytes, "the driver must move no record");

    // -- The output *is* the word count: one `word|count` row per word.
    let counts_set = cluster.get_dist_set("counts")?.expect("materialized");
    let mut counts = Vec::new();
    counts_set.for_each_record(|node, rec| {
        let (word, n) = reduce.decode_record(rec).expect("well-formed output");
        counts.push((String::from_utf8_lossy(word).into_owned(), n, node));
    })?;
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!("word counts ({} distinct):", counts.len());
    for (word, n, node) in &counts {
        println!("  {n:>3}  {word}  (on {node})");
    }
    let the = counts.iter().find(|(w, _, _)| w == "the").expect("counted");
    assert_eq!(the.1, 6, "six 'the's in the corpus");
    assert_eq!(report.records_out, counts.len() as u64);

    for (_, agent) in fleet.iter_mut() {
        agent.shutdown()?;
    }
    let _ = std::fs::remove_dir_all(&root);
    Ok(())
}
