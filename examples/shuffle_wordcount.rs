//! Word count through Pangea's shuffle and hash services (paper §8).
//!
//! Four writer threads shuffle words into four partitions through
//! virtual shuffle buffers (concurrent writers sharing each partition's
//! big page via the small-page allocator); each partition is then
//! aggregated with a virtual hash buffer (per-page hash tables, with
//! splitting and spilling under pressure).
//!
//! Run with: `cargo run --example shuffle_wordcount`

use pangea::common::{fx_hash64, PartitionId};
use pangea::prelude::*;

const TEXT: &str = "the quick brown fox jumps over the lazy dog \
                    the dog barks and the fox runs over the hill \
                    a quick dog and a lazy fox share the hill";

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join(format!("pangea-wordcount-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let node = StorageNode::new(
        NodeConfig::new(&dir)
            .with_pool_capacity(2 * pangea::common::MB)
            .with_page_size(16 * pangea::common::KB),
    )?;

    const PARTITIONS: u32 = 4;
    let shuffle = ShuffleService::create(&node, "words", ShuffleConfig::new(PARTITIONS))?;

    // Map + shuffle: four concurrent writers, as in the paper's Table 3
    // setup. Each writer owns one virtual shuffle buffer per partition.
    let words: Vec<&str> = TEXT.split_whitespace().collect();
    std::thread::scope(|scope| -> Result<()> {
        let mut handles = Vec::new();
        for worker in 0..4usize {
            let shuffle = shuffle.clone();
            let chunk: Vec<&str> = words.iter().skip(worker).step_by(4).copied().collect();
            handles.push(scope.spawn(move || -> Result<()> {
                let mut buffers: Vec<VirtualShuffleBuffer> = (0..PARTITIONS)
                    .map(|p| shuffle.virtual_buffer(PartitionId(p)))
                    .collect::<Result<_>>()?;
                for word in chunk {
                    let p = (fx_hash64(word.as_bytes()) % PARTITIONS as u64) as usize;
                    buffers[p].add_object(word.as_bytes())?;
                }
                for b in &mut buffers {
                    b.flush()?;
                }
                Ok(())
            }));
        }
        for h in handles {
            h.join().expect("writer panicked")?;
        }
        Ok(())
    })?;
    shuffle.finish_writes()?;

    // Reduce: aggregate each partition with the hash service.
    let mut counts: Vec<(String, u64)> = Vec::new();
    for p in 0..PARTITIONS {
        let set = shuffle.partition_set(PartitionId(p))?;
        let mut agg = counting_hash_buffer(&node, &format!("counts.part{p}"), HashConfig::new(2))?;
        for num in set.page_numbers() {
            let pin = set.pin_page(num)?;
            let mut it = ObjectIter::new(&pin);
            let mut staged = Vec::new();
            while let Some(rec) = it.next() {
                staged.push(rec.to_vec());
            }
            drop(it);
            for word in staged {
                agg.insert_merge(&word, 1)?;
            }
        }
        for (word, n) in agg.finalize()? {
            counts.push((String::from_utf8(word).unwrap(), n));
        }
    }
    shuffle.end_lifetime()?;

    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!("word counts ({} distinct):", counts.len());
    for (word, n) in &counts {
        println!("  {n:>3}  {word}");
    }
    assert_eq!(counts[0], ("the".to_string(), 7));
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
