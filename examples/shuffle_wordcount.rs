//! Word count as a **distributed map-shuffle** (paper §8 shuffle, run
//! the Pangea way: ship the task to the data).
//!
//! A full deployment boots on loopback — one `pangea-mgr` plus three
//! `pangead` workers — and text lines are dispatched round-robin into a
//! distributed `docs` set. The driver then ships one declarative map
//! task to every worker: *emit field 1 (the word) of every line, hash
//! the emitted word over 6 partitions*. Each worker scans its **local**
//! share and streams the routed words straight to the destination
//! workers; the driver moves zero record bytes (watch its ledger stay
//! at the dispatch-phase count), and every occurrence of a word lands
//! on one worker, where counting is a local scan.
//!
//! (The in-process shuffle/hash services this example used to drive
//! directly still back `ShuffleService` — see `tests/end_to_end.rs` and
//! the Table 3 benches.)
//!
//! Run with: `cargo run --example shuffle_wordcount`

use pangea::common::{NodeId, KB, MB};
use pangea::coord::{MgrServer, RemoteCluster, WorkerAgent};
use pangea::core::{NodeConfig, StorageNode};
use pangea::net::{KeySpec, MapSpec, PangeadServer};
use pangea::prelude::{PartitionScheme, Result};
use std::collections::HashMap;
use std::time::Duration;

const SECRET: &str = "wordcount-secret";

const TEXT: &str = "the quick brown fox jumps over the lazy dog \
                    the dog barks and the fox runs over the hill \
                    a quick dog and a lazy fox share the hill";

fn main() -> Result<()> {
    let root = std::env::temp_dir().join(format!("pangea-wordcount-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // -- Deployment: manager + three workers on loopback. --------------
    let mgr = MgrServer::bind_with(
        "127.0.0.1:0",
        Duration::from_millis(500),
        Some(SECRET.into()),
    )?;
    let mgr_addr = mgr.local_addr().to_string();
    let mut fleet = Vec::new();
    for i in 0..3u32 {
        let node = StorageNode::new(
            NodeConfig::new(root.join(format!("node{i}")))
                .with_pool_capacity(2 * MB)
                .with_page_size(16 * KB),
        )?;
        let server = PangeadServer::bind_with_secret(node, "127.0.0.1:0", Some(SECRET.into()))?;
        let agent = WorkerAgent::register(
            &mgr_addr,
            Some(SECRET),
            &server.local_addr().to_string(),
            Some(NodeId(i)),
            Duration::from_millis(100),
        )?;
        fleet.push((server, agent));
    }
    let cluster = RemoteCluster::connect(&mgr_addr, Some(SECRET))?;

    // -- Load: one `line|word` record per word, sprayed round-robin. ---
    let docs = cluster.create_dist_set("docs", PartitionScheme::round_robin(6))?;
    let mut d = docs.loader()?;
    for (i, word) in TEXT.split_whitespace().enumerate() {
        d.dispatch(format!("line{}|{word}", i / 9).as_bytes())?;
    }
    d.finish()?;
    let loaded_bytes = cluster.workers().stats().snapshot().net_bytes;
    println!(
        "loaded {} words across {:?} ({loaded_bytes} payload B through the driver)",
        docs.total_records()?,
        docs.records_per_node()?,
    );

    // -- Map-shuffle: ship the task, push worker→worker. ---------------
    let report = cluster.map_shuffle(
        "docs",
        "words",
        &MapSpec::extract(KeySpec::Field {
            delim: b'|',
            index: 1,
        }),
        PartitionScheme::hash_whole("word", 6),
    )?;
    let after_bytes = cluster.workers().stats().snapshot().net_bytes;
    println!(
        "map-shuffle: {} scanned → {} words in {:?} across {} tasks",
        report.scanned,
        report.records_out,
        report.duration,
        report.tasks.len(),
    );
    println!(
        "driver payload during the shuffle: {} B (worker shuffle_bytes: {:?})",
        after_bytes - loaded_bytes,
        fleet
            .iter()
            .map(|(s, _)| s.daemon().stats().snapshot().shuffle_bytes)
            .collect::<Vec<_>>(),
    );
    assert_eq!(after_bytes, loaded_bytes, "the driver must move no record");

    // -- Reduce: every word is co-located, so counting is per node. ----
    let words = cluster.get_dist_set("words")?.expect("materialized");
    let mut counts: HashMap<String, u64> = HashMap::new();
    let mut homes: HashMap<String, NodeId> = HashMap::new();
    words.for_each_record(|node, rec| {
        let w = String::from_utf8_lossy(rec).into_owned();
        *counts.entry(w.clone()).or_insert(0) += 1;
        let prev = homes.insert(w.clone(), node);
        assert!(
            prev.is_none_or(|p| p == node),
            "word {w} split across nodes"
        );
    })?;
    let mut counts: Vec<(String, u64)> = counts.into_iter().collect();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!("word counts ({} distinct):", counts.len());
    for (word, n) in &counts {
        println!("  {n:>3}  {word}  (on {})", homes[word]);
    }
    // (The seed example asserted 7 here, but the text has always held
    // six "the"s — examples never ran in CI, so the typo survived.)
    assert_eq!(counts[0], ("the".to_string(), 6));

    for (_, agent) in fleet.iter_mut() {
        agent.shutdown()?;
    }
    let _ = std::fs::remove_dir_all(&root);
    Ok(())
}
