//! TPC-H on a simulated Pangea cluster with heterogeneous replicas
//! (paper §7, §9.1.2): the scheduler picks co-partitioned replicas from
//! the manager's statistics database and pipelines joins without moving
//! a byte across the wire.
//!
//! Run with: `cargo run --release --example tpch_analytics`

use pangea::prelude::*;
use pangea::query::{PangeaTpch, QueryId, SparkTpch, TpchData};
use std::time::Instant;

fn main() -> Result<()> {
    let root = std::env::temp_dir().join(format!("pangea-tpch-ex-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let sf = 0.005;
    let data = TpchData::generate(sf);
    println!(
        "TPC-H SF {sf}: {} lineitem, {} orders, {} customer rows",
        data.lineitem.len(),
        data.orders.len(),
        data.customer.len()
    );

    // A four-worker Pangea cluster; loading registers the paper's
    // replicas (lineitem × {orderkey, partkey}, orders × {orderkey,
    // custkey}, part × {partkey}).
    let cluster = SimCluster::bootstrap(
        ClusterConfig::new(root.join("cluster"), 4)
            .with_pool_capacity(16 * pangea::common::MB)
            .with_page_size(64 * pangea::common::KB),
        "pangea-default-keypair",
    )?;
    let pangea = PangeaTpch::load(&cluster, &data)?;
    println!(
        "replica for (lineitem, partkey): {}",
        pangea.replica_for("lineitem", "partkey")
    );

    // The Spark-over-HDFS baseline on the same data.
    let spark = SparkTpch::load(&root.join("spark"), &data, 64 * pangea::common::MB, 8, None)?;

    println!(
        "\n{:<5} {:>12} {:>12} {:>9} {:>14}",
        "query", "pangea", "spark/hdfs", "speedup", "pangea net B"
    );
    for q in QueryId::ALL {
        let net0 = cluster.network().bytes_moved();
        let t = Instant::now();
        let a = pangea.run(q)?;
        let pangea_t = t.elapsed();
        let pangea_net = cluster.network().bytes_moved() - net0;
        let t = Instant::now();
        let b = spark.run(q)?;
        let spark_t = t.elapsed();
        assert_eq!(a, b, "{} engines disagree", q.label());
        println!(
            "{:<5} {:>11.4}s {:>11.4}s {:>8.1}x {:>14}",
            q.label(),
            pangea_t.as_secs_f64(),
            spark_t.as_secs_f64(),
            spark_t.as_secs_f64() / pangea_t.as_secs_f64().max(1e-9),
            pangea_net,
        );
    }
    println!(
        "\nco-partitioned joins moved 0 bytes; Spark shuffled {} KB total",
        spark.net_stats().net_bytes / 1024
    );
    let _ = std::fs::remove_dir_all(&root);
    Ok(())
}
