//! The paper's k-means benchmark (Fig. 1 / §9.1.1) on Pangea and on the
//! layered Spark-over-HDFS stack, with identical results and a latency
//! + memory comparison.
//!
//! Run with: `cargo run --release --example kmeans_clustering`

use pangea::kmeans::{run_kmeans, KmeansConfig, PangeaKmeans, SparkKmeans};
use pangea::layered::{SimAlluxio, SimHdfs};
use std::sync::Arc;

fn main() -> pangea::common::Result<()> {
    let root = std::env::temp_dir().join(format!("pangea-kmeans-ex-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let cfg = KmeansConfig::new(20_000).with_iterations(5);
    println!(
        "k-means: {} points × {} dims, k = {}, {} iterations\n",
        cfg.points, cfg.dims, cfg.k, cfg.iterations
    );

    // Pangea: unified buffer pool, write-through input, write-back norms,
    // virtual hash buffer aggregation.
    let mut pangea = PangeaKmeans::new(&root.join("pangea"), 8 * pangea::common::MB, "data-aware")?;
    let pangea_out = run_kmeans(&mut pangea, &cfg)?;

    // Spark over HDFS: RDD cache + per-record deserialization at the
    // storage boundary.
    let hdfs = Arc::new(SimHdfs::new(&root.join("hdfs"), 1, 256 * 1024)?);
    let mut spark = SparkKmeans::new(hdfs, 32 * pangea::common::MB);
    let spark_out = run_kmeans(&mut spark, &cfg)?;

    // Spark over Alluxio: adds a memory-cache layer — and double caching.
    let hdfs2 = Arc::new(SimHdfs::new(&root.join("hdfs2"), 1, 256 * 1024)?);
    let alluxio = Arc::new(SimAlluxio::with_under_store(
        16 * pangea::common::MB as u64,
        hdfs2,
    ));
    let mut spark_alluxio = SparkKmeans::new(alluxio, 32 * pangea::common::MB);
    let alluxio_out = run_kmeans(&mut spark_alluxio, &cfg)?;

    assert_eq!(
        pangea_out.centroids, spark_out.centroids,
        "backends must agree exactly"
    );
    assert_eq!(pangea_out.centroids, alluxio_out.centroids);

    println!(
        "{:<16} {:>10} {:>12} {:>14}",
        "system", "init", "avg iter", "peak memory"
    );
    for out in [&pangea_out, &spark_out, &alluxio_out] {
        println!(
            "{:<16} {:>9.3}s {:>11.3}s {:>14}",
            out.system,
            out.init_time.as_secs_f64(),
            out.avg_iter_time().as_secs_f64(),
            pangea::common::units::fmt_bytes(out.peak_mem_bytes as usize),
        );
    }
    println!(
        "\nspeedup vs spark/hdfs: {:.2}x total",
        spark_out.total_time().as_secs_f64() / pangea_out.total_time().as_secs_f64()
    );
    println!("final centroids (first 3 dims):");
    for (i, c) in pangea_out.centroids.iter().enumerate() {
        println!("  c{i}: [{:.1}, {:.1}, {:.1}, …]", c[0], c[1], c[2]);
    }
    let _ = std::fs::remove_dir_all(&root);
    Ok(())
}
