//! Remote quickstart: a client talking to a `pangead` node daemon over
//! TCP.
//!
//! This example starts the daemon in-process on an ephemeral loopback
//! port (the standalone equivalent is
//! `pangead --listen 127.0.0.1:7781 --data /tmp/pangea-node0`), then
//! drives it with [`PangeaClient`]: create a locality set, append
//! records through the remote sequential write service, scan them back,
//! run a small shuffle, and read the node's I/O counters.
//!
//! Run with: `cargo run --example remote_quickstart`

use pangea::common::{fx_hash64, KB, MB};
use pangea::core::{NodeConfig, StorageNode};
use pangea::net::{PangeaClient, PangeadServer};
use pangea::prelude::Result;

fn main() -> Result<()> {
    let data_dir =
        std::env::temp_dir().join(format!("pangea-remote-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);

    // -- Server side: one storage node behind the wire protocol. -------
    let node = StorageNode::new(
        NodeConfig::new(&data_dir)
            .with_pool_capacity(4 * MB)
            .with_page_size(64 * KB),
    )?;
    let server = PangeadServer::bind(node, "127.0.0.1:0")?;
    println!(
        "pangead serving {} from {}",
        server.local_addr(),
        data_dir.display()
    );

    // -- Client side: the paper's node API, over TCP. ------------------
    let mut client = PangeaClient::connect(server.local_addr())?;
    client.ping()?;

    client.create_set("events", "write-through", None)?;
    let events: Vec<String> = (0..10_000).map(|i| format!("event-{i:05}")).collect();
    let appended = client.append("events", &events)?;
    println!("appended {appended} records to 'events'");

    let pages = client.page_numbers("events")?;
    let scanned = client.scan("events")?;
    println!(
        "'events' holds {} records across {} pages",
        scanned.len(),
        pages.len()
    );
    assert_eq!(scanned.len(), events.len());

    // A remote shuffle: partition locally, ship per-partition batches.
    const PARTS: u32 = 4;
    client.shuffle_create("wordcount", PARTS, None)?;
    let mut batches: Vec<Vec<String>> = vec![Vec::new(); PARTS as usize];
    for i in 0..2_000u32 {
        let word = format!("word-{:02}", i % 40);
        let p = (fx_hash64(word.as_bytes()) % PARTS as u64) as usize;
        batches[p].push(word);
    }
    for (p, batch) in batches.iter().enumerate() {
        client.shuffle_send("wordcount", p as u32, batch)?;
    }
    client.shuffle_finish("wordcount")?;
    for p in 0..PARTS {
        let n = client.scan(&format!("wordcount.part{p}"))?.len();
        println!("wordcount.part{p}: {n} records");
    }

    let stats = client.remote_stats()?;
    println!(
        "server counters: {} payload B in {} messages, disk {} B written",
        stats.net_bytes, stats.net_messages, stats.disk_write_bytes
    );

    drop(client);
    let _ = std::fs::remove_dir_all(&data_dir);
    Ok(())
}
