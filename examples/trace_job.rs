//! Fleet telemetry walkthrough: run a traced distributed job, then
//! analyze it the way an operator would.
//!
//! Two modes:
//!
//! - **Self-contained** (no arguments): boots a whole deployment
//!   in-process — one `pangea-mgr` with its scrape loop on, four
//!   `pangead` workers — then runs the job and the analysis below.
//! - **External** (`--manager <addr:port>`): drives an already-running
//!   open (secretless) fleet, e.g. the daemons CI boots from the
//!   release binaries. The job id is printed so a script can follow up
//!   with `pangea-mgr trace <job-id> --manager <addr> --json`.
//!
//! Either way it runs a distributed wordcount, then:
//!
//! 1. prints the `pangea-mgr top --watch` rates table straight from the
//!    manager's retained time-series (one RPC, no per-worker fan-out),
//! 2. stitches the job's cross-node span tree from the manager's store
//!    and prints the `pangea-mgr trace <job>` waterfall: critical path,
//!    per-worker skew, byte attribution per hop.
//!
//! Run with: `cargo run --example trace_job`

use pangea::cluster::PartitionScheme;
use pangea::common::{NodeId, Result, KB, MB};
use pangea::coord::{trace, MgrServer, RemoteCluster, WorkerAgent};
use pangea::core::{NodeConfig, StorageNode};
use pangea::net::{KeySpec, MapSpec, PangeaClient, PangeadServer, ReduceSpec};
use std::time::Duration;

const SECRET: &str = "trace-example-secret";

fn main() -> Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let external = args
        .iter()
        .position(|a| a == "--manager")
        .map(|i| args[i + 1].clone());

    let base = std::env::temp_dir().join(format!("pangea-trace-job-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // -- A scraping manager + four workers, unless given a fleet. ------
    let mut local: Option<(MgrServer, Vec<(PangeadServer, WorkerAgent)>)> = None;
    let (mgr_addr, secret) = match external {
        Some(addr) => (addr, None),
        None => {
            let mgr = MgrServer::bind_full(
                "127.0.0.1:0",
                Duration::from_millis(1000),
                Some(SECRET.into()),
                Some(Duration::from_millis(100)),
            )?;
            let mgr_addr = mgr.local_addr().to_string();
            let mut fleet = Vec::new();
            for slot in 0..4u32 {
                let node = StorageNode::new(
                    NodeConfig::new(base.join(format!("w{slot}")))
                        .with_pool_capacity(4 * MB)
                        .with_page_size(64 * KB),
                )?;
                let server =
                    PangeadServer::bind_with_secret(node, "127.0.0.1:0", Some(SECRET.into()))?;
                let agent = WorkerAgent::register(
                    &mgr_addr,
                    Some(SECRET),
                    &server.local_addr().to_string(),
                    Some(NodeId(slot)),
                    Duration::from_millis(200),
                )?;
                fleet.push((server, agent));
            }
            println!("manager at {mgr_addr}, scraping 4 workers every 100 ms\n");
            local = Some((mgr, fleet));
            (mgr_addr, Some(SECRET))
        }
    };

    // -- One traced distributed wordcount. -----------------------------
    let cluster = RemoteCluster::connect(&mgr_addr, secret)?;
    let set = cluster.create_dist_set("lines", PartitionScheme::round_robin(8))?;
    let mut loader = set.loader()?;
    for i in 0..2_000u32 {
        loader.dispatch(format!("w{:02} w{:02} filler{}", i % 23, i % 7, i % 3).as_bytes())?;
    }
    loader.finish()?;
    let report = cluster.map_reduce(
        "lines",
        "counts",
        &MapSpec::tokenize(b' '),
        &ReduceSpec::count(KeySpec::WholeRecord, b'|'),
        PartitionScheme::hash_field("word", 8, b'|', 0),
    )?;
    let job = cluster.workers().last_job().expect("map_reduce is traced");
    println!(
        "job {job}: scanned {} lines, materialized {} distinct words\n",
        report.scanned, report.records_out
    );

    // Give the scrape loop a few ticks to pull every worker's spans and
    // fold the windowed rates.
    std::thread::sleep(Duration::from_millis(500));

    // -- The operator's view. ------------------------------------------
    let (metrics, _) = PangeaClient::connect_with_secret(&mgr_addr, secret)?.metrics_dump()?;
    println!("== fleet rates (what `top --watch` renders) ==");
    print!("{}", pangea::coord::top::render_watch(&metrics));

    println!("\n== pangea-mgr trace {job} ==");
    print!("{}", trace::run(&mgr_addr, secret, job, false)?);

    drop(cluster);
    drop(local);
    let _ = std::fs::remove_dir_all(&base);
    Ok(())
}
