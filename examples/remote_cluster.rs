//! Remote cluster quickstart: a full Pangea deployment on loopback —
//! one `pangea-mgr` manager plus three `pangead` workers — driven
//! entirely through [`RemoteCluster`] over real TCP, with no shared
//! memory between the driver and any worker.
//!
//! The standalone equivalent:
//!
//! ```text
//! pangea-mgr --listen 127.0.0.1:7780 --secret demo
//! pangead --listen 127.0.0.1:7781 --data /tmp/pangea/n0 --secret demo \
//!         --manager 127.0.0.1:7780
//! pangead --listen 127.0.0.1:7782 --data /tmp/pangea/n1 --secret demo \
//!         --manager 127.0.0.1:7780
//! pangead --listen 127.0.0.1:7783 --data /tmp/pangea/n2 --secret demo \
//!         --manager 127.0.0.1:7780
//! ```
//!
//! Run with: `cargo run --example remote_cluster`

use pangea::common::{NodeId, KB, MB};
use pangea::coord::{MgrServer, RemoteCluster, WorkerAgent};
use pangea::core::{NodeConfig, StorageNode};
use pangea::net::PangeadServer;
use pangea::prelude::{PartitionScheme, Result};
use std::time::{Duration, Instant};

const SECRET: &str = "demo-secret";

fn main() -> Result<()> {
    let root = std::env::temp_dir().join(format!("pangea-remote-cluster-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // -- Control plane: the manager daemon. ----------------------------
    let mgr = MgrServer::bind_with(
        "127.0.0.1:0",
        Duration::from_millis(500),
        Some(SECRET.into()),
    )?;
    let mgr_addr = mgr.local_addr().to_string();
    println!("pangea-mgr listening on {mgr_addr}");

    // -- Three workers: pangead + registration/heartbeat agent. --------
    let mut fleet = Vec::new();
    for i in 0..3u32 {
        let node = StorageNode::new(
            NodeConfig::new(root.join(format!("node{i}")))
                .with_pool_capacity(4 * MB)
                .with_page_size(64 * KB),
        )?;
        let server = PangeadServer::bind_with_secret(node, "127.0.0.1:0", Some(SECRET.into()))?;
        let agent = WorkerAgent::register(
            &mgr_addr,
            Some(SECRET),
            &server.local_addr().to_string(),
            Some(NodeId(i)),
            Duration::from_millis(100),
        )?;
        println!(
            "worker {} serving on {} ({})",
            agent.node(),
            server.local_addr(),
            agent.epoch()
        );
        fleet.push((server, agent));
    }

    // -- The driver: catalog, dispatch, shuffle — all over the wire. ---
    let cluster = RemoteCluster::connect(&mgr_addr, Some(SECRET))?;
    println!("connected; alive workers: {:?}", cluster.alive_nodes());

    let set =
        cluster.create_dist_set("events", PartitionScheme::hash_field("user_id", 6, b'|', 0))?;
    let mut d = set.loader()?;
    for i in 0..10_000u32 {
        d.dispatch(format!("{}|event-{i:05}", i % 257).as_bytes())?;
    }
    d.finish()?;
    println!(
        "dispatched 10000 records ({} payload B over TCP, {} RPC batches)",
        cluster.workers().stats().snapshot().net_bytes,
        cluster.workers().stats().snapshot().net_messages,
    );
    println!("placement: {:?}", set.records_per_node()?);

    // A replica organized by a different key, for recovery + queries.
    let report = cluster.register_replica(
        "events",
        "events_by_type",
        PartitionScheme::hash_field("event_type", 6, b'|', 1),
    )?;
    println!(
        "replica registered: {} objects, {:.1}% colliding",
        report.objects,
        report.colliding_ratio() * 100.0
    );
    println!(
        "best replica for key 'event_type': {:?}",
        cluster.best_replica("events", "event_type")?
    );

    // A distributed word-count shuffle.
    let mut shuffle = cluster.shuffle("wordcount", 6)?;
    for i in 0..2_000u32 {
        let word = format!("word-{:02}", i % 40);
        shuffle.send(word.as_bytes(), word.as_bytes())?;
    }
    shuffle.finish()?;
    println!("shuffle 'wordcount' finished across {} workers", 3);

    // -- Kill a worker; the manager notices; recovery restores it. -----
    let (mut dead_server, mut dead_agent) = fleet.remove(1);
    dead_agent.abandon(); // crash: heartbeats stop without deregistering
    dead_server.shutdown();
    print!("killed worker node#1; waiting for the liveness sweep… ");
    let t0 = Instant::now();
    while !cluster.dead_workers()?.contains(&NodeId(1)) {
        std::thread::sleep(Duration::from_millis(50));
    }
    println!("declared dead after {:?}", t0.elapsed());

    // A replacement pangead takes over the slot, then recovery runs.
    let replacement = StorageNode::new(
        NodeConfig::new(root.join("node1-replacement"))
            .with_pool_capacity(4 * MB)
            .with_page_size(64 * KB),
    )?;
    let new_server =
        PangeadServer::bind_with_secret(replacement, "127.0.0.1:0", Some(SECRET.into()))?;
    let new_agent = WorkerAgent::register(
        &mgr_addr,
        Some(SECRET),
        &new_server.local_addr().to_string(),
        Some(NodeId(1)),
        Duration::from_millis(100),
    )?;
    fleet.push((new_server, new_agent));
    let recovery = cluster.recover_worker(NodeId(1))?;
    println!(
        "recovered node#1: {} objects restored ({} colliding) in {:?}, {} B over TCP",
        recovery.objects_restored,
        recovery.colliding_restored,
        recovery.duration,
        recovery.bytes_moved
    );
    println!("total records after recovery: {}", set.total_records()?);

    // Clean exits deregister with the manager.
    for (_, agent) in fleet.iter_mut() {
        agent.shutdown()?;
    }
    let _ = std::fs::remove_dir_all(&root);
    Ok(())
}
