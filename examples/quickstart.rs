//! Quickstart: the core Pangea workflow on one node.
//!
//! Creates a storage node with a unified buffer pool, writes user data
//! (`write-through`) and job data (`write-back`), scans with the
//! sequential read service, and shows how the locality-set attributes
//! (paper Table 1) are learned from the services used.
//!
//! Run with: `cargo run --example quickstart`

use pangea::prelude::*;

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join(format!("pangea-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // One node: a 4 MB unified buffer pool, one simulated disk, the
    // data-aware paging strategy (the paper's §6 policy).
    let node = StorageNode::new(
        NodeConfig::new(&dir)
            .with_pool_capacity(4 * pangea::common::MB)
            .with_page_size(64 * pangea::common::KB),
    )?;
    println!("node up: strategy = {}", node.strategy_name());

    // User data: persisted as soon as each page is sealed.
    let users = node.create_set("users", SetOptions::write_through())?;
    let mut w = users.writer();
    for i in 0..10_000u64 {
        w.add_object(format!("user-{i:05}|region-{}", i % 7).as_bytes())?;
    }
    w.finish()?;
    println!(
        "users: {} pages, {} bytes on disk (write-through persists on seal)",
        users.num_pages(),
        users.bytes_on_disk()
    );

    // Job data: transient; stays in memory, spills only under pressure.
    let derived = node.create_set("users.derived", SetOptions::write_back())?;
    let mut w = derived.writer();

    // The sequential read service: the writer above taught `users` its
    // sequential-write pattern; the page iterators teach sequential-read
    // (paper §3.2, "determining attributes").
    let mut region_counts = [0u64; 7];
    let mut iters = users.page_iterators(1)?;
    while let Some(pin) = iters[0].next() {
        let pin = pin?;
        let mut it = ObjectIter::new(&pin);
        let mut staged = Vec::new();
        while let Some(rec) = it.next() {
            let region: usize = std::str::from_utf8(rec)
                .unwrap()
                .rsplit('-')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            region_counts[region] += 1;
            staged.push(rec.to_vec());
        }
        drop(it);
        for rec in staged {
            w.add_object(&rec)?;
        }
    }
    w.finish()?;
    println!("per-region counts: {region_counts:?}");

    // Attributes were learned from the services (paper §3.2).
    let attrs = users.attributes();
    println!(
        "users attributes: durability={:?} writing={:?} reading={:?}",
        attrs.durability, attrs.writing, attrs.reading
    );
    assert_eq!(attrs.durability, Durability::WriteThrough);
    assert_eq!(attrs.writing, Some(WritePattern::Sequential));
    assert_eq!(attrs.reading, Some(ReadPattern::Sequential));

    // Transient data whose lifetime ended is dropped without any flush.
    derived.end_lifetime()?;
    println!(
        "derived dropped: resident pages now {}, disk bytes {}",
        derived.resident_pages(),
        derived.bytes_on_disk()
    );

    let stats = node.disk_stats().snapshot();
    println!(
        "disk I/O: {} writes ({} B), {} reads ({} B)",
        stats.disk_writes, stats.disk_write_bytes, stats.disk_reads, stats.disk_read_bytes
    );
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
