//! Heterogeneous replication doing double duty (paper §7): the same
//! replicas that accelerate joins recover a failed node, with colliding
//! objects tracked separately.
//!
//! Run with: `cargo run --release --example failure_recovery`

use pangea::prelude::*;
use pangea::query::TpchData;

fn field(idx: usize) -> impl Fn(&[u8]) -> Vec<u8> + Send + Sync + 'static {
    move |rec: &[u8]| {
        rec.split(|&b| b == b'|')
            .nth(idx)
            .unwrap_or_default()
            .to_vec()
    }
}

fn main() -> Result<()> {
    let root = std::env::temp_dir().join(format!("pangea-recovery-ex-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let nodes = 5u32;
    let cluster = SimCluster::bootstrap(
        ClusterConfig::new(&root, nodes).with_pool_capacity(8 * pangea::common::MB),
        "pangea-default-keypair",
    )?;

    // Load lineitem randomly dispatched, then register two replicas with
    // different physical organizations.
    let data = TpchData::generate(0.002);
    let set = cluster.create_dist_set("lineitem", PartitionScheme::round_robin(nodes))?;
    let mut d = set.loader()?;
    for li in &data.lineitem {
        d.dispatch(&li.to_line())?;
    }
    d.finish()?;
    println!(
        "loaded {} lineitem rows over {nodes} nodes",
        data.lineitem.len()
    );

    cluster.register_replica(
        "lineitem",
        "lineitem_ok",
        PartitionScheme::hash("orderkey", nodes * 2, field(0)),
    )?;
    let report = cluster.register_replica(
        "lineitem",
        "lineitem_pk",
        PartitionScheme::hash("partkey", nodes * 2, field(1)),
    )?;
    println!(
        "replica group {}: {} objects, {} colliding ({:.1}%)",
        report.group,
        report.objects,
        report.colliding,
        report.colliding_ratio() * 100.0
    );

    // Take a content snapshot, kill a node, recover, verify.
    let mut before: Vec<Vec<u8>> = Vec::new();
    set.for_each_record(|_, rec| before.push(rec.to_vec()))?;
    before.sort();

    let victim = NodeId(2);
    cluster.kill_node(victim)?;
    println!("\nkilled {victim}: memory wiped, disks wiped");
    println!("alive nodes: {:?}", cluster.alive_nodes());

    let recovery = cluster.recover_node(victim)?;
    println!(
        "recovered {} in {:.3}s: {} objects restored ({} from the colliding set), \
         {} KB over the wire",
        victim,
        recovery.duration.as_secs_f64(),
        recovery.objects_restored,
        recovery.colliding_restored,
        recovery.bytes_moved / 1024
    );

    let mut after: Vec<Vec<u8>> = Vec::new();
    set.for_each_record(|_, rec| after.push(rec.to_vec()))?;
    after.sort();
    assert_eq!(before, after, "every object restored exactly once");
    println!(
        "verification: all {} objects intact across all replicas",
        after.len()
    );
    let _ = std::fs::remove_dir_all(&root);
    Ok(())
}
