//! The canonical registry of metric names.
//!
//! Every metric a Pangea process registers is named here, once. These
//! strings are *join keys*, not labels: the scrape loop's time-series
//! store, `pangea-mgr top`, the bench baseline diff, and the e2e suites
//! all match on them, so a typo in one producer silently drops a column
//! everywhere downstream. The `metric-name-registry` lint rule
//! (`cargo run -p pangea-lint`) rejects any `counter("…")` /
//! `gauge("…")` / `histogram("…")` call whose name is a string literal
//! instead of a constant or helper from this module.
//!
//! Dynamic families (`rpc.count.<Op>`, `fleet.<node>.<series>`) get a
//! prefix constant plus a formatting helper, so the producers and the
//! `strip_prefix` consumers share one spelling.

// -- io.* — byte/operation volumes ([`pangea_common::IoStats`] views) ---

/// Disk read operations.
pub const IO_DISK_READS: &str = "io.disk_reads";
/// Bytes read from disk.
pub const IO_DISK_READ_BYTES: &str = "io.disk_read_bytes";
/// Disk write operations.
pub const IO_DISK_WRITES: &str = "io.disk_writes";
/// Bytes written to disk.
pub const IO_DISK_WRITE_BYTES: &str = "io.disk_write_bytes";
/// Pages evicted from a buffer pool.
pub const IO_PAGES_EVICTED: &str = "io.pages_evicted";
/// Dirty pages flushed.
pub const IO_PAGES_FLUSHED: &str = "io.pages_flushed";
/// Network messages sent.
pub const IO_NET_MESSAGES: &str = "io.net_messages";
/// Network bytes sent.
pub const IO_NET_BYTES: &str = "io.net_bytes";
/// Serialization/deserialization passes.
pub const IO_SERIALIZATIONS: &str = "io.serializations";
/// Bytes passed through (de)serialization.
pub const IO_SERIALIZED_BYTES: &str = "io.serialized_bytes";
/// Buffer-to-buffer copies.
pub const IO_COPIES: &str = "io.copies";
/// Bytes copied between buffers.
pub const IO_COPIED_BYTES: &str = "io.copied_bytes";
/// Peer-repair transfers (worker→worker recovery pushes).
pub const IO_REPAIRS: &str = "io.repairs";
/// Payload bytes moved worker→worker during replica recovery.
pub const IO_REPAIR_BYTES: &str = "io.repair_bytes";
/// Map-shuffle transfers (worker→worker shuffle pushes).
pub const IO_SHUFFLES: &str = "io.shuffles";
/// Shuffle payload delivered to map-only (plain append) sessions.
pub const IO_SHUFFLE_BYTES_MAP: &str = "io.shuffle_bytes.map";
/// Shuffle payload delivered to combining/reducing sessions.
pub const IO_SHUFFLE_BYTES_REDUCE: &str = "io.shuffle_bytes.reduce";

// -- net.* — server-core connection accounting ---------------------------

/// Connections currently accepted and not yet closed.
pub const NET_CONNS_OPEN: &str = "net.conns_open";
/// Connections refused with a typed `Busy` beyond the accept cap.
pub const NET_BUSY_REJECTS: &str = "net.busy_rejects";
/// Pipelined pushes that stalled waiting for receiver credit.
pub const NET_CREDIT_STALLS: &str = "net.credit_stalls";
/// Total milliseconds spent in credit stalls.
pub const NET_CREDIT_STALLS_MS: &str = "net.credit_stalls_ms";
/// In-flight window depth observed per pipelined push.
pub const NET_INFLIGHT: &str = "net.inflight";

// -- trace.* / mem.* -----------------------------------------------------

/// Spans evicted unread from this process's bounded trace ring.
pub const TRACE_DROPPED_SPANS: &str = "trace.dropped_spans";
/// Resident bytes across all locally stored shares.
pub const MEM_SHARE_BYTES: &str = "mem.share_bytes";
/// Resident bytes across live ingest/repair session state.
pub const MEM_SESSION_BYTES: &str = "mem.session_bytes";

// -- pool.* — outbound peer-connection pool ------------------------------

/// Idle peer connections currently pooled.
pub const POOL_PEERS: &str = "pool.peers";
/// Peer checkouts (hits + dials). Invariant: `pool.checkouts ==
/// pool.checkins + pool.drops` once the fleet is quiescent.
pub const POOL_CHECKOUTS: &str = "pool.checkouts";
/// Checkouts served from the pool without dialing.
pub const POOL_HITS: &str = "pool.hits";
/// Checkouts that dialed a fresh connection.
pub const POOL_DIALS: &str = "pool.dials";
/// Connections returned to the pool after a successful call.
pub const POOL_CHECKINS: &str = "pool.checkins";
/// Pooled connections evicted past the per-peer cap.
pub const POOL_EVICTIONS: &str = "pool.evictions";
/// Connections discarded after a failed call.
pub const POOL_DROPS: &str = "pool.drops";

// -- paging.* — pool-paged task state ------------------------------------

/// Page lookups served from the resident pool.
pub const PAGING_HITS: &str = "paging.hits";
/// Page lookups that had to read a spilled page back.
pub const PAGING_MISSES: &str = "paging.misses";
/// Pages evicted to disk under pool pressure.
pub const PAGING_EVICTIONS: &str = "paging.evictions";
/// Bytes spilled to disk by the pager.
pub const PAGING_SPILL_BYTES: &str = "paging.spill_bytes";
/// Bytes currently resident in the pool.
pub const PAGING_POOL_USED_BYTES: &str = "paging.pool_used_bytes";
/// The pool's configured byte budget.
pub const PAGING_POOL_CAPACITY_BYTES: &str = "paging.pool_capacity_bytes";
/// Pages currently resident.
pub const PAGING_RESIDENT_PAGES: &str = "paging.resident_pages";
/// Resident pages pinned against eviction.
pub const PAGING_PINNED_PAGES: &str = "paging.pinned_pages";

// -- sessions.* / dedup — ingest + repair session lifecycle --------------

/// Repair sessions begun.
pub const SESSIONS_REPAIR_BEGUN: &str = "sessions.repair.begun";
/// Repair sessions ended.
pub const SESSIONS_REPAIR_ENDED: &str = "sessions.repair.ended";
/// Repair sessions currently live.
pub const SESSIONS_REPAIR_LIVE: &str = "sessions.repair.live";
/// Ingest sessions begun.
pub const SESSIONS_INGEST_BEGUN: &str = "sessions.ingest.begun";
/// Ingest sessions ended.
pub const SESSIONS_INGEST_ENDED: &str = "sessions.ingest.ended";
/// Ingest sessions currently live.
pub const SESSIONS_INGEST_LIVE: &str = "sessions.ingest.live";
/// Repair-session pushes deduplicated by the ledger (idempotent retries).
pub const REPAIR_DEDUP_HITS: &str = "repair.dedup_hits";
/// Ingest-session pushes deduplicated by provenance (idempotent retries).
pub const INGEST_DEDUP_HITS: &str = "ingest.dedup_hits";

// -- mgr.* — manager-side scrape loop ------------------------------------

/// Worst heartbeat staleness across registered workers, milliseconds.
pub const MGR_HEARTBEAT_STALENESS_MS: &str = "mgr.heartbeat_staleness_ms";
/// Fleet spans lost to ring eviction before a scrape could read them.
pub const MGR_SCRAPE_DROPPED_SPANS: &str = "mgr.scrape.dropped_spans";
/// Scrape attempts that failed (unreachable worker, bad dump).
pub const MGR_SCRAPE_ERRORS: &str = "mgr.scrape.errors";
/// Completed scrape ticks.
pub const MGR_SCRAPE_TICKS: &str = "mgr.scrape.ticks";

// -- dynamic families ----------------------------------------------------

/// Per-op RPC counter family: `rpc.count.<Op>`.
pub const RPC_COUNT_PREFIX: &str = "rpc.count.";
/// Per-op RPC request-byte family: `rpc.bytes.<Op>`.
pub const RPC_BYTES_PREFIX: &str = "rpc.bytes.";
/// Per-op RPC latency histogram family: `rpc.latency_ns.<Op>`.
pub const RPC_LATENCY_NS_PREFIX: &str = "rpc.latency_ns.";
/// Manager-held per-node rate gauge family: `fleet.<node>.<series>`.
pub const FLEET_PREFIX: &str = "fleet.";

/// `rpc.count.<op>` — one served RPC of this opcode.
pub fn rpc_count(op: &str) -> String {
    format!("{RPC_COUNT_PREFIX}{op}")
}

/// `rpc.bytes.<op>` — request payload bytes for this opcode.
pub fn rpc_bytes(op: &str) -> String {
    format!("{RPC_BYTES_PREFIX}{op}")
}

/// `rpc.latency_ns.<op>` — service latency histogram for this opcode.
pub fn rpc_latency_ns(op: &str) -> String {
    format!("{RPC_LATENCY_NS_PREFIX}{op}")
}

/// `fleet.<node>.<series>` — a scraped per-node series republished as a
/// manager gauge for `top --watch`.
pub fn fleet(node: &str, series: &str) -> String {
    format!("{FLEET_PREFIX}{node}.{series}")
}

// -- fleet.* series suffixes (shared by scrape.rs and `top --watch`) -----

/// Windowed RPCs per second.
pub const FLEET_RPC_PER_SEC: &str = "rpc_per_sec";
/// Windowed request bytes per second.
pub const FLEET_BYTES_PER_SEC: &str = "bytes_per_sec";
/// Windowed p50 RPC latency, nanoseconds.
pub const FLEET_RPC_P50_NS: &str = "rpc_p50_ns";
/// Windowed p99 RPC latency, nanoseconds.
pub const FLEET_RPC_P99_NS: &str = "rpc_p99_ns";
/// Spans this node dropped, as seen by the scrape loop.
pub const FLEET_SCRAPE_DROPPED_SPANS: &str = "scrape_dropped_spans";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_helpers_agree_with_their_prefixes() {
        assert_eq!(rpc_count("TaskRun"), "rpc.count.TaskRun");
        assert_eq!(rpc_bytes("TaskRun"), "rpc.bytes.TaskRun");
        assert_eq!(rpc_latency_ns("Ping"), "rpc.latency_ns.Ping");
        assert_eq!(
            fleet("worker0", FLEET_RPC_PER_SEC),
            "fleet.worker0.rpc_per_sec"
        );
        for (name, prefix) in [
            (rpc_count("x"), RPC_COUNT_PREFIX),
            (rpc_bytes("x"), RPC_BYTES_PREFIX),
            (rpc_latency_ns("x"), RPC_LATENCY_NS_PREFIX),
            (fleet("n", "s"), FLEET_PREFIX),
        ] {
            assert!(name.starts_with(prefix));
        }
    }
}
