//! Cross-node span-tree reconstruction and critical-path analysis.
//!
//! The manager's scrape loop collects every node's spans into a
//! [`ScrapeStore`](crate::ScrapeStore); this module stitches one job's
//! spans back into the tree the RPCs actually formed. Parentage crosses
//! process boundaries (each receiver records the caller's span id as its
//! parent), and span ids are fleet-unique (see
//! [`next_span_id`](crate::next_span_id)), so stitching is a pure
//! id-join — no heuristics.
//!
//! ## Clock alignment
//!
//! `start_ns`/`end_ns` are monotonic offsets from *each process's own*
//! obs epoch — raw values from two nodes are incomparable. The waterfall
//! therefore aligns every span relative to its parent:
//!
//! - **Same-node child**: parent and child share an epoch, so the
//!   child's true offset inside the parent (`child.start - parent.start`)
//!   is used directly.
//! - **Cross-node child**: the only honest statement is "the child ran
//!   somewhere inside the parent's RPC window". We center it, splitting
//!   the parent-minus-child slack evenly between the request and
//!   response network legs — the symmetric-overhead assumption.
//!
//! ## Critical path
//!
//! From the root, repeatedly descend into the child whose *aligned* end
//! is latest; the chain of those spans is the path that bounded the
//! job's wall time. Ties break toward the longer child.

use crate::NodeSpan;
use std::collections::{BTreeMap, HashMap};

/// One stitched span: the scraped record plus its place in the tree and
/// its clock-aligned interval on the job's unified timeline.
#[derive(Debug, Clone)]
pub struct TreeSpan {
    /// Node the span was scraped from (`mgr`, `worker3`, `driver`).
    pub node: String,
    /// Ring sequence on that node (stable tie-break for rendering).
    pub seq: u64,
    /// The span record itself.
    pub record: crate::SpanRecord,
    /// Indices (into [`SpanTree::spans`]) of this span's children,
    /// sorted by aligned start.
    pub children: Vec<usize>,
    /// Depth below the root (roots are 0).
    pub depth: usize,
    /// Start on the job's unified timeline, ns from the root's start.
    pub aligned_start_ns: u64,
    /// End on the job's unified timeline.
    pub aligned_end_ns: u64,
}

impl TreeSpan {
    /// The span's own measured duration (clock-safe: both endpoints are
    /// from the same process).
    pub fn duration_ns(&self) -> u64 {
        self.record.end_ns.saturating_sub(self.record.start_ns)
    }
}

/// A stitched, clock-aligned span tree for one job.
#[derive(Debug, Clone, Default)]
pub struct SpanTree {
    /// All spans, tree-ordered only via `roots`/`children` indices.
    pub spans: Vec<TreeSpan>,
    /// Indices of root spans (`parent == 0`), sorted by duration
    /// descending — a healthy trace has exactly one.
    pub roots: Vec<usize>,
    /// Parent span ids that were referenced but never scraped (ring
    /// wrap, an unscraped node, …). The orphaned spans are grafted in
    /// as pseudo-roots so no data is hidden.
    pub missing_parents: Vec<u64>,
}

impl SpanTree {
    /// Stitches scraped spans into a tree and aligns every span onto
    /// the root's timeline (see the module docs for the rules).
    /// Duplicate span ids (a re-scraped span) keep the first instance.
    pub fn build(spans: &[NodeSpan]) -> SpanTree {
        let mut tree = SpanTree::default();
        let mut by_id: HashMap<u64, usize> = HashMap::with_capacity(spans.len());
        for s in spans {
            if by_id.contains_key(&s.record.span) {
                continue;
            }
            by_id.insert(s.record.span, tree.spans.len());
            tree.spans.push(TreeSpan {
                node: s.node.clone(),
                seq: s.seq,
                record: s.record.clone(),
                children: Vec::new(),
                depth: 0,
                aligned_start_ns: 0,
                aligned_end_ns: 0,
            });
        }
        let mut missing: BTreeMap<u64, ()> = BTreeMap::new();
        for i in 0..tree.spans.len() {
            let parent = tree.spans[i].record.parent;
            match by_id.get(&parent) {
                Some(&p) if p != i => tree.spans[p].children.push(i),
                _ => {
                    if parent != 0 {
                        missing.insert(parent, ());
                    }
                    tree.roots.push(i);
                }
            }
        }
        tree.missing_parents = missing.into_keys().collect();
        tree.roots
            .sort_by_key(|&i| std::cmp::Reverse(tree.spans[i].duration_ns()));
        // Align depth-first from each root. Iterative stack: deep
        // ingest chains should not recurse.
        let mut stack: Vec<usize> = Vec::new();
        for &root in &tree.roots {
            let d = tree.spans[root].duration_ns();
            tree.spans[root].aligned_start_ns = 0;
            tree.spans[root].aligned_end_ns = d;
            stack.push(root);
        }
        while let Some(p) = stack.pop() {
            let (p_node, p_start_raw, p_astart, p_aend, p_depth) = {
                let s = &tree.spans[p];
                (
                    s.node.clone(),
                    s.record.start_ns,
                    s.aligned_start_ns,
                    s.aligned_end_ns,
                    s.depth,
                )
            };
            let p_dur = p_aend.saturating_sub(p_astart);
            for ci in 0..tree.spans[p].children.len() {
                let c = tree.spans[p].children[ci];
                let c_dur = tree.spans[c].duration_ns();
                let start = if tree.spans[c].node == p_node {
                    // Shared epoch: the true offset inside the parent.
                    p_astart + tree.spans[c].record.start_ns.saturating_sub(p_start_raw)
                } else {
                    // Incomparable clocks: center inside the parent.
                    p_astart + p_dur.saturating_sub(c_dur) / 2
                };
                let child = &mut tree.spans[c];
                child.depth = p_depth + 1;
                child.aligned_start_ns = start;
                child.aligned_end_ns = start + c_dur;
                stack.push(c);
            }
            let mut kids = std::mem::take(&mut tree.spans[p].children);
            kids.sort_by_key(|&c| (tree.spans[c].aligned_start_ns, tree.spans[c].seq));
            tree.spans[p].children = kids;
        }
        tree
    }

    /// `true` when the trace stitched into a single tree: exactly one
    /// root and every referenced parent present.
    pub fn is_connected(&self) -> bool {
        self.roots.len() == 1 && self.missing_parents.is_empty()
    }

    /// End of the latest aligned span — the job's reconstructed wall
    /// time in ns.
    pub fn total_ns(&self) -> u64 {
        self.spans
            .iter()
            .map(|s| s.aligned_end_ns)
            .max()
            .unwrap_or(0)
    }

    /// The critical path from the primary root: indices of the chain
    /// obtained by repeatedly descending into the child with the
    /// latest aligned end. Empty only for an empty tree.
    pub fn critical_path(&self) -> Vec<usize> {
        let mut path = Vec::new();
        let Some(&root) = self.roots.first() else {
            return path;
        };
        let mut at = root;
        loop {
            path.push(at);
            let next = self.spans[at]
                .children
                .iter()
                .copied()
                .max_by_key(|&c| (self.spans[c].aligned_end_ns, self.spans[c].duration_ns()));
            match next {
                Some(c) => at = c,
                None => return path,
            }
        }
    }

    /// Per-node *self* time: for each node, the sum over its spans of
    /// the span's duration minus its same-node children's durations
    /// (clamped, so re-entrant bookkeeping can't go negative). This is
    /// the "who actually burned the time" figure behind skew and
    /// straggler callouts — nested same-node spans are not
    /// double-counted.
    pub fn per_node_busy_ns(&self) -> Vec<(String, u64)> {
        let mut busy: BTreeMap<String, u64> = BTreeMap::new();
        for s in &self.spans {
            let nested: u64 = s
                .children
                .iter()
                .filter(|&&c| self.spans[c].node == s.node)
                .map(|&c| self.spans[c].duration_ns())
                .sum();
            *busy.entry(s.node.clone()).or_default() += s.duration_ns().saturating_sub(nested);
        }
        busy.into_iter().collect()
    }

    /// Worker-skew report over per-node busy time: `(median, Vec of
    /// (node, busy) flagged as stragglers)`. A straggler burns more
    /// than 1.5× the median node's busy time; with fewer than two
    /// nodes there is nothing to compare and nothing is flagged.
    ///
    /// The primary root's node (the driver) is excluded: its RPC spans
    /// measure time spent *waiting* on workers — concurrent waits sum
    /// past the job's wall time — so including it would flag the
    /// driver for every parallel job and drown real worker skew.
    pub fn stragglers(&self) -> (u64, Vec<(String, u64)>) {
        let root_node = self.roots.first().map(|&i| self.spans[i].node.as_str());
        let busy: Vec<(String, u64)> = self
            .per_node_busy_ns()
            .into_iter()
            .filter(|(n, _)| Some(n.as_str()) != root_node)
            .collect();
        if busy.len() < 2 {
            return (busy.first().map(|(_, b)| *b).unwrap_or(0), Vec::new());
        }
        let mut sorted: Vec<u64> = busy.iter().map(|(_, b)| *b).collect();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let flagged = busy
            .into_iter()
            .filter(|(_, b)| *b > median.saturating_mul(3) / 2)
            .collect();
        (median, flagged)
    }

    /// Byte attribution per cross-node hop: for each parent→child edge
    /// that crosses nodes, the child's request payload bytes summed by
    /// `(from, to)` pair, sorted by bytes descending.
    pub fn bytes_per_hop(&self) -> Vec<(String, String, u64)> {
        let mut hops: BTreeMap<(String, String), u64> = BTreeMap::new();
        for s in &self.spans {
            for &c in &s.children {
                let child = &self.spans[c];
                if child.node != s.node {
                    *hops
                        .entry((s.node.clone(), child.node.clone()))
                        .or_default() += child.record.bytes;
                }
            }
        }
        let mut out: Vec<(String, String, u64)> = hops
            .into_iter()
            .map(|((from, to), b)| (from, to, b))
            .collect();
        out.sort_by_key(|(_, _, b)| std::cmp::Reverse(*b));
        out
    }

    /// Depth-first pre-order walk from the primary root, then any
    /// stray roots — the order a waterfall renders in.
    pub fn walk(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.spans.len());
        let mut stack: Vec<usize> = self.roots.iter().rev().copied().collect();
        while let Some(i) = stack.pop() {
            out.push(i);
            for &c in self.spans[i].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpanRecord;

    fn rec(
        node: &str,
        span: u64,
        parent: u64,
        op: &str,
        start_ns: u64,
        end_ns: u64,
        bytes: u64,
    ) -> NodeSpan {
        NodeSpan {
            node: node.into(),
            seq: span,
            record: SpanRecord {
                job: 42,
                span,
                parent,
                op: op.into(),
                peer: String::new(),
                start_ns,
                end_ns,
                bytes,
                outcome: "ok".into(),
            },
        }
    }

    /// driver root (0..1000) → mgr rpc (same proc? no: cross-node,
    /// 0..600 on mgr's clock) → two worker tasks.
    fn sample() -> Vec<NodeSpan> {
        vec![
            rec("driver", 1, 0, "DriverRpc", 5_000, 6_000, 0),
            rec("w0", 2, 1, "TaskRun", 900_000, 900_400, 64),
            rec("w1", 3, 1, "TaskRun", 10, 110, 32),
            // Same-node child of w0's task, offset 100ns in.
            rec("w0", 4, 2, "IngestAppend", 900_100, 900_250, 16),
        ]
    }

    #[test]
    fn stitches_one_connected_tree() {
        let tree = SpanTree::build(&sample());
        assert!(tree.is_connected());
        assert_eq!(tree.roots.len(), 1);
        assert!(tree.missing_parents.is_empty());
        let root = &tree.spans[tree.roots[0]];
        assert_eq!(root.record.op, "DriverRpc");
        assert_eq!(root.aligned_start_ns, 0);
        assert_eq!(root.aligned_end_ns, 1000);
        assert_eq!(tree.total_ns(), 1000);
    }

    #[test]
    fn cross_node_children_center_same_node_children_offset() {
        let tree = SpanTree::build(&sample());
        let by_span = |id: u64| tree.spans.iter().find(|s| s.record.span == id).unwrap();
        // w0's 400ns task centers in the 1000ns root: (1000-400)/2.
        let task = by_span(2);
        assert_eq!(task.aligned_start_ns, 300);
        assert_eq!(task.aligned_end_ns, 700);
        // Its same-node ingest child keeps the true 100ns offset.
        let ingest = by_span(4);
        assert_eq!(ingest.depth, 2);
        assert_eq!(ingest.aligned_start_ns, 400);
        assert_eq!(ingest.aligned_end_ns, 550);
    }

    #[test]
    fn critical_path_follows_latest_aligned_end() {
        let tree = SpanTree::build(&sample());
        let ops: Vec<&str> = tree
            .critical_path()
            .iter()
            .map(|&i| tree.spans[i].record.op.as_str())
            .collect();
        // w0's task ends at 700 vs w1's at ~550: the long branch wins.
        assert_eq!(ops, vec!["DriverRpc", "TaskRun", "IngestAppend"]);
    }

    #[test]
    fn missing_parent_becomes_pseudo_root_and_is_reported() {
        let mut spans = sample();
        spans.push(rec("w2", 9, 777, "TaskRun", 0, 50, 8));
        let tree = SpanTree::build(&spans);
        assert!(!tree.is_connected());
        assert_eq!(tree.roots.len(), 2);
        assert_eq!(tree.missing_parents, vec![777]);
        // The primary root is still the longest one.
        assert_eq!(tree.spans[tree.roots[0]].record.op, "DriverRpc");
    }

    #[test]
    fn busy_time_is_self_time_and_stragglers_flag_above_ratio() {
        let tree = SpanTree::build(&sample());
        let busy: BTreeMap<String, u64> = tree.per_node_busy_ns().into_iter().collect();
        // w0's task is 400 with a 150ns same-node child: 250 + 150.
        assert_eq!(busy["w0"], 400);
        assert_eq!(busy["w1"], 100);
        assert_eq!(busy["driver"], 1000);
        // The driver (root node) never flags — its spans are RPC wait.
        let (median, flagged) = tree.stragglers();
        assert_eq!(median, 400);
        assert!(flagged.is_empty(), "{flagged:?}");
        // A genuinely slow worker does flag against the worker median.
        let mut spans = sample();
        spans.push(rec("w2", 5, 1, "TaskRun", 0, 2000, 8));
        let tree = SpanTree::build(&spans);
        let (median, flagged) = tree.stragglers();
        assert_eq!(median, 400);
        assert_eq!(flagged, vec![("w2".to_string(), 2000)]);
    }

    #[test]
    fn bytes_attribute_to_cross_node_hops_only() {
        let tree = SpanTree::build(&sample());
        let hops = tree.bytes_per_hop();
        // driver→w0 64B, driver→w1 32B; the same-node ingest is not a hop.
        assert_eq!(
            hops,
            vec![
                ("driver".to_string(), "w0".to_string(), 64),
                ("driver".to_string(), "w1".to_string(), 32),
            ]
        );
    }

    #[test]
    fn walk_is_preorder_from_primary_root() {
        let tree = SpanTree::build(&sample());
        let order: Vec<u64> = tree
            .walk()
            .iter()
            .map(|&i| tree.spans[i].record.span)
            .collect();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], 1);
        // Children sorted by aligned start: w0's task (300) precedes…
        // actually w1 (aligned 450) comes after w0's subtree.
        assert_eq!(order, vec![1, 2, 4, 3]);
    }

    #[test]
    fn empty_and_self_parent_inputs_are_safe() {
        let tree = SpanTree::build(&[]);
        assert!(tree.critical_path().is_empty());
        assert_eq!(tree.total_ns(), 0);
        assert!(!tree.is_connected());
        // A span claiming itself as parent must not loop.
        let looped = vec![rec("w0", 7, 7, "TaskRun", 0, 10, 0)];
        let tree = SpanTree::build(&looped);
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.critical_path().len(), 1);
    }
}
