//! The manager-side retained telemetry store.
//!
//! `pangea-mgr`'s scrape loop periodically pulls every worker's
//! `MetricsDump` and folds the results in here: a per-node, per-metric
//! ring of timestamped samples (so windowed *rates* can be derived from
//! monotonic counters) plus a fleet-wide span store indexed by job id
//! (so one `TraceQuery` can stitch a cross-node span tree long after
//! each daemon's own ring has rotated).
//!
//! Everything is bounded: each series keeps the last
//! [`DEFAULT_SAMPLES_PER_SERIES`] samples, each job keeps at most
//! [`DEFAULT_SPANS_PER_JOB`] spans, and at most [`DEFAULT_JOB_CAPACITY`]
//! jobs are retained (oldest-inserted evicted first). The store also
//! carries the per-node **dropped-span ledger** the scraper feeds when a
//! worker's ring wraps past its cursor — a trace served from here can
//! therefore say "incomplete" instead of merely looking complete.
//!
//! The windowed-rate math ([`windowed_rate_per_sec`],
//! [`windowed_bucket_delta`]) is exposed as free functions: counter
//! *resets* (a worker restarting mid-window re-registers its counters at
//! zero) must clamp to zero, never underflow, and that contract is unit
//! tested independently of any store.

use crate::{names, quantile_from_buckets, MetricSnapshot, MetricValue, SpanRecord};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;
use std::time::Instant;

/// Samples retained per `(node, metric)` series.
pub const DEFAULT_SAMPLES_PER_SERIES: usize = 256;
/// Spans retained per job (the overflow is counted, not silent).
pub const DEFAULT_SPANS_PER_JOB: usize = 16_384;
/// Jobs retained in the span store (oldest-inserted evicted first).
pub const DEFAULT_JOB_CAPACITY: usize = 64;

/// Synthetic per-node rollup series the store derives from every scrape:
/// the sum of all `rpc.count.*` counters.
pub const ROLLUP_RPC_COUNT: &str = "rpc.total.count";
/// Rollup of all `rpc.bytes.*` counters.
pub const ROLLUP_RPC_BYTES: &str = "rpc.total.bytes";
/// Rollup of all `rpc.latency_ns.*` histograms (bucket-wise sum).
pub const ROLLUP_RPC_LATENCY: &str = "rpc.total.latency_ns";

/// One timestamped sample of one node's metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesPoint {
    /// Milliseconds since the store's epoch at scrape time.
    pub at_ms: u64,
    /// The metric's value at that instant.
    pub value: MetricValue,
}

/// One span in the fleet-wide store: a [`SpanRecord`] plus the node it
/// was scraped from and its ring sequence number there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpan {
    /// Display name of the node that recorded the span (`mgr`,
    /// `worker3`, `driver`).
    pub node: String,
    /// The span's sequence number in that node's ring.
    pub seq: u64,
    /// The span itself.
    pub record: SpanRecord,
}

#[derive(Debug, Default)]
struct NodeSeries {
    series: BTreeMap<String, VecDeque<SeriesPoint>>,
    /// Spans this node's ring evicted past the scraper's cursor —
    /// history that can never be scraped.
    dropped_spans: u64,
}

#[derive(Debug, Default)]
struct StoreInner {
    nodes: BTreeMap<String, NodeSeries>,
    jobs: BTreeMap<u64, Vec<NodeSpan>>,
    /// Insertion order of job ids, for bounded eviction.
    job_order: VecDeque<u64>,
    /// Spans discarded because a single job hit its span cap.
    overflow_spans: u64,
}

/// The retained fleet-telemetry store (see the module docs).
#[derive(Debug)]
pub struct ScrapeStore {
    inner: Mutex<StoreInner>,
    samples_per_series: usize,
    spans_per_job: usize,
    job_capacity: usize,
    epoch: Instant,
}

impl Default for ScrapeStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ScrapeStore {
    /// A store with the default retention bounds.
    pub fn new() -> Self {
        Self::with_capacity(
            DEFAULT_SAMPLES_PER_SERIES,
            DEFAULT_SPANS_PER_JOB,
            DEFAULT_JOB_CAPACITY,
        )
    }

    /// A store with explicit retention bounds (all clamped to ≥ 1).
    pub fn with_capacity(samples_per_series: usize, spans_per_job: usize, jobs: usize) -> Self {
        Self {
            inner: Mutex::new(StoreInner::default()),
            samples_per_series: samples_per_series.max(1),
            spans_per_job: spans_per_job.max(1),
            job_capacity: jobs.max(1),
            epoch: Instant::now(),
        }
    }

    /// Milliseconds since this store was created — the timestamp base
    /// every sample is recorded against.
    pub fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Folds one scraped metric snapshot into `node`'s series at
    /// `at_ms`, deriving the synthetic `rpc.total.*` rollups (total RPC
    /// count, total payload bytes, bucket-summed latency histogram) so
    /// windowed fleet rates are single-series reads.
    pub fn record_metrics(&self, node: &str, at_ms: u64, metrics: &[MetricSnapshot]) {
        let mut rpc_count = 0u64;
        let mut rpc_bytes = 0u64;
        let mut latency: Option<(u64, u64, Vec<u64>)> = None;
        for m in metrics {
            match (&m.value, m.name.as_str()) {
                (MetricValue::Counter(v), name) if name.starts_with(names::RPC_COUNT_PREFIX) => {
                    rpc_count = rpc_count.wrapping_add(*v);
                }
                (MetricValue::Counter(v), name) if name.starts_with(names::RPC_BYTES_PREFIX) => {
                    rpc_bytes = rpc_bytes.wrapping_add(*v);
                }
                (
                    MetricValue::Histogram {
                        count,
                        sum,
                        buckets,
                    },
                    name,
                ) if name.starts_with(names::RPC_LATENCY_NS_PREFIX) => {
                    let (tc, ts, tb) = latency.get_or_insert((0, 0, Vec::new()));
                    *tc = tc.wrapping_add(*count);
                    *ts = ts.wrapping_add(*sum);
                    if tb.len() < buckets.len() {
                        tb.resize(buckets.len(), 0);
                    }
                    for (t, b) in tb.iter_mut().zip(buckets) {
                        *t = t.wrapping_add(*b);
                    }
                }
                _ => {}
            }
        }
        let mut inner = self.inner.lock().unwrap();
        let entry = inner.nodes.entry(node.to_string()).or_default();
        for m in metrics {
            push_sample(
                entry,
                &m.name,
                at_ms,
                m.value.clone(),
                self.samples_per_series,
            );
        }
        push_sample(
            entry,
            ROLLUP_RPC_COUNT,
            at_ms,
            MetricValue::Counter(rpc_count),
            self.samples_per_series,
        );
        push_sample(
            entry,
            ROLLUP_RPC_BYTES,
            at_ms,
            MetricValue::Counter(rpc_bytes),
            self.samples_per_series,
        );
        if let Some((count, sum, buckets)) = latency {
            push_sample(
                entry,
                ROLLUP_RPC_LATENCY,
                at_ms,
                MetricValue::Histogram {
                    count,
                    sum,
                    buckets,
                },
                self.samples_per_series,
            );
        }
    }

    /// Folds scraped `(ring seq, span)` records from `node` into the
    /// job-indexed span store, evicting the oldest retained *job* when
    /// the job bound is hit and counting (never silently dropping)
    /// spans past a single job's cap.
    pub fn record_spans(&self, node: &str, spans: Vec<(u64, SpanRecord)>) {
        if spans.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;
        for (seq, record) in spans {
            let job = record.job;
            if let std::collections::btree_map::Entry::Vacant(e) = inner.jobs.entry(job) {
                e.insert(Vec::new());
                inner.job_order.push_back(job);
                while inner.job_order.len() > self.job_capacity {
                    if let Some(evicted) = inner.job_order.pop_front() {
                        inner.jobs.remove(&evicted);
                    }
                }
            }
            // This span's own job may have been the one evicted
            // (pathological tiny capacity).
            let Some(slot) = inner.jobs.get_mut(&job) else {
                continue;
            };
            if slot.len() >= self.spans_per_job {
                inner.overflow_spans += 1;
                continue;
            }
            slot.push(NodeSpan {
                node: node.to_string(),
                seq,
                record,
            });
        }
    }

    /// Accumulates `delta` spans lost to `node`'s wrapped ring (the
    /// scraper's cursor gap).
    pub fn note_dropped(&self, node: &str, delta: u64) {
        if delta == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner
            .nodes
            .entry(node.to_string())
            .or_default()
            .dropped_spans += delta;
    }

    /// Spans lost to `node`'s ring wrapping, cumulatively.
    pub fn node_dropped(&self, node: &str) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .nodes
            .get(node)
            .map(|n| n.dropped_spans)
            .unwrap_or(0)
    }

    /// Fleet-wide span loss: ring-wrap gaps across every node plus
    /// spans discarded by a single job's cap. Nonzero means a served
    /// trace may be incomplete.
    pub fn dropped_total(&self) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner.overflow_spans + inner.nodes.values().map(|n| n.dropped_spans).sum::<u64>()
    }

    /// Every node with at least one recorded sample, sorted.
    pub fn nodes(&self) -> Vec<String> {
        self.inner.lock().unwrap().nodes.keys().cloned().collect()
    }

    /// The most recent sample of `(node, metric)`, if any.
    pub fn latest(&self, node: &str, name: &str) -> Option<SeriesPoint> {
        let inner = self.inner.lock().unwrap();
        inner.nodes.get(node)?.series.get(name)?.back().cloned()
    }

    /// The most recent scalar value of `(node, metric)` — counter or
    /// gauge; `None` for histograms or unknown series.
    pub fn latest_scalar(&self, node: &str, name: &str) -> Option<u64> {
        match self.latest(node, name)?.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => Some(v),
            MetricValue::Histogram { .. } => None,
        }
    }

    /// All samples of `(node, metric)` with `at_ms >= since_ms`, oldest
    /// first.
    pub fn window(&self, node: &str, name: &str, since_ms: u64) -> Vec<SeriesPoint> {
        let inner = self.inner.lock().unwrap();
        inner
            .nodes
            .get(node)
            .and_then(|n| n.series.get(name))
            .map(|ring| {
                ring.iter()
                    .filter(|p| p.at_ms >= since_ms)
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The windowed per-second rate of a counter series over the last
    /// `window_ms` (ending now): the sum of non-negative sample deltas
    /// divided by the covered wall time. Counter resets clamp to zero
    /// contribution; fewer than two samples (or a zero-length window)
    /// rate as `0.0`.
    pub fn counter_rate_per_sec(&self, node: &str, name: &str, window_ms: u64) -> f64 {
        let since = self.now_ms().saturating_sub(window_ms);
        let points: Vec<(u64, u64)> = self
            .window(node, name, since)
            .into_iter()
            .filter_map(|p| match p.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => Some((p.at_ms, v)),
                MetricValue::Histogram { .. } => None,
            })
            .collect();
        windowed_rate_per_sec(&points)
    }

    /// The `q`-quantile of a histogram series *over the last window*:
    /// the bucket-wise delta between the newest and oldest sample in
    /// the window (clamped per bucket, so a worker restart reads as an
    /// empty window, not an underflow), digested through
    /// [`quantile_from_buckets`]. With fewer than two samples in the
    /// window the newest sample's cumulative buckets are used — the
    /// best available answer right after startup.
    pub fn histogram_window_quantile(&self, node: &str, name: &str, window_ms: u64, q: f64) -> u64 {
        let since = self.now_ms().saturating_sub(window_ms);
        let samples: Vec<Vec<u64>> = self
            .window(node, name, since)
            .into_iter()
            .filter_map(|p| match p.value {
                MetricValue::Histogram { buckets, .. } => Some(buckets),
                _ => None,
            })
            .collect();
        match samples.as_slice() {
            [] => 0,
            [only] => quantile_from_buckets(only, q),
            [first, .., last] => quantile_from_buckets(&windowed_bucket_delta(first, last), q),
        }
    }

    /// Every retained span of `job`, in scrape order.
    pub fn job_spans(&self, job: u64) -> Vec<NodeSpan> {
        self.inner
            .lock()
            .unwrap()
            .jobs
            .get(&job)
            .cloned()
            .unwrap_or_default()
    }

    /// Retained job ids with their span counts, newest-inserted last.
    pub fn jobs(&self) -> Vec<(u64, usize)> {
        let inner = self.inner.lock().unwrap();
        inner
            .job_order
            .iter()
            .filter_map(|job| inner.jobs.get(job).map(|s| (*job, s.len())))
            .collect()
    }
}

fn push_sample(node: &mut NodeSeries, name: &str, at_ms: u64, value: MetricValue, capacity: usize) {
    let ring = node.series.entry(name.to_string()).or_default();
    if ring.len() == capacity {
        ring.pop_front();
    }
    ring.push_back(SeriesPoint { at_ms, value });
}

/// The per-second rate of a monotonic counter from timestamped samples
/// (`(at_ms, value)`, oldest first): the sum of **non-negative**
/// consecutive deltas over the covered wall time. A counter reset (a
/// restarted worker re-registers at zero, so a later sample is smaller)
/// contributes zero for that step instead of underflowing; fewer than
/// two samples, or samples covering zero wall time, rate as `0.0`.
pub fn windowed_rate_per_sec(points: &[(u64, u64)]) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let elapsed_ms = points[points.len() - 1].0.saturating_sub(points[0].0);
    if elapsed_ms == 0 {
        return 0.0;
    }
    let grown: u64 = points
        .windows(2)
        .map(|w| w[1].1.saturating_sub(w[0].1))
        .sum();
    (grown as f64) * 1000.0 / (elapsed_ms as f64)
}

/// The bucket-wise delta `last - first` of two cumulative histogram
/// snapshots, clamped per bucket (a restarted worker's buckets shrink;
/// the delta must read as empty, never wrap). Length mismatches are
/// tolerated: missing buckets count as zero.
pub fn windowed_bucket_delta(first: &[u64], last: &[u64]) -> Vec<u64> {
    (0..first.len().max(last.len()))
        .map(|i| {
            let f = first.get(i).copied().unwrap_or(0);
            let l = last.get(i).copied().unwrap_or(0);
            l.saturating_sub(f)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(name: &str, value: u64) -> MetricSnapshot {
        MetricSnapshot {
            name: name.into(),
            value: MetricValue::Counter(value),
        }
    }

    fn span(job: u64, id: u64) -> SpanRecord {
        SpanRecord {
            job,
            span: id,
            parent: 0,
            op: "op".into(),
            peer: String::new(),
            start_ns: 0,
            end_ns: 1,
            bytes: 0,
            outcome: "ok".into(),
        }
    }

    #[test]
    fn rate_needs_two_samples_and_wall_time() {
        assert_eq!(windowed_rate_per_sec(&[]), 0.0);
        assert_eq!(windowed_rate_per_sec(&[(0, 100)]), 0.0);
        // Zero-length window: two samples at the same instant.
        assert_eq!(windowed_rate_per_sec(&[(5, 10), (5, 99)]), 0.0);
        // 100 increments over 2 seconds.
        assert_eq!(windowed_rate_per_sec(&[(0, 0), (2000, 100)]), 50.0);
    }

    #[test]
    fn counter_reset_clamps_to_zero_never_underflows() {
        // The worker restarted between samples 2 and 3: 500 → 20. The
        // reset step contributes 0; growth before and after counts.
        let rate = windowed_rate_per_sec(&[(0, 400), (1000, 500), (2000, 20), (3000, 70)]);
        assert_eq!(rate, 50.0); // (100 + 0 + 50) / 3s
                                // Strictly decreasing series rates as exactly 0.
        assert_eq!(windowed_rate_per_sec(&[(0, 100), (1000, 1)]), 0.0);
    }

    #[test]
    fn bucket_delta_clamps_and_tolerates_length_mismatch() {
        assert_eq!(windowed_bucket_delta(&[], &[]), Vec::<u64>::new());
        assert_eq!(windowed_bucket_delta(&[1, 5], &[4, 3]), vec![3, 0]);
        assert_eq!(windowed_bucket_delta(&[1], &[1, 7]), vec![0, 7]);
        assert_eq!(windowed_bucket_delta(&[1, 7], &[2]), vec![1, 0]);
    }

    #[test]
    fn window_quantile_handles_empty_single_and_reset() {
        let store = ScrapeStore::new();
        // No samples at all: 0.
        assert_eq!(store.histogram_window_quantile("w0", "h", 1000, 0.99), 0);
        // A single sample: its cumulative quantile.
        let mut buckets = vec![0u64; 64];
        buckets[4] = 10; // ten observations bounded by 16
        store.record_metrics(
            "w0",
            store.now_ms(),
            &[MetricSnapshot {
                name: "h".into(),
                value: MetricValue::Histogram {
                    count: 10,
                    sum: 100,
                    buckets: buckets.clone(),
                },
            }],
        );
        assert_eq!(store.histogram_window_quantile("w0", "h", 10_000, 0.5), 16);
        // A restart: the next snapshot is smaller everywhere. The
        // windowed delta must be empty → quantile 0, not garbage.
        let mut smaller = vec![0u64; 64];
        smaller[4] = 2;
        store.record_metrics(
            "w0",
            store.now_ms(),
            &[MetricSnapshot {
                name: "h".into(),
                value: MetricValue::Histogram {
                    count: 2,
                    sum: 20,
                    buckets: smaller,
                },
            }],
        );
        assert_eq!(store.histogram_window_quantile("w0", "h", 10_000, 0.5), 0);
        // An empty histogram snapshot pair stays 0.
        assert_eq!(quantile_from_buckets(&[], 0.99), 0);
        assert_eq!(quantile_from_buckets(&[0; 64], 0.99), 0);
    }

    #[test]
    fn rollups_sum_rpc_series() {
        let store = ScrapeStore::new();
        store.record_metrics(
            "w1",
            7,
            &[
                counter("rpc.count.Ping", 3),
                counter("rpc.count.TaskRun", 2),
                counter("rpc.bytes.TaskRun", 640),
                counter("io.net_bytes", 999), // not an rpc.* series
            ],
        );
        assert_eq!(store.latest_scalar("w1", ROLLUP_RPC_COUNT), Some(5));
        assert_eq!(store.latest_scalar("w1", ROLLUP_RPC_BYTES), Some(640));
        assert_eq!(store.latest_scalar("w1", "io.net_bytes"), Some(999));
        assert_eq!(store.latest_scalar("w2", ROLLUP_RPC_COUNT), None);
    }

    #[test]
    fn series_rings_are_bounded() {
        let store = ScrapeStore::with_capacity(4, 16, 4);
        for i in 0..10 {
            store.record_metrics("w0", i, &[counter("c", i)]);
        }
        let window = store.window("w0", "c", 0);
        assert_eq!(window.len(), 4);
        assert_eq!(window[0].at_ms, 6);
        assert_eq!(store.latest_scalar("w0", "c"), Some(9));
    }

    #[test]
    fn span_store_indexes_by_job_and_bounds_both_ways() {
        let store = ScrapeStore::with_capacity(8, 2, 2);
        store.record_spans("w0", vec![(0, span(1, 10)), (1, span(1, 11))]);
        store.record_spans("w1", vec![(0, span(1, 12)), (5, span(2, 20))]);
        // Job 1 hit its 2-span cap: the third span is counted overflow.
        assert_eq!(store.job_spans(1).len(), 2);
        assert_eq!(store.dropped_total(), 1);
        assert_eq!(store.job_spans(2).len(), 1);
        assert_eq!(store.jobs(), vec![(1, 2), (2, 1)]);
        // A third job evicts the oldest (job 1).
        store.record_spans("w0", vec![(9, span(3, 30))]);
        assert!(store.job_spans(1).is_empty());
        assert_eq!(store.jobs(), vec![(2, 1), (3, 1)]);
        // Node attribution survives.
        assert_eq!(store.job_spans(2)[0].node, "w1");
        assert_eq!(store.job_spans(2)[0].seq, 5);
    }

    #[test]
    fn dropped_ledger_accumulates_per_node() {
        let store = ScrapeStore::new();
        assert_eq!(store.node_dropped("w0"), 0);
        store.note_dropped("w0", 7);
        store.note_dropped("w0", 0);
        store.note_dropped("w1", 2);
        assert_eq!(store.node_dropped("w0"), 7);
        assert_eq!(store.dropped_total(), 9);
    }

    #[test]
    fn counter_rate_reads_from_the_store_window() {
        let store = ScrapeStore::new();
        let now = store.now_ms();
        store.record_metrics("w0", now, &[counter("c", 0)]);
        store.record_metrics("w0", now + 1000, &[counter("c", 500)]);
        // Samples are timestamped in the future relative to "now", so a
        // generous window covers both.
        let rate = store.counter_rate_per_sec("w0", "c", 60_000);
        assert_eq!(rate, 500.0);
        // Samples at the same instant cover zero wall time → 0.
        let store = ScrapeStore::new();
        let at = store.now_ms() + 5;
        store.record_metrics("w0", at, &[counter("c", 0)]);
        store.record_metrics("w0", at, &[counter("c", 500)]);
        assert_eq!(store.counter_rate_per_sec("w0", "c", 60_000), 0.0);
    }
}
