//! # pangea-obs
//!
//! Zero-dependency observability primitives for the Pangea
//! reproduction: a lock-free metrics registry (counters, gauges, log2
//! latency histograms), wire-propagated trace context, and a bounded
//! in-memory span ring with an optional JSONL sink.
//!
//! Everything here is `std`-only by design — the crate sits *below*
//! `pangea-common` in the dependency order so every layer (storage
//! daemon, manager, wire client, driver) can register into the same
//! registry without cycles. Handles are cheap `Arc` clones and all hot
//! paths are single relaxed atomic operations; snapshotting is the only
//! place a lock is taken.
//!
//! The span model is deliberately small: a [`TraceCtx`] carries a
//! `job` id and the *caller's* span id across the wire; each receiver
//! allocates its own span id, records a [`SpanRecord`] whose `parent`
//! is the caller's span, and propagates `(job, own span)` into any
//! fan-out it performs. One driver job is therefore a tree of spans
//! scattered over every participating node's ring, correlated by
//! `job` and stitched by `parent`.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub mod names;
pub mod spantree;
pub mod timeseries;

pub use spantree::{SpanTree, TreeSpan};
pub use timeseries::{
    windowed_bucket_delta, windowed_rate_per_sec, NodeSpan, ScrapeStore, SeriesPoint,
};

/// Number of log2 buckets in a [`Histogram`]: bucket `i` counts values
/// `v` with `bit_length(v) == i` (bucket 0 holds `v == 0`), so the
/// last bucket absorbs everything at or above 2^62 — far beyond any
/// realistic nanosecond latency.
pub const HISTOGRAM_BUCKETS: usize = 64;

fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Upper bound (inclusive-ish, power of two) represented by bucket `i`;
/// used when estimating quantiles from a bucket vector.
pub fn bucket_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 63 {
        u64::MAX
    } else {
        1u64 << index
    }
}

/// Estimates the `q`-quantile (`0.0..=1.0`) of a log2 bucket vector, as
/// produced by [`Histogram::snapshot`] or shipped over the wire. The
/// estimate is the power-of-two upper bound of the bucket containing
/// the quantile rank — coarse, but monotone and allocation-free.
pub fn quantile_from_buckets(buckets: &[u64], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((total as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank.max(1) {
            return bucket_bound(i);
        }
    }
    bucket_bound(buckets.len().saturating_sub(1))
}

/// A monotonically increasing counter. Cloning shares the same cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the value (used by `IoStats::reset`-style views).
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// A last-write-wins gauge. Cloning shares the same cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh, unregistered gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCells {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramCells {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A fixed log2-bucket histogram (intended for nanosecond latencies).
/// Cloning shares the same cells; recording is three relaxed atomics.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCells>);

impl Histogram {
    /// A fresh, unregistered histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
        self.0.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// `(count, sum, buckets)` at this instant. The three reads are not
    /// mutually atomic — fine for monitoring, not for accounting.
    pub fn snapshot(&self) -> (u64, u64, Vec<u64>) {
        let count = self.0.count.load(Ordering::Relaxed);
        let sum = self.0.sum.load(Ordering::Relaxed);
        let buckets = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        (count, sum, buckets)
    }

    /// Estimated `q`-quantile of the recorded values.
    pub fn quantile(&self, q: f64) -> u64 {
        let (_, _, buckets) = self.snapshot();
        quantile_from_buckets(&buckets, q)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// One named metric's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Last-set gauge value.
    Gauge(u64),
    /// Histogram `count`, `sum`, and log2 bucket counts.
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of all observed values.
        sum: u64,
        /// Per-bucket observation counts (see [`HISTOGRAM_BUCKETS`]).
        buckets: Vec<u64>,
    },
}

/// A `(name, value)` pair from [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// The metric's registry name, e.g. `rpc.count.TaskRun`.
    pub name: String,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// A process-local registry of named metrics. `counter`/`gauge`/
/// `histogram` get-or-create, so every layer can ask for the same name
/// and share the cell; snapshots come back sorted by name, which gives
/// `MetricsDump` a stable pagination order.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, created at zero on first
    /// use. Panics if `name` is already a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name} is not a counter: {other:?}"),
        }
    }

    /// The gauge registered under `name`, created at zero on first use.
    /// Panics if `name` is already a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name} is not a gauge: {other:?}"),
        }
    }

    /// The histogram registered under `name`, created empty on first
    /// use. Panics if `name` is already a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name} is not a histogram: {other:?}"),
        }
    }

    /// Every registered metric, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let m = self.metrics.lock().unwrap();
        m.iter()
            .map(|(name, metric)| MetricSnapshot {
                name: name.clone(),
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => {
                        let (count, sum, buckets) = h.snapshot();
                        MetricValue::Histogram {
                            count,
                            sum,
                            buckets,
                        }
                    }
                },
            })
            .collect()
    }
}

/// Wire-propagated trace context: the driver's `job` id plus the span
/// id of the *caller* — the receiving side allocates its own span and
/// records the caller's as `parent`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Fleet-unique job id, allocated once per driver-level operation.
    pub job: u64,
    /// The caller's span id (becomes the receiver's span parent).
    pub span: u64,
}

/// One completed span: a single RPC (or local unit of work) attributed
/// to a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Job id this span belongs to.
    pub job: u64,
    /// This span's id, fleet-unique (see [`next_span_id`]).
    pub span: u64,
    /// The caller's span id, or 0 at the root.
    pub parent: u64,
    /// Operation name (request opcode name, or a local label).
    pub op: String,
    /// The remote peer involved, when known (address or node id).
    pub peer: String,
    /// Monotonic start, nanoseconds since the process's obs epoch.
    pub start_ns: u64,
    /// Monotonic end, nanoseconds since the process's obs epoch.
    pub end_ns: u64,
    /// Request payload bytes handled under this span.
    pub bytes: u64,
    /// `"ok"` or a short error description.
    pub outcome: String,
}

/// Default capacity of a [`TraceRing`].
pub const DEFAULT_RING_CAPACITY: usize = 4096;

#[derive(Debug, Default)]
struct RingInner {
    next_seq: u64,
    spans: VecDeque<(u64, SpanRecord)>,
    /// Total records ever evicted by capacity (not by readers).
    dropped: u64,
}

/// A bounded ring of recent [`SpanRecord`]s. Every record gets a
/// strictly increasing sequence number, so dumps can paginate with
/// "give me everything at or after seq N" even while old records are
/// being evicted.
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    inner: Mutex<RingInner>,
    sink: Mutex<Option<File>>,
}

impl Default for TraceRing {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }
}

impl TraceRing {
    /// An empty ring holding at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(RingInner::default()),
            sink: Mutex::new(None),
        }
    }

    /// Appends `record`, evicting the oldest record when full, and
    /// mirrors it to the JSONL sink when one is configured.
    pub fn record(&self, record: SpanRecord) {
        {
            let mut sink = self.sink.lock().unwrap();
            if let Some(file) = sink.as_mut() {
                let _ = file.write_all(jsonl_line(&record).as_bytes());
            }
        }
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.spans.len() == self.capacity {
            inner.spans.pop_front();
            inner.dropped += 1;
        }
        inner.spans.push_back((seq, record));
    }

    /// All retained records with sequence number `>= start`, oldest
    /// first, as `(seq, record)` pairs. Evicted records are silently
    /// skipped; readers that must *know* about the skip (an incremental
    /// scraper presenting a trace as complete) use
    /// [`TraceRing::since_with_gap`].
    pub fn since(&self, start: u64) -> Vec<(u64, SpanRecord)> {
        self.since_with_gap(start).0
    }

    /// Like [`TraceRing::since`], but also reports the **gap**: how many
    /// records with sequence number `>= start` once existed but have
    /// already been evicted by capacity. A nonzero gap means the reader's
    /// cursor fell behind the ring and the returned slice is *not* the
    /// complete history past `start`.
    pub fn since_with_gap(&self, start: u64) -> (Vec<(u64, SpanRecord)>, u64) {
        let inner = self.inner.lock().unwrap();
        // The oldest sequence still retained; an empty ring retains
        // nothing, so everything up to `next_seq` is gone.
        let oldest = inner
            .spans
            .front()
            .map(|(seq, _)| *seq)
            .unwrap_or(inner.next_seq);
        let gap = oldest.min(inner.next_seq).saturating_sub(start);
        let spans = inner
            .spans
            .iter()
            .filter(|(seq, _)| *seq >= start)
            .cloned()
            .collect();
        (spans, gap)
    }

    /// Total records ever evicted by capacity pressure — the value
    /// behind each daemon's `trace.dropped_spans` counter.
    pub fn dropped_total(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// The sequence number the *next* record will get.
    pub fn next_seq(&self) -> u64 {
        self.inner.lock().unwrap().next_seq
    }

    /// Mirrors every subsequent record to `path` as one JSON object per
    /// line (appending; the file is created if missing).
    pub fn set_jsonl_sink(&self, path: &Path) -> std::io::Result<()> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        *self.sink.lock().unwrap() = Some(file);
        Ok(())
    }
}

/// Escapes `s` for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn jsonl_line(r: &SpanRecord) -> String {
    format!(
        "{{\"job\":{},\"span\":{},\"parent\":{},\"op\":\"{}\",\"peer\":\"{}\",\"start_ns\":{},\"end_ns\":{},\"bytes\":{},\"outcome\":\"{}\"}}\n",
        r.job,
        r.span,
        r.parent,
        json_escape(&r.op),
        json_escape(&r.peer),
        r.start_ns,
        r.end_ns,
        r.bytes,
        json_escape(&r.outcome),
    )
}

static NEXT_JOB: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// Allocates a fleet-unique job id: the process id in the high 32 bits
/// plus a process-local counter, so concurrent drivers cannot collide.
pub fn next_job_id() -> u64 {
    ((std::process::id() as u64) << 32) | (NEXT_JOB.fetch_add(1, Ordering::Relaxed) & 0xffff_ffff)
}

/// Allocates a fleet-unique span id (never 0 — 0 means "no parent"),
/// salted like [`next_job_id`]: the process id in the high 32 bits plus
/// a process-local counter. Every daemon in a job's fan-out allocates
/// span ids independently, and a cross-node span tree is stitched by
/// matching `parent` against span ids from *other* processes — bare
/// per-process counters would collide (every process starts at 1) and
/// make that stitching ambiguous.
pub fn next_span_id() -> u64 {
    ((std::process::id() as u64) << 32) | (NEXT_SPAN.fetch_add(1, Ordering::Relaxed) & 0xffff_ffff)
}

/// One process's observability bundle: a metrics [`Registry`], a span
/// [`TraceRing`], and a monotonic epoch for span timestamps.
#[derive(Debug, Clone)]
pub struct Obs {
    registry: Arc<Registry>,
    ring: Arc<TraceRing>,
    epoch: Instant,
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}

impl Obs {
    /// A bundle over a fresh registry and a default-capacity ring.
    pub fn new() -> Self {
        Self::with_registry(Arc::new(Registry::new()))
    }

    /// A bundle over an existing registry (so e.g. `IoStats` counters
    /// and RPC metrics land in the same `MetricsDump`).
    pub fn with_registry(registry: Arc<Registry>) -> Self {
        Self {
            registry,
            ring: Arc::new(TraceRing::default()),
            epoch: Instant::now(),
        }
    }

    /// The shared metrics registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The shared span ring.
    pub fn ring(&self) -> &Arc<TraceRing> {
        &self.ring
    }

    /// Monotonic nanoseconds since this bundle was created.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_cells_across_clones() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(reg.counter("x").get(), 4);
        let g = reg.gauge("g");
        g.set(17);
        assert_eq!(reg.gauge("g").get(), 17);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.gauge("m");
        reg.counter("m");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 900, 1000, 1100, 1_000_000] {
            h.observe(v);
        }
        let (count, sum, buckets) = h.snapshot();
        assert_eq!(count, 8);
        assert_eq!(sum, 1_003_006);
        assert_eq!(buckets.iter().sum::<u64>(), 8);
        // p50 lands on the 4th observation (value 3, bucket bound 4);
        // p99 lands at the 1M observation (bucket bound 2^20).
        assert_eq!(h.quantile(0.5), 4);
        assert_eq!(h.quantile(0.99), 1 << 20);
        assert_eq!(quantile_from_buckets(&[], 0.5), 0);
    }

    #[test]
    fn registry_snapshot_is_sorted_by_name() {
        let reg = Registry::new();
        reg.counter("b").inc();
        reg.counter("a").add(2);
        reg.histogram("c").observe(5);
        let snap = reg.snapshot();
        let names: Vec<_> = snap.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert_eq!(snap[0].value, MetricValue::Counter(2));
    }

    #[test]
    fn ring_bounds_evict_oldest_and_seqs_keep_rising() {
        let ring = TraceRing::with_capacity(2);
        let span = |n: u64| SpanRecord {
            job: 1,
            span: n,
            parent: 0,
            op: "op".into(),
            peer: String::new(),
            start_ns: 0,
            end_ns: 1,
            bytes: 0,
            outcome: "ok".into(),
        };
        for n in 0..5 {
            ring.record(span(n));
        }
        let all = ring.since(0);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, 3);
        assert_eq!(all[1].0, 4);
        assert_eq!(ring.next_seq(), 5);
        assert_eq!(ring.since(5).len(), 0);
    }

    #[test]
    fn wrapped_ring_reports_the_readers_gap() {
        let ring = TraceRing::with_capacity(3);
        let span = |n: u64| SpanRecord {
            job: 1,
            span: n,
            parent: 0,
            op: "op".into(),
            peer: String::new(),
            start_ns: 0,
            end_ns: 1,
            bytes: 0,
            outcome: "ok".into(),
        };
        // Nothing recorded: no gap whatever the cursor.
        assert_eq!(ring.since_with_gap(0).1, 0);
        for n in 0..10 {
            ring.record(span(n));
        }
        // Seqs 0..7 were evicted; a reader parked at 0 lost 7 records.
        let (spans, gap) = ring.since_with_gap(0);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].0, 7);
        assert_eq!(gap, 7);
        assert_eq!(ring.dropped_total(), 7);
        // A reader inside the retained window sees no gap.
        assert_eq!(ring.since_with_gap(8).1, 0);
        // A reader parked at next_seq sees no gap and no spans.
        let (spans, gap) = ring.since_with_gap(10);
        assert!(spans.is_empty());
        assert_eq!(gap, 0);
        // A drained-then-wrapped reader: cursor 5, everything up to 7
        // evicted — the two records 5 and 6 are gone.
        assert_eq!(ring.since_with_gap(5).1, 2);
    }

    #[test]
    fn span_ids_are_pid_salted_for_fleet_uniqueness() {
        let a = next_span_id();
        let b = next_span_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert_eq!(a >> 32, std::process::id() as u64);
    }

    #[test]
    fn jsonl_sink_writes_one_escaped_line_per_span() {
        let dir = std::env::temp_dir().join(format!("pangea-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let _ = std::fs::remove_file(&path);
        let ring = TraceRing::with_capacity(8);
        ring.set_jsonl_sink(&path).unwrap();
        ring.record(SpanRecord {
            job: 7,
            span: 1,
            parent: 0,
            op: "TaskRun".into(),
            peer: "127.0.0.1:1\"quote".into(),
            start_ns: 10,
            end_ns: 20,
            bytes: 3,
            outcome: "ok".into(),
        });
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"job\":7"));
        assert!(text.contains("\\\"quote"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = next_job_id();
        let b = next_job_id();
        assert_ne!(a, b);
        assert_ne!(next_span_id(), 0);
        assert_eq!(a >> 32, std::process::id() as u64);
    }
}
