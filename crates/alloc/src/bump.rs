//! Sequential (bump) allocator.
//!
//! Backs the sequential-write service (paper §8): "a worker first needs to
//! configure the locality set to use a sequential allocator to allocate
//! bytes from the page's host memory sequentially". Allocation is a pointer
//! bump; individual frees are unsupported — the whole region is reclaimed at
//! once, which is exactly the paper's observation about why Pangea deletes
//! data so cheaply ("we can deallocate data belonging to the same block at
//! once", §9.2.1).

/// A bump allocator over `[0, capacity)`.
#[derive(Debug, Clone)]
pub struct BumpAllocator {
    capacity: usize,
    cursor: usize,
}

impl BumpAllocator {
    /// Creates a bump allocator for a region of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            cursor: 0,
        }
    }

    /// Allocates `size` bytes, returning the offset, or `None` if the region
    /// is exhausted.
    #[inline]
    pub fn alloc(&mut self, size: usize) -> Option<usize> {
        if size == 0 || self.cursor + size > self.capacity {
            return None;
        }
        let off = self.cursor;
        self.cursor += size;
        Some(off)
    }

    /// Bytes handed out so far.
    #[inline]
    pub fn used(&self) -> usize {
        self.cursor
    }

    /// Bytes still available.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.capacity - self.cursor
    }

    /// Total region size.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Reclaims the whole region at once.
    #[inline]
    pub fn reset(&mut self) {
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_is_sequential_and_exact() {
        let mut b = BumpAllocator::new(100);
        assert_eq!(b.alloc(40), Some(0));
        assert_eq!(b.alloc(60), Some(40));
        assert_eq!(b.alloc(1), None);
        assert_eq!(b.used(), 100);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn reset_reclaims_everything() {
        let mut b = BumpAllocator::new(64);
        assert!(b.alloc(64).is_some());
        b.reset();
        assert_eq!(b.alloc(64), Some(0));
    }

    #[test]
    fn zero_size_allocs_are_rejected() {
        let mut b = BumpAllocator::new(8);
        assert_eq!(b.alloc(0), None);
    }
}
