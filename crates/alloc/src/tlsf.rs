//! Two-Level Segregated Fit allocator (Masmano et al., ECRTS 2004).
//!
//! TLSF keeps free blocks in `FL × SL` segregated lists: the first level
//! partitions sizes by power of two, the second level splits each power-of-
//! two range into `SL_COUNT` linear sub-ranges. Both levels are indexed by
//! bitmaps, so finding a fitting block, splitting it, and coalescing on free
//! are all O(1) in the number of blocks.
//!
//! This implementation manages *offsets* in an external arena; block
//! metadata lives in a side table instead of in-band headers, which keeps
//! the allocator 100 % safe Rust. Physical adjacency (for coalescing) is
//! tracked with explicit `prev`/`next` offsets per block.

use crate::PoolAllocator;
use pangea_common::FxHashMap;

/// Allocation granularity and minimum block size. 64 B keeps per-block
/// metadata overhead negligible for page-sized allocations while still
/// serving small in-page requests.
const ALIGN: usize = 64;
/// log2 of `ALIGN`.
const ALIGN_LOG2: u32 = ALIGN.trailing_zeros();
/// Number of second-level subdivisions per first-level class (2^5 = 32).
const SL_LOG2: u32 = 5;
const SL_COUNT: usize = 1 << SL_LOG2;
/// First-level classes cover sizes up to 2^(FL_COUNT + ALIGN_LOG2).
const FL_COUNT: usize = 40;

#[derive(Debug, Clone, Copy)]
struct Block {
    size: usize,
    free: bool,
    /// Offset of the physically previous block, if any.
    prev_phys: Option<usize>,
    /// Offset of the physically next block, if any.
    next_phys: Option<usize>,
}

/// The TLSF allocator. See module docs.
#[derive(Debug)]
pub struct TlsfAllocator {
    capacity: usize,
    used: usize,
    blocks: FxHashMap<usize, Block>,
    /// free_lists[fl][sl] holds offsets of free blocks in that class.
    free_lists: Vec<[Vec<usize>; SL_COUNT]>,
    /// Bitmap of first levels with any free block.
    fl_bitmap: u64,
    /// Per-first-level bitmap of non-empty second-level lists.
    sl_bitmaps: Vec<u32>,
}

/// Maps a size to its (fl, sl) class for *storing* a free block.
#[inline]
fn mapping(size: usize) -> (usize, usize) {
    debug_assert!(size >= ALIGN);
    let fl = (usize::BITS - 1 - size.leading_zeros()) as usize;
    let fl_index = fl - ALIGN_LOG2 as usize;
    // The SL index is taken from the bits just below the leading one.
    let sl = if fl <= (SL_LOG2 + ALIGN_LOG2) as usize {
        // Small sizes: subdivide linearly by ALIGN.
        (size >> ALIGN_LOG2) & (SL_COUNT - 1)
    } else {
        (size >> (fl as u32 - SL_LOG2)) & (SL_COUNT - 1)
    };
    (fl_index.min(FL_COUNT - 1), sl)
}

impl TlsfAllocator {
    /// Creates an allocator managing `[0, capacity)`. Capacity is rounded
    /// down to the alignment granule.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity / ALIGN * ALIGN;
        let mut a = Self {
            capacity,
            used: 0,
            blocks: FxHashMap::default(),
            free_lists: (0..FL_COUNT)
                .map(|_| std::array::from_fn(|_| Vec::new()))
                .collect(),
            fl_bitmap: 0,
            sl_bitmaps: vec![0; FL_COUNT],
        };
        if capacity >= ALIGN {
            a.blocks.insert(
                0,
                Block {
                    size: capacity,
                    free: true,
                    prev_phys: None,
                    next_phys: None,
                },
            );
            a.push_free(0, capacity);
        }
        a
    }

    #[inline]
    fn push_free(&mut self, offset: usize, size: usize) {
        let (fl, sl) = mapping(size);
        self.free_lists[fl][sl].push(offset);
        self.fl_bitmap |= 1 << fl;
        self.sl_bitmaps[fl] |= 1 << sl;
    }

    fn remove_free(&mut self, offset: usize, size: usize) {
        let (fl, sl) = mapping(size);
        let list = &mut self.free_lists[fl][sl];
        let pos = list
            .iter()
            .position(|&o| o == offset)
            .expect("free block missing from its segregated list");
        list.swap_remove(pos);
        if list.is_empty() {
            self.sl_bitmaps[fl] &= !(1 << sl);
            if self.sl_bitmaps[fl] == 0 {
                self.fl_bitmap &= !(1 << fl);
            }
        }
    }

    /// Finds a free list guaranteed to hold blocks of at least `size`.
    fn find_fit(&self, size: usize) -> Option<(usize, usize)> {
        let (fl, sl) = mapping(size);
        // Within the same fl, only strictly-larger sl classes are guaranteed
        // to fit (blocks in (fl, sl) itself may be smaller than `size`).
        let sl_mask = if sl + 1 >= SL_COUNT {
            0
        } else {
            self.sl_bitmaps[fl] & !((1u32 << (sl + 1)) - 1)
        };
        if sl_mask != 0 {
            return Some((fl, sl_mask.trailing_zeros() as usize));
        }
        // Otherwise take the smallest block from any higher fl class.
        let fl_mask = self.fl_bitmap & !((1u64 << (fl + 1)) - 1);
        if fl_mask == 0 {
            // Fall back to exact-class search: a block in (fl, sl) might
            // still fit exactly.
            let list = &self.free_lists[fl][sl];
            if list.iter().any(|&o| self.blocks[&o].size >= size) {
                return Some((fl, sl));
            }
            return None;
        }
        let fl2 = fl_mask.trailing_zeros() as usize;
        let sl2 = self.sl_bitmaps[fl2].trailing_zeros() as usize;
        Some((fl2, sl2))
    }
}

impl PoolAllocator for TlsfAllocator {
    fn alloc(&mut self, size: usize) -> Option<usize> {
        if size == 0 {
            return None;
        }
        let size = size.div_ceil(ALIGN) * ALIGN;
        if size > self.capacity {
            return None;
        }
        let (fl, sl) = self.find_fit(size)?;
        // Pick a block from the class that actually fits (classes can hold a
        // small size range, so verify).
        let offset = {
            let list = &self.free_lists[fl][sl];
            *list.iter().find(|&&o| self.blocks[&o].size >= size)?
        };
        let block = self.blocks[&offset];
        debug_assert!(block.free);
        self.remove_free(offset, block.size);

        let remainder = block.size - size;
        if remainder >= ALIGN {
            // Split: [offset, offset+size) allocated, tail stays free.
            let tail_off = offset + size;
            let tail = Block {
                size: remainder,
                free: true,
                prev_phys: Some(offset),
                next_phys: block.next_phys,
            };
            if let Some(next) = block.next_phys {
                self.blocks.get_mut(&next).unwrap().prev_phys = Some(tail_off);
            }
            self.blocks.insert(tail_off, tail);
            self.push_free(tail_off, remainder);
            let b = self.blocks.get_mut(&offset).unwrap();
            b.size = size;
            b.free = false;
            b.next_phys = Some(tail_off);
            self.used += size;
        } else {
            let b = self.blocks.get_mut(&offset).unwrap();
            b.free = false;
            self.used += block.size;
        }
        Some(offset)
    }

    fn free(&mut self, offset: usize) {
        let block = *self.blocks.get(&offset).expect("free() of unknown offset");
        assert!(!block.free, "double free at offset {offset}");
        self.used -= block.size;

        let mut start = offset;
        let mut size = block.size;
        let mut prev_phys = block.prev_phys;
        let mut next_phys = block.next_phys;

        // Coalesce with the physically previous block if it is free.
        if let Some(prev_off) = block.prev_phys {
            let prev = self.blocks[&prev_off];
            if prev.free {
                self.remove_free(prev_off, prev.size);
                self.blocks.remove(&start);
                start = prev_off;
                size += prev.size;
                prev_phys = prev.prev_phys;
            }
        }
        // Coalesce with the physically next block if it is free.
        if let Some(next_off) = next_phys {
            let next = self.blocks[&next_off];
            if next.free {
                self.remove_free(next_off, next.size);
                self.blocks.remove(&next_off);
                size += next.size;
                next_phys = next.next_phys;
            }
        }
        if let Some(n) = next_phys {
            self.blocks.get_mut(&n).unwrap().prev_phys = Some(start);
        }
        self.blocks.insert(
            start,
            Block {
                size,
                free: true,
                prev_phys,
                next_phys,
            },
        );
        self.push_free(start, size);
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn used(&self) -> usize {
        self.used
    }

    fn largest_free_block(&self) -> usize {
        let mut best = 0;
        let mut fl_bits = self.fl_bitmap;
        while fl_bits != 0 {
            let fl = 63 - fl_bits.leading_zeros() as usize;
            for sl in (0..SL_COUNT).rev() {
                if self.sl_bitmaps[fl] & (1 << sl) != 0 {
                    for &o in &self.free_lists[fl][sl] {
                        best = best.max(self.blocks[&o].size);
                    }
                }
            }
            if best > 0 {
                // Highest fl class holds the largest blocks; done.
                return best;
            }
            fl_bits &= !(1 << fl);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_invariants(a: &TlsfAllocator) {
        // Walk the physical chain from offset 0; blocks must tile the arena.
        if a.capacity == 0 {
            return;
        }
        let mut off = 0usize;
        let mut total = 0usize;
        let mut used = 0usize;
        let mut prev: Option<usize> = None;
        loop {
            let b = a.blocks.get(&off).expect("broken physical chain");
            assert_eq!(b.prev_phys, prev, "prev link broken at {off}");
            total += b.size;
            if !b.free {
                used += b.size;
            }
            prev = Some(off);
            match b.next_phys {
                Some(n) => {
                    assert_eq!(n, off + b.size, "next link not adjacent at {off}");
                    off = n;
                }
                None => break,
            }
        }
        assert_eq!(total, a.capacity, "blocks must tile the arena");
        assert_eq!(used, a.used, "used-bytes accounting drifted");
    }

    #[test]
    fn simple_alloc_free_cycle() {
        let mut a = TlsfAllocator::new(1 << 20);
        let x = a.alloc(1000).unwrap();
        let y = a.alloc(2000).unwrap();
        assert_ne!(x, y);
        check_invariants(&a);
        a.free(x);
        check_invariants(&a);
        a.free(y);
        check_invariants(&a);
        assert_eq!(a.used(), 0);
        assert_eq!(a.largest_free_block(), a.capacity());
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut a = TlsfAllocator::new(1 << 20);
        let mut spans: Vec<(usize, usize)> = Vec::new();
        for size in [100usize, 4096, 64, 333, 8192, 1, 65, 5000] {
            let off = a.alloc(size).unwrap();
            for &(o, s) in &spans {
                assert!(
                    off + size <= o || o + s <= off,
                    "overlap: [{off},{}) vs [{o},{})",
                    off + size,
                    o + s
                );
            }
            spans.push((off, size));
        }
        check_invariants(&a);
    }

    #[test]
    fn exhaustion_returns_none_not_panic() {
        let mut a = TlsfAllocator::new(4096);
        let mut got = Vec::new();
        while let Some(o) = a.alloc(512) {
            got.push(o);
        }
        assert_eq!(got.len(), 8);
        assert!(a.alloc(64).is_none());
        for o in got {
            a.free(o);
        }
        assert_eq!(a.used(), 0);
        check_invariants(&a);
    }

    #[test]
    fn coalescing_reassembles_the_arena() {
        let mut a = TlsfAllocator::new(1 << 16);
        let offs: Vec<usize> = (0..16).map(|_| a.alloc(4096).unwrap()).collect();
        // Free in an interleaved order to exercise both merge directions.
        for &o in offs.iter().step_by(2) {
            a.free(o);
        }
        for &o in offs.iter().skip(1).step_by(2) {
            a.free(o);
        }
        check_invariants(&a);
        assert_eq!(a.largest_free_block(), a.capacity());
        // The whole arena must be allocatable as one block again.
        let big = a.alloc(a.capacity()).unwrap();
        assert_eq!(big, 0);
    }

    #[test]
    fn zero_and_oversized_requests_fail_cleanly() {
        let mut a = TlsfAllocator::new(4096);
        assert!(a.alloc(0).is_none());
        assert!(a.alloc(8192).is_none());
        assert!(a.alloc(4096).is_some());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = TlsfAllocator::new(4096);
        let o = a.alloc(64).unwrap();
        a.free(o);
        a.free(o);
    }

    #[test]
    fn reuse_prefers_freed_space() {
        let mut a = TlsfAllocator::new(1 << 16);
        let first = a.alloc(1 << 15).unwrap();
        let _second = a.alloc(1 << 14).unwrap();
        a.free(first);
        // A same-size request must fit again (no leak of the freed range).
        let again = a.alloc(1 << 15).unwrap();
        assert_eq!(again, first);
    }

    #[test]
    fn variable_sizes_fill_most_of_arena() {
        // TLSF's selling point in the paper: space efficiency for
        // variable-sized pages. Check fill ratio ≥ 90 % for a mixed load.
        let mut a = TlsfAllocator::new(1 << 22);
        let sizes = [64 * 1024, 17 * 1024, 4096, 256 * 1024, 1024, 96 * 1024];
        let mut i = 0;
        let mut allocated = 0usize;
        while let Some(_o) = a.alloc(sizes[i % sizes.len()]) {
            allocated += sizes[i % sizes.len()];
            i += 1;
        }
        assert!(
            allocated as f64 >= 0.90 * a.capacity() as f64,
            "fill ratio too low: {} of {}",
            allocated,
            a.capacity()
        );
        check_invariants(&a);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn random_alloc_free_holds_invariants(
                ops in proptest::collection::vec((any::<bool>(), 1usize..32 * 1024), 1..200)
            ) {
                let mut a = TlsfAllocator::new(1 << 20);
                let mut live: Vec<usize> = Vec::new();
                for (do_alloc, size) in ops {
                    if do_alloc || live.is_empty() {
                        if let Some(off) = a.alloc(size) {
                            live.push(off);
                        }
                    } else {
                        let idx = size % live.len();
                        let off = live.swap_remove(idx);
                        a.free(off);
                    }
                    check_invariants(&a);
                }
                for off in live {
                    a.free(off);
                }
                check_invariants(&a);
                prop_assert_eq!(a.used(), 0);
                prop_assert_eq!(a.largest_free_block(), a.capacity());
            }
        }
    }
}
