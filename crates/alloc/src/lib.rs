//! # pangea-alloc
//!
//! Offset-based pool allocators for Pangea's shared-memory buffer pool and
//! its in-page data structures.
//!
//! The paper (§5) manages each node's RAM as one large shared-memory region
//! and carves variable-sized pages out of it with a pool allocator. Two
//! allocators are supported, exactly as in the paper:
//!
//! * the **two-level segregated fit (TLSF)** allocator — the default,
//!   "because it is more space-efficient for allocating variable-sized pages
//!   from the shared memory", and
//! * the **Memcached slab allocator** — also reused as the *secondary* data
//!   allocator inside hash-service pages (§8), where each page hosts an
//!   independent hash table whose entries are slab-allocated from the page's
//!   own memory.
//!
//! A third, trivial allocator — the **sequential (bump) allocator** — backs
//! the sequential-write service (§8).
//!
//! All allocators here hand out *offsets* into an arena they do not own.
//! Keeping the metadata in side tables (instead of headers inside the arena)
//! costs a little memory but keeps the allocators safe Rust and lets the same
//! implementation manage a buffer-pool arena, a single page, or a simulated
//! off-heap region.

pub mod bump;
pub mod slab;
pub mod tlsf;

pub use bump::BumpAllocator;
pub use slab::SlabAllocator;
pub use tlsf::TlsfAllocator;

/// A pool allocator that places variable-sized blocks inside an arena
/// `[0, capacity)` and can release them again.
///
/// The buffer pool is generic over this trait so TLSF and slab allocation
/// can be compared (paper §5 discusses both).
pub trait PoolAllocator: Send + std::fmt::Debug {
    /// Allocates `size` bytes, returning the block's offset, or `None` when
    /// the arena cannot satisfy the request.
    fn alloc(&mut self, size: usize) -> Option<usize>;

    /// Frees the block previously returned at `offset`.
    ///
    /// # Panics
    /// Implementations panic on double-free or on offsets they never
    /// handed out — these are internal-logic errors, never data errors.
    fn free(&mut self, offset: usize);

    /// Total arena size in bytes.
    fn capacity(&self) -> usize;

    /// Bytes currently allocated (including internal rounding).
    fn used(&self) -> usize;

    /// Largest single allocation that could currently succeed.
    ///
    /// Used by the paging system to decide whether more eviction is needed
    /// before retrying an allocation.
    fn largest_free_block(&self) -> usize;
}

/// Picks between the two buffer-pool allocators by name.
///
/// `"tlsf"` (the default) or `"slab"`, mirroring the paper's configuration
/// choice.
pub fn allocator_by_name(
    name: &str,
    capacity: usize,
) -> pangea_common::Result<Box<dyn PoolAllocator>> {
    match name {
        "tlsf" => Ok(Box::new(TlsfAllocator::new(capacity))),
        "slab" => Ok(Box::new(SlabAllocator::new(capacity))),
        other => Err(pangea_common::PangeaError::config(format!(
            "unknown allocator '{other}' (expected 'tlsf' or 'slab')"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_by_name_selects_and_rejects() {
        assert!(allocator_by_name("tlsf", 1 << 16).is_ok());
        assert!(allocator_by_name("slab", 1 << 16).is_ok());
        assert!(allocator_by_name("jemalloc", 1 << 16).is_err());
    }
}
