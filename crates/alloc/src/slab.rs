//! Memcached-style slab allocator.
//!
//! Sizes are rounded up to a geometric ladder of *size classes* (growth
//! factor 1.25, like memcached's default). The arena is carved into chunks
//! lazily from a high-water mark; freed chunks go onto a per-class free list
//! and are only ever reused for the same class. This trades internal
//! fragmentation for completely predictable, compaction-free behaviour —
//! which is why the paper uses it as the secondary allocator inside
//! hash-service pages (§8): all allocations for one hash partition stay
//! bounded to the page hosting it.

use crate::PoolAllocator;
use pangea_common::FxHashMap;

/// Smallest size class, matching the TLSF granule.
const MIN_CLASS: usize = 64;
/// Geometric growth factor between classes (memcached's default).
const GROWTH: f64 = 1.25;

/// Builds the class ladder up to (and including one class ≥) `max`.
fn build_classes(max: usize) -> Vec<usize> {
    let mut classes = Vec::new();
    let mut c = MIN_CLASS;
    while c < max {
        classes.push(c);
        // Round each class to 8 bytes to keep chunks aligned.
        let next = ((c as f64 * GROWTH) as usize).div_ceil(8) * 8;
        c = next.max(c + 8);
    }
    classes.push(max.max(MIN_CLASS));
    classes
}

/// The slab allocator. See module docs.
#[derive(Debug)]
pub struct SlabAllocator {
    capacity: usize,
    /// High-water mark for carving fresh chunks.
    brk: usize,
    used: usize,
    classes: Vec<usize>,
    /// Free chunks per class index.
    free: Vec<Vec<usize>>,
    /// Class index of every live allocation (needed by `free`).
    live: FxHashMap<usize, usize>,
}

impl SlabAllocator {
    /// Creates a slab allocator managing `[0, capacity)`.
    pub fn new(capacity: usize) -> Self {
        let classes = build_classes(capacity.max(MIN_CLASS));
        let n = classes.len();
        Self {
            capacity,
            brk: 0,
            used: 0,
            classes,
            free: vec![Vec::new(); n],
            live: FxHashMap::default(),
        }
    }

    /// Index of the smallest class that fits `size`.
    fn class_for(&self, size: usize) -> Option<usize> {
        self.classes.iter().position(|&c| c >= size)
    }

    /// The size classes in use (exposed for tests and reporting).
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }
}

impl PoolAllocator for SlabAllocator {
    fn alloc(&mut self, size: usize) -> Option<usize> {
        if size == 0 || size > self.capacity {
            return None;
        }
        let ci = self.class_for(size)?;
        let chunk = self.classes[ci];
        let offset = if let Some(off) = self.free[ci].pop() {
            off
        } else {
            if self.brk + chunk > self.capacity {
                return None;
            }
            let off = self.brk;
            self.brk += chunk;
            off
        };
        self.used += chunk;
        self.live.insert(offset, ci);
        Some(offset)
    }

    fn free(&mut self, offset: usize) {
        let ci = self
            .live
            .remove(&offset)
            .unwrap_or_else(|| panic!("double free or unknown offset {offset}"));
        self.used -= self.classes[ci];
        self.free[ci].push(offset);
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn used(&self) -> usize {
        self.used
    }

    fn largest_free_block(&self) -> usize {
        let tail = self.capacity - self.brk;
        let recycled = self
            .free
            .iter()
            .zip(&self.classes)
            .rev()
            .find(|(list, _)| !list.is_empty())
            .map(|(_, &c)| c)
            .unwrap_or(0);
        tail.max(recycled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_ladder_is_geometric_and_monotonic() {
        let a = SlabAllocator::new(1 << 20);
        let classes = a.classes();
        assert_eq!(classes[0], MIN_CLASS);
        for w in classes.windows(2) {
            assert!(w[1] > w[0]);
            // growth ratio never exceeds ~1.3 (1.25 plus rounding)
            assert!(
                (w[1] as f64) / (w[0] as f64) < 1.35,
                "gap too big: {} -> {}",
                w[0],
                w[1]
            );
        }
        assert!(*classes.last().unwrap() >= 1 << 20);
    }

    #[test]
    fn same_class_reuses_freed_chunks() {
        let mut a = SlabAllocator::new(1 << 16);
        let x = a.alloc(100).unwrap();
        a.free(x);
        let y = a.alloc(101).unwrap(); // same 128-ish class
        assert_eq!(x, y, "freed chunk should be recycled for its class");
    }

    #[test]
    fn different_classes_never_share_chunks() {
        let mut a = SlabAllocator::new(1 << 16);
        let x = a.alloc(64).unwrap();
        a.free(x);
        let big = a.alloc(4000).unwrap();
        assert_ne!(x, big, "a big alloc must not reuse a small chunk");
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut a = SlabAllocator::new(1 << 18);
        let mut spans = Vec::new();
        for size in [64usize, 100, 200, 64, 1000, 5000, 100] {
            let off = a.alloc(size).unwrap();
            let chunk = a.classes()[a.class_for(size).unwrap()];
            for &(o, s) in &spans {
                assert!(off + chunk <= o || o + s <= off, "overlap at {off}");
            }
            spans.push((off, chunk));
        }
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = SlabAllocator::new(1024);
        let mut n = 0;
        while a.alloc(64).is_some() {
            n += 1;
        }
        assert_eq!(n, 16);
        assert!(a.alloc(64).is_none());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = SlabAllocator::new(4096);
        let o = a.alloc(64).unwrap();
        a.free(o);
        a.free(o);
    }

    #[test]
    fn memcached_beats_naive_on_small_string_churn() {
        // The paper's Table 4 argument: slab allocation has better memory
        // utilization for small key-value records than a general allocator
        // doing per-object malloc. Here we just verify the slab survives a
        // churn of mixed small sizes without losing capacity to external
        // fragmentation: after freeing everything, a full-class refill works.
        let mut a = SlabAllocator::new(1 << 16);
        let mut live = Vec::new();
        for i in 0..400 {
            if let Some(o) = a.alloc(24 + (i % 5) * 10) {
                live.push(o);
            }
        }
        for o in live.drain(..) {
            a.free(o);
        }
        let mut n = 0;
        while a.alloc(64).is_some() {
            n += 1;
            if n > 2048 {
                break;
            }
        }
        assert!(n >= 400, "chunks lost to churn: only {n} re-allocatable");
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn accounting_never_drifts(
                ops in proptest::collection::vec((any::<bool>(), 1usize..8192), 1..200)
            ) {
                let mut a = SlabAllocator::new(1 << 18);
                let mut live: Vec<usize> = Vec::new();
                for (do_alloc, size) in ops {
                    if do_alloc || live.is_empty() {
                        if let Some(off) = a.alloc(size) {
                            live.push(off);
                        }
                    } else {
                        let off = live.swap_remove(size % live.len());
                        a.free(off);
                    }
                    prop_assert!(a.used() <= a.capacity());
                }
                for off in live {
                    a.free(off);
                }
                prop_assert_eq!(a.used(), 0);
            }
        }
    }
}
