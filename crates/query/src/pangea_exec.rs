//! The Pangea-based relational query processor (paper §9.1.2, Table 2).
//!
//! Tables live as distributed locality sets with **heterogeneous
//! replicas** (paper §7): `lineitem` has replicas partitioned by
//! orderkey and partkey, `orders` by orderkey and custkey, and `part`
//! by partkey. Before each join the scheduler consults the manager's
//! statistics database ([`pangea_cluster::Manager::best_replica`]) and,
//! when a co-partitioned replica pair exists, pipelines the join locally
//! on every node — no query-time repartitioning, which is where the
//! Fig. 5 speedups over Spark come from.
//!
//! Joins use the core join-map service; query-time repartitioning (only
//! needed for `customer` in Q13/Q22) uses the cluster dispatcher.

use crate::dbgen::TpchData;
use crate::exec::{canonical, params::*, QueryId, QueryResult};
use crate::schema::*;
use pangea_cluster::{PartitionScheme, SimCluster};
use pangea_common::{FxHashMap, FxHashSet, NodeId, PangeaError, Result};
use pangea_core::{JoinMap, JoinMapBuilder, LocalitySet, ObjectIter};

/// Extracts pipe-delimited field `idx` as the partitioning key.
fn key_field(idx: usize) -> impl Fn(&[u8]) -> Vec<u8> + Send + Sync + 'static {
    move |rec: &[u8]| field(rec, idx).to_vec()
}

/// Scans one node-local locality set, streaming records to `f`.
fn scan_local(set: &LocalitySet, mut f: impl FnMut(&[u8]) -> Result<()>) -> Result<()> {
    for num in set.page_numbers() {
        let pin = set.pin_page(num)?;
        let mut it = ObjectIter::new(&pin);
        while let Some(rec) = it.next() {
            f(rec)?;
        }
    }
    Ok(())
}

/// Builds a node-local join map from a local set partition, keyed by
/// field `key_idx` (the paper's "build partitioned hash map" component).
fn local_join_map(
    set: &LocalitySet,
    map_name: &str,
    key_idx: usize,
    mut filter: impl FnMut(&[u8]) -> bool,
) -> Result<JoinMap> {
    let mut builder = JoinMapBuilder::new(set.node(), map_name)?;
    scan_local(set, |rec| {
        if filter(rec) {
            builder.insert(field(rec, key_idx), rec)?;
        }
        Ok(())
    })?;
    builder.build()
}

/// TPC-H running on Pangea.
#[derive(Debug, Clone)]
pub struct PangeaTpch {
    cluster: SimCluster,
    partitions: u32,
}

impl PangeaTpch {
    /// Loads the generated database into the cluster: base tables are
    /// randomly dispatched; the paper's replicas are registered
    /// (`lineitem` × {orderkey, partkey}, `orders` × {orderkey, custkey},
    /// `part` × {partkey}).
    pub fn load(cluster: &SimCluster, data: &TpchData) -> Result<Self> {
        let partitions = cluster.num_nodes() * 2;
        let engine = Self {
            cluster: cluster.clone(),
            partitions,
        };
        engine.load_table("lineitem", data.lineitem.iter().map(|r| r.to_line()))?;
        engine.load_table("orders", data.orders.iter().map(|r| r.to_line()))?;
        engine.load_table("customer", data.customer.iter().map(|r| r.to_line()))?;
        engine.load_table("part", data.part.iter().map(|r| r.to_line()))?;
        engine.load_table("supplier", data.supplier.iter().map(|r| r.to_line()))?;
        engine.load_table("partsupp", data.partsupp.iter().map(|r| r.to_line()))?;
        engine.load_table("nation", data.nation.iter().map(|r| r.to_line()))?;
        engine.load_table("region", data.region.iter().map(|r| r.to_line()))?;
        // Heterogeneous replicas (paper §9.1.2).
        let p = partitions;
        cluster.register_replica(
            "lineitem",
            "lineitem_ok",
            PartitionScheme::hash("orderkey", p, key_field(0)),
        )?;
        cluster.register_replica(
            "lineitem",
            "lineitem_pk",
            PartitionScheme::hash("partkey", p, key_field(1)),
        )?;
        cluster.register_replica(
            "orders",
            "orders_ok",
            PartitionScheme::hash("orderkey", p, key_field(0)),
        )?;
        cluster.register_replica(
            "orders",
            "orders_ck",
            PartitionScheme::hash("custkey", p, key_field(1)),
        )?;
        cluster.register_replica(
            "part",
            "part_pk",
            PartitionScheme::hash("partkey", p, key_field(0)),
        )?;
        // The remaining tables get one keyed replica each: recoverable
        // after node failure (paper §7) and, for `customer`, co-
        // partitioned with `orders_ck` so Q13/Q22 need no query-time
        // repartitioning at all.
        cluster.register_replica(
            "customer",
            "customer_ck",
            PartitionScheme::hash("custkey", p, key_field(0)),
        )?;
        cluster.register_replica(
            "supplier",
            "supplier_sk",
            PartitionScheme::hash("suppkey", p, key_field(0)),
        )?;
        cluster.register_replica(
            "partsupp",
            "partsupp_pk",
            PartitionScheme::hash("partkey", p, key_field(0)),
        )?;
        cluster.register_replica(
            "nation",
            "nation_nk",
            PartitionScheme::hash("nationkey", p, key_field(0)),
        )?;
        cluster.register_replica(
            "region",
            "region_rk",
            PartitionScheme::hash("regionkey", p, key_field(0)),
        )?;
        Ok(engine)
    }

    fn load_table(&self, name: &str, rows: impl Iterator<Item = Vec<u8>>) -> Result<()> {
        let set = self
            .cluster
            .create_dist_set(name, PartitionScheme::round_robin(self.partitions))?;
        let mut d = set.loader()?;
        for row in rows {
            d.dispatch(&row)?;
        }
        d.finish()
    }

    /// The owning cluster.
    pub fn cluster(&self) -> &SimCluster {
        &self.cluster
    }

    /// The query scheduler's replica choice: the group member organized
    /// by `key`, or the base table when none exists (paper §9.1.2: "the
    /// query scheduler recognizes this by comparing the available
    /// partition schemes [...] through the statistics service").
    pub fn replica_for(&self, table: &str, key: &str) -> String {
        self.cluster
            .manager()
            .best_replica(table, key)
            .unwrap_or_else(|| table.to_string())
    }

    fn local(&self, set_name: &str, node: NodeId) -> Result<LocalitySet> {
        self.cluster
            .get_dist_set(set_name)
            .ok_or_else(|| PangeaError::usage(format!("unknown set '{set_name}'")))?
            .local(node)
    }

    /// Runs one query by id.
    pub fn run(&self, q: QueryId) -> Result<QueryResult> {
        match q {
            QueryId::Q01 => self.q01(),
            QueryId::Q02 => self.q02(),
            QueryId::Q04 => self.q04(),
            QueryId::Q06 => self.q06(),
            QueryId::Q12 => self.q12(),
            QueryId::Q13 => self.q13(),
            QueryId::Q14 => self.q14(),
            QueryId::Q17 => self.q17(),
            QueryId::Q22 => self.q22(),
        }
    }

    /// Q01 — pricing summary: scan `lineitem`, aggregate by
    /// (returnflag, linestatus).
    pub fn q01(&self) -> Result<QueryResult> {
        let mut groups: FxHashMap<(u8, u8), (i64, i64, i64, u64)> = FxHashMap::default();
        for node in self.cluster.alive_nodes() {
            let set = self.local("lineitem", node)?;
            scan_local(&set, |rec| {
                let li = LineItem::from_line(rec)?;
                if li.l_shipdate <= Q01_SHIPDATE_MAX {
                    let g = groups
                        .entry((li.l_returnflag, li.l_linestatus))
                        .or_default();
                    g.0 += li.l_quantity;
                    g.1 += li.l_extendedprice;
                    g.2 += li.l_extendedprice * (10_000 - li.l_discount);
                    g.3 += 1;
                }
                Ok(())
            })?;
        }
        Ok(canonical(
            groups
                .into_iter()
                .map(|((f, s), (qty, base, disc, cnt))| {
                    vec![
                        RETURN_FLAGS[f as usize].to_string(),
                        LINE_STATUS[s as usize].to_string(),
                        qty.to_string(),
                        base.to_string(),
                        disc.to_string(),
                        cnt.to_string(),
                    ]
                })
                .collect(),
        ))
    }

    /// Q02 — minimum-cost supplier over the dimension tables.
    pub fn q02(&self) -> Result<QueryResult> {
        // Nations in the target region.
        let mut nations: FxHashSet<i64> = FxHashSet::default();
        self.cluster
            .get_dist_set("nation")
            .expect("loaded")
            .try_for_each_record(|_, rec| {
                let n = Nation::from_line(rec)?;
                if n.n_regionkey == Q02_REGION {
                    nations.insert(n.n_nationkey);
                }
                Ok(())
            })?;
        // Suppliers in those nations.
        let mut suppliers: FxHashMap<i64, i64> = FxHashMap::default(); // suppkey → acctbal
        self.cluster
            .get_dist_set("supplier")
            .expect("loaded")
            .try_for_each_record(|_, rec| {
                let s = Supplier::from_line(rec)?;
                if nations.contains(&s.s_nationkey) {
                    suppliers.insert(s.s_suppkey, s.s_acctbal);
                }
                Ok(())
            })?;
        // Target parts.
        let mut parts: FxHashSet<i64> = FxHashSet::default();
        self.cluster
            .get_dist_set("part")
            .expect("loaded")
            .try_for_each_record(|_, rec| {
                let p = Part::from_line(rec)?;
                if p.p_size == Q02_SIZE && p.p_type % Q02_TYPE_MOD == 0 {
                    parts.insert(p.p_partkey);
                }
                Ok(())
            })?;
        // Min supply cost per part among qualifying suppliers.
        let mut best: FxHashMap<i64, (i64, i64)> = FxHashMap::default(); // part → (cost, supp)
        self.cluster
            .get_dist_set("partsupp")
            .expect("loaded")
            .try_for_each_record(|_, rec| {
                let ps = PartSupp::from_line(rec)?;
                if parts.contains(&ps.ps_partkey) && suppliers.contains_key(&ps.ps_suppkey) {
                    let e = best
                        .entry(ps.ps_partkey)
                        .or_insert((ps.ps_supplycost, ps.ps_suppkey));
                    if (ps.ps_supplycost, ps.ps_suppkey) < *e {
                        *e = (ps.ps_supplycost, ps.ps_suppkey);
                    }
                }
                Ok(())
            })?;
        Ok(canonical(
            best.into_iter()
                .map(|(part, (cost, supp))| {
                    vec![
                        part.to_string(),
                        supp.to_string(),
                        suppliers[&supp].to_string(),
                        cost.to_string(),
                    ]
                })
                .collect(),
        ))
    }

    /// Q04 — order priority checking: semi-join `orders ⋉ lineitem` on
    /// the co-partitioned orderkey replicas, pipelined per node.
    pub fn q04(&self) -> Result<QueryResult> {
        let li_name = self.replica_for("lineitem", "orderkey");
        let ord_name = self.replica_for("orders", "orderkey");
        let mut counts: FxHashMap<u8, u64> = FxHashMap::default();
        for node in self.cluster.alive_nodes() {
            let li = self.local(&li_name, node)?;
            let map = local_join_map(&li, &format!("q04.map.{node}"), 0, |rec| {
                // exists lineitem with l_commitdate < l_receiptdate
                matches!(
                    (int_field(rec, 10), int_field(rec, 11)),
                    (Ok(commit), Ok(receipt)) if commit < receipt
                )
            })?;
            let orders = self.local(&ord_name, node)?;
            scan_local(&orders, |rec| {
                let o = Order::from_line(rec)?;
                if o.o_orderdate >= Q04_DATE_LO
                    && o.o_orderdate < Q04_DATE_HI
                    && map.contains(field(rec, 0))
                {
                    *counts.entry(o.o_orderpriority).or_default() += 1;
                }
                Ok(())
            })?;
            map.release()?;
        }
        Ok(canonical(
            counts
                .into_iter()
                .map(|(p, c)| vec![ORDER_PRIORITIES[p as usize].to_string(), c.to_string()])
                .collect(),
        ))
    }

    /// Q06 — revenue forecast: scan + filter + sum.
    pub fn q06(&self) -> Result<QueryResult> {
        let mut revenue = 0i64;
        for node in self.cluster.alive_nodes() {
            let set = self.local("lineitem", node)?;
            scan_local(&set, |rec| {
                let li = LineItem::from_line(rec)?;
                if li.l_shipdate >= Q06_DATE_LO
                    && li.l_shipdate < Q06_DATE_HI
                    && li.l_discount >= Q06_DISC_LO
                    && li.l_discount <= Q06_DISC_HI
                    && li.l_quantity < Q06_QTY_MAX
                {
                    revenue += li.l_extendedprice * li.l_discount;
                }
                Ok(())
            })?;
        }
        Ok(vec![vec![revenue.to_string()]])
    }

    /// Q12 — shipping modes vs. priority: join on the orderkey replicas.
    pub fn q12(&self) -> Result<QueryResult> {
        let li_name = self.replica_for("lineitem", "orderkey");
        let ord_name = self.replica_for("orders", "orderkey");
        let mut counts: FxHashMap<u8, (u64, u64)> = FxHashMap::default();
        for node in self.cluster.alive_nodes() {
            let orders = self.local(&ord_name, node)?;
            let map = local_join_map(&orders, &format!("q12.map.{node}"), 0, |_| true)?;
            let li = self.local(&li_name, node)?;
            scan_local(&li, |rec| {
                let l = LineItem::from_line(rec)?;
                if Q12_MODES.contains(&l.l_shipmode)
                    && l.l_commitdate < l.l_receiptdate
                    && l.l_shipdate < l.l_commitdate
                    && l.l_receiptdate >= Q12_DATE_LO
                    && l.l_receiptdate < Q12_DATE_HI
                {
                    map.probe(field(rec, 0), |order_rec| {
                        if let Ok(o) = Order::from_line(order_rec) {
                            let e = counts.entry(l.l_shipmode).or_default();
                            if o.o_orderpriority <= 1 {
                                e.0 += 1; // 1-URGENT / 2-HIGH
                            } else {
                                e.1 += 1;
                            }
                        }
                    });
                }
                Ok(())
            })?;
            map.release()?;
        }
        Ok(canonical(
            counts
                .into_iter()
                .map(|(m, (hi, lo))| {
                    vec![
                        SHIP_MODES[m as usize].to_string(),
                        hi.to_string(),
                        lo.to_string(),
                    ]
                })
                .collect(),
        ))
    }

    /// Q13 — order-count distribution: `orders` read from its custkey
    /// replica; `customer` (40× smaller) repartitioned at query time
    /// through the dispatcher.
    pub fn q13(&self) -> Result<QueryResult> {
        let ord_name = self.replica_for("orders", "custkey");
        let (cust_name, tmp) = self.customers_by_custkey("q13.customer")?;
        let mut distribution: FxHashMap<u64, u64> = FxHashMap::default();
        for node in self.cluster.alive_nodes() {
            // Local per-custkey order counts.
            let mut per_cust: FxHashMap<i64, u64> = FxHashMap::default();
            let orders = self.local(&ord_name, node)?;
            scan_local(&orders, |rec| {
                *per_cust.entry(int_field(rec, 1)?).or_default() += 1;
                Ok(())
            })?;
            let cust = self.local(&cust_name, node)?;
            scan_local(&cust, |rec| {
                let c = Customer::from_line(rec)?;
                let n = per_cust.get(&c.c_custkey).copied().unwrap_or(0);
                *distribution.entry(n).or_default() += 1;
                Ok(())
            })?;
        }
        if let Some(tmp) = tmp {
            self.cluster.drop_dist_set(&tmp)?;
        }
        Ok(canonical(
            distribution
                .into_iter()
                .map(|(orders, custs)| vec![orders.to_string(), custs.to_string()])
                .collect(),
        ))
    }

    /// Q14 — promotion effect: join on the partkey replicas.
    pub fn q14(&self) -> Result<QueryResult> {
        let li_name = self.replica_for("lineitem", "partkey");
        let part_name = self.replica_for("part", "partkey");
        let (mut promo, mut total) = (0i64, 0i64);
        for node in self.cluster.alive_nodes() {
            let parts = self.local(&part_name, node)?;
            let map = local_join_map(&parts, &format!("q14.map.{node}"), 0, |_| true)?;
            let li = self.local(&li_name, node)?;
            scan_local(&li, |rec| {
                let l = LineItem::from_line(rec)?;
                if l.l_shipdate >= Q14_DATE_LO && l.l_shipdate < Q14_DATE_HI {
                    map.probe(field(rec, 1), |part_rec| {
                        if let Ok(p) = Part::from_line(part_rec) {
                            let v = l.l_extendedprice * (10_000 - l.l_discount);
                            total += v;
                            if p.p_type < Q14_PROMO_TYPE_MAX {
                                promo += v;
                            }
                        }
                    });
                }
                Ok(())
            })?;
            map.release()?;
        }
        Ok(vec![vec![promo.to_string(), total.to_string()]])
    }

    /// Q17 — small-quantity-order revenue: both passes are node-local
    /// thanks to the partkey co-partitioning (the paper's 20× query).
    pub fn q17(&self) -> Result<QueryResult> {
        let li_name = self.replica_for("lineitem", "partkey");
        let part_name = self.replica_for("part", "partkey");
        let mut total = 0i64;
        for node in self.cluster.alive_nodes() {
            // Target parts of this node.
            let mut targets: FxHashSet<i64> = FxHashSet::default();
            let parts = self.local(&part_name, node)?;
            scan_local(&parts, |rec| {
                let p = Part::from_line(rec)?;
                if p.p_brand <= Q17_BRAND_MAX && p.p_container == Q17_CONTAINER {
                    targets.insert(p.p_partkey);
                }
                Ok(())
            })?;
            // Pass 1: per-part quantity statistics (local: every line of
            // a part lives on this node).
            let mut stats: FxHashMap<i64, (i64, i64)> = FxHashMap::default();
            let li = self.local(&li_name, node)?;
            scan_local(&li, |rec| {
                let partkey = int_field(rec, 1)?;
                if targets.contains(&partkey) {
                    let qty = int_field(rec, 3)?;
                    let e = stats.entry(partkey).or_default();
                    e.0 += qty;
                    e.1 += 1;
                }
                Ok(())
            })?;
            // Pass 2: sum prices of small-quantity lines
            // (l_quantity < 0.2 × avg ⟺ qty·5·cnt < sum).
            scan_local(&li, |rec| {
                let partkey = int_field(rec, 1)?;
                if let Some(&(sum_qty, cnt)) = stats.get(&partkey) {
                    let qty = int_field(rec, 3)?;
                    if qty * 5 * cnt < sum_qty {
                        total += int_field(rec, 4)?;
                    }
                }
                Ok(())
            })?;
        }
        Ok(vec![vec![total.to_string()]])
    }

    /// Q22 — global sales opportunity: anti-join against the custkey
    /// replica of `orders`.
    pub fn q22(&self) -> Result<QueryResult> {
        // Global average of positive balances among the target codes.
        let (mut sum, mut cnt) = (0i64, 0i64);
        self.cluster
            .get_dist_set("customer")
            .expect("loaded")
            .try_for_each_record(|_, rec| {
                let c = Customer::from_line(rec)?;
                if c.c_acctbal > 0 && Q22_CODES.contains(&c.c_phone_cc) {
                    sum += c.c_acctbal;
                    cnt += 1;
                }
                Ok(())
            })?;
        let ord_name = self.replica_for("orders", "custkey");
        let (cust_name, tmp) = self.customers_by_custkey("q22.customer")?;
        let mut groups: FxHashMap<u8, (u64, i64)> = FxHashMap::default();
        for node in self.cluster.alive_nodes() {
            let mut has_orders: FxHashSet<i64> = FxHashSet::default();
            let orders = self.local(&ord_name, node)?;
            scan_local(&orders, |rec| {
                has_orders.insert(int_field(rec, 1)?);
                Ok(())
            })?;
            let cust = self.local(&cust_name, node)?;
            scan_local(&cust, |rec| {
                let c = Customer::from_line(rec)?;
                if Q22_CODES.contains(&c.c_phone_cc)
                    && c.c_acctbal * cnt > sum
                    && !has_orders.contains(&c.c_custkey)
                {
                    let e = groups.entry(c.c_phone_cc).or_default();
                    e.0 += 1;
                    e.1 += c.c_acctbal;
                }
                Ok(())
            })?;
        }
        if let Some(tmp) = tmp {
            self.cluster.drop_dist_set(&tmp)?;
        }
        Ok(canonical(
            groups
                .into_iter()
                .map(|(cc, (n, bal))| vec![cc.to_string(), n.to_string(), bal.to_string()])
                .collect(),
        ))
    }

    /// Customers organized by custkey: the `customer_ck` replica when
    /// the statistics database has one (no data movement), otherwise a
    /// temporary query-time repartition aligned with `orders_ck`.
    /// Returns `(set name, temporary set to drop afterwards)`.
    fn customers_by_custkey(&self, tmp_name: &str) -> Result<(String, Option<String>)> {
        let chosen = self.replica_for("customer", "custkey");
        if chosen != "customer" {
            return Ok((chosen, None));
        }
        let tmp = self.align_customers(tmp_name)?;
        Ok((tmp.clone(), Some(tmp)))
    }

    /// Repartitions `customer` by custkey into a temporary set aligned
    /// with the `orders_ck` replica (same scheme ⇒ same nodes).
    fn align_customers(&self, tmp_name: &str) -> Result<String> {
        if self.cluster.get_dist_set(tmp_name).is_some() {
            self.cluster.drop_dist_set(tmp_name)?;
        }
        let tmp = self.cluster.create_dist_set(
            tmp_name,
            PartitionScheme::hash("custkey", self.partitions, key_field(0)),
        )?;
        let customer = self.cluster.get_dist_set("customer").expect("loaded");
        let mut dispatchers: FxHashMap<NodeId, pangea_cluster::Dispatcher> = FxHashMap::default();
        customer.try_for_each_record(|from, rec| {
            let d = match dispatchers.entry(from) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => e.insert(tmp.dispatcher(from)?),
            };
            d.dispatch(rec)?;
            Ok(())
        })?;
        for (_, d) in dispatchers {
            d.finish()?;
        }
        Ok(tmp_name.to_string())
    }
}
