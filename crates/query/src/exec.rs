//! Shared query semantics for the two TPC-H engines.
//!
//! Both the Pangea engine ([`crate::pangea_exec::PangeaTpch`]) and the
//! Spark-style baseline ([`crate::spark_exec::SparkTpch`]) implement the
//! same nine paper queries (Q01 Q02 Q04 Q06 Q12 Q13 Q14 Q17 Q22) against
//! the same deterministic data, with all arithmetic in exact integers —
//! so equality of their results is a cross-engine correctness oracle
//! (tested in `tests/`).
//!
//! The predicates are simplified from full TPC-H (string `LIKE`s become
//! integer vocabulary tests) but preserve each query's *shape*: which
//! tables join on which keys, and therefore which heterogeneous replica
//! the Pangea scheduler should pick (paper §9.1.2).

/// One query's output: rows of stringified columns, sorted.
pub type QueryResult = Vec<Vec<String>>;

/// Sorts a result into canonical order (all engines return this form).
pub fn canonical(mut rows: QueryResult) -> QueryResult {
    rows.sort();
    rows
}

/// The nine paper queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryId {
    /// Pricing summary report (scan + aggregate over `lineitem`).
    Q01,
    /// Minimum-cost supplier (multi-way join over the small tables).
    Q02,
    /// Order priority checking (semi-join `orders` ⋉ `lineitem` on
    /// orderkey).
    Q04,
    /// Forecasting revenue change (scan + filter + sum over `lineitem`).
    Q06,
    /// Shipping modes and order priority (join on orderkey).
    Q12,
    /// Customer order-count distribution (outer join on custkey).
    Q13,
    /// Promotion effect (join `lineitem` ⋈ `part` on partkey).
    Q14,
    /// Small-quantity-order revenue (per-part aggregate then join on
    /// partkey).
    Q17,
    /// Global sales opportunity (anti-join `customer` ▷ `orders` on
    /// custkey).
    Q22,
}

impl QueryId {
    /// All nine queries, in paper order (Fig. 5's x-axis).
    pub const ALL: [QueryId; 9] = [
        QueryId::Q01,
        QueryId::Q02,
        QueryId::Q04,
        QueryId::Q06,
        QueryId::Q12,
        QueryId::Q13,
        QueryId::Q14,
        QueryId::Q17,
        QueryId::Q22,
    ];

    /// The benchmark label (`Q01` …).
    pub fn label(&self) -> &'static str {
        match self {
            QueryId::Q01 => "Q01",
            QueryId::Q02 => "Q02",
            QueryId::Q04 => "Q04",
            QueryId::Q06 => "Q06",
            QueryId::Q12 => "Q12",
            QueryId::Q13 => "Q13",
            QueryId::Q14 => "Q14",
            QueryId::Q17 => "Q17",
            QueryId::Q22 => "Q22",
        }
    }
}

/// Query constants, shared verbatim by both engines.
pub mod params {
    /// Q01: `l_shipdate <=` this date.
    pub const Q01_SHIPDATE_MAX: u32 = 19_980_801;
    /// Q02: `p_size =` this.
    pub const Q02_SIZE: i64 = 15;
    /// Q02: part-type class (stand-in for `%BRASS`): `p_type % 5 == 0`.
    pub const Q02_TYPE_MOD: u8 = 5;
    /// Q02: region key (`EUROPE`).
    pub const Q02_REGION: i64 = 3;
    /// Q04: order date window `[lo, hi)`.
    pub const Q04_DATE_LO: u32 = 19_950_701;
    /// Q04 upper bound.
    pub const Q04_DATE_HI: u32 = 19_951_001;
    /// Q06: ship date window `[lo, hi)`.
    pub const Q06_DATE_LO: u32 = 19_940_101;
    /// Q06 upper bound.
    pub const Q06_DATE_HI: u32 = 19_950_101;
    /// Q06: discount window (basis points), inclusive.
    pub const Q06_DISC_LO: i64 = 500;
    /// Q06 discount upper bound.
    pub const Q06_DISC_HI: i64 = 700;
    /// Q06: quantity bound (exclusive).
    pub const Q06_QTY_MAX: i64 = 24;
    /// Q12: the two ship modes (`MAIL`, `SHIP` indexes).
    pub const Q12_MODES: [u8; 2] = [5, 3];
    /// Q12: receipt date window `[lo, hi)`.
    pub const Q12_DATE_LO: u32 = 19_940_101;
    /// Q12 upper bound.
    pub const Q12_DATE_HI: u32 = 19_950_101;
    /// Q14: ship date window `[lo, hi)`.
    pub const Q14_DATE_LO: u32 = 19_950_901;
    /// Q14 upper bound.
    pub const Q14_DATE_HI: u32 = 19_951_001;
    /// Q14: promo part types (`PROMO%` stand-in): `p_type < 25`.
    pub const Q14_PROMO_TYPE_MAX: u8 = 25;
    /// Q17: brand range (inclusive upper bound) — widened from the
    /// paper's single brand so the predicate selects parts at the
    /// scaled-down sizes benches run at.
    pub const Q17_BRAND_MAX: u8 = 12;
    /// Q17: container (`MED BOX` index).
    pub const Q17_CONTAINER: u8 = 3;
    /// Q22: phone country codes.
    pub const Q22_CODES: [u8; 7] = [13, 31, 23, 29, 30, 18, 17];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_sorts_rows() {
        let rows = vec![
            vec!["b".to_string(), "2".to_string()],
            vec!["a".to_string(), "1".to_string()],
        ];
        let c = canonical(rows);
        assert_eq!(c[0][0], "a");
        assert_eq!(c[1][0], "b");
    }

    #[test]
    fn all_nine_queries_enumerated() {
        assert_eq!(QueryId::ALL.len(), 9);
        let labels: Vec<&str> = QueryId::ALL.iter().map(|q| q.label()).collect();
        assert_eq!(
            labels,
            vec!["Q01", "Q02", "Q04", "Q06", "Q12", "Q13", "Q14", "Q17", "Q22"]
        );
    }
}
