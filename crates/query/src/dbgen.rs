//! Deterministic, scale-factor-parameterized TPC-H data generator.
//!
//! Cardinality ratios follow `dbgen`: per unit of scale factor,
//! 6 M lineitem / 1.5 M orders / 150 K customer / 200 K part /
//! 10 K supplier / 800 K partsupp rows, with 25 nations over 5 regions.
//! Benches run SF 0.001–0.05 (DESIGN.md §2: replica-selection speedups
//! depend on co-partitioning avoiding shuffles, not absolute size).
//!
//! Generation is seeded, so every run (and both query engines) sees the
//! same database.

use crate::schema::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scale-factor-derived table cardinalities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cardinalities {
    /// `lineitem` rows (6 M × SF, approximately — lines per order vary).
    pub lineitem: u64,
    /// `orders` rows (1.5 M × SF).
    pub orders: u64,
    /// `customer` rows (150 K × SF).
    pub customer: u64,
    /// `part` rows (200 K × SF).
    pub part: u64,
    /// `supplier` rows (10 K × SF).
    pub supplier: u64,
    /// `partsupp` rows (800 K × SF).
    pub partsupp: u64,
}

impl Cardinalities {
    /// Cardinalities at scale factor `sf`.
    pub fn at(sf: f64) -> Self {
        let n = |base: f64| ((base * sf).round() as u64).max(1);
        Self {
            lineitem: n(6_000_000.0),
            orders: n(1_500_000.0),
            customer: n(150_000.0),
            part: n(200_000.0),
            supplier: n(10_000.0),
            partsupp: n(800_000.0),
        }
    }
}

/// A deterministic TPC-H database at some scale factor.
#[derive(Debug, Clone)]
pub struct TpchData {
    /// Scale factor used.
    pub sf: f64,
    /// `lineitem` rows.
    pub lineitem: Vec<LineItem>,
    /// `orders` rows.
    pub orders: Vec<Order>,
    /// `customer` rows.
    pub customer: Vec<Customer>,
    /// `part` rows.
    pub part: Vec<Part>,
    /// `supplier` rows.
    pub supplier: Vec<Supplier>,
    /// `partsupp` rows.
    pub partsupp: Vec<PartSupp>,
    /// `nation` rows (always 25).
    pub nation: Vec<Nation>,
    /// `region` rows (always 5).
    pub region: Vec<Region>,
}

fn random_date(rng: &mut StdRng) -> u32 {
    let year = rng.random_range(1992..=1998u32);
    let month = rng.random_range(1..=12u32);
    let day = rng.random_range(1..=28u32);
    year * 10_000 + month * 100 + day
}

/// Adds `days` (< 90) to a `yyyymmdd` date with a simplified 28-day
/// month calendar (consistent for comparisons because every generated
/// day is ≤ 28).
pub fn date_plus(date: u32, days: u32) -> u32 {
    let year = date / 10_000;
    let month = (date / 100) % 100;
    let day = date % 100;
    let total = (day - 1) + days;
    let month_total = (month - 1) + total / 28;
    let year = year + month_total / 12;
    let month = month_total % 12 + 1;
    let day = total % 28 + 1;
    year * 10_000 + month * 100 + day
}

impl TpchData {
    /// Generates the database at `sf` with a fixed seed.
    pub fn generate(sf: f64) -> Self {
        Self::generate_seeded(sf, 0x5041_4E47_4541)
    }

    /// Generates the database at `sf` from an explicit seed.
    pub fn generate_seeded(sf: f64, seed: u64) -> Self {
        let card = Cardinalities::at(sf);
        let mut rng = StdRng::seed_from_u64(seed);

        let region: Vec<Region> = (0..5).map(|r| Region { r_regionkey: r }).collect();
        let nation: Vec<Nation> = (0..25)
            .map(|n| Nation {
                n_nationkey: n,
                n_regionkey: n % 5,
            })
            .collect();
        let supplier: Vec<Supplier> = (1..=card.supplier as i64)
            .map(|k| Supplier {
                s_suppkey: k,
                s_nationkey: rng.random_range(0..25),
                s_acctbal: rng.random_range(-100_000..1_000_000),
            })
            .collect();
        let part: Vec<Part> = (1..=card.part as i64)
            .map(|k| Part {
                p_partkey: k,
                p_brand: rng.random_range(1..=55),
                p_type: rng.random_range(0..150),
                p_size: rng.random_range(1..=50),
                p_container: rng.random_range(0..CONTAINERS.len() as u32) as u8,
            })
            .collect();
        let partsupp: Vec<PartSupp> = (0..card.partsupp)
            .map(|i| PartSupp {
                ps_partkey: (i % card.part) as i64 + 1,
                ps_suppkey: rng.random_range(1..=card.supplier as i64),
                ps_supplycost: rng.random_range(100..100_000),
                ps_availqty: rng.random_range(1..10_000),
            })
            .collect();
        let customer: Vec<Customer> = (1..=card.customer as i64)
            .map(|k| Customer {
                c_custkey: k,
                c_nationkey: rng.random_range(0..25),
                c_acctbal: rng.random_range(-99_999..1_000_000),
                c_phone_cc: rng.random_range(10..35),
            })
            .collect();
        let mut orders = Vec::with_capacity(card.orders as usize);
        let mut lineitem = Vec::with_capacity(card.lineitem as usize);
        let lines_per_order = (card.lineitem as f64 / card.orders as f64).round().max(1.0) as u64;
        for k in 1..=card.orders as i64 {
            let o_orderdate = random_date(&mut rng);
            // One third of customers never order (TPC-H's convention is
            // similar: only 2/3 of custkeys appear in orders) — Q13/Q22
            // depend on this skew.
            let o_custkey = (rng.random_range(0..(card.customer * 2 / 3).max(1)) as i64) + 1;
            let n_lines = rng.random_range(1..=(lines_per_order * 2 - 1).max(1));
            let mut total = 0i64;
            for _ in 0..n_lines {
                if lineitem.len() as u64 >= card.lineitem {
                    break;
                }
                let price = rng.random_range(90_000..10_500_000);
                total += price;
                let shipdate = date_plus(o_orderdate, rng.random_range(1..=80));
                let commitdate = date_plus(o_orderdate, rng.random_range(20..=60));
                lineitem.push(LineItem {
                    l_orderkey: k,
                    l_partkey: rng.random_range(1..=card.part as i64),
                    l_suppkey: rng.random_range(1..=card.supplier as i64),
                    l_quantity: rng.random_range(1..=50),
                    l_extendedprice: price,
                    l_discount: rng.random_range(0..=1000),
                    l_tax: rng.random_range(0..=800),
                    l_returnflag: rng.random_range(0..3u32) as u8,
                    l_linestatus: rng.random_range(0..2u32) as u8,
                    l_shipdate: shipdate,
                    l_commitdate: commitdate,
                    l_receiptdate: date_plus(shipdate, rng.random_range(1..=30)),
                    l_shipmode: rng.random_range(0..SHIP_MODES.len() as u32) as u8,
                });
            }
            orders.push(Order {
                o_orderkey: k,
                o_custkey,
                o_totalprice: total,
                o_orderdate,
                o_orderpriority: rng.random_range(0..ORDER_PRIORITIES.len() as u32) as u8,
            });
        }
        Self {
            sf,
            lineitem,
            orders,
            customer,
            part,
            supplier,
            partsupp,
            nation,
            region,
        }
    }

    /// Total rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.lineitem.len()
            + self.orders.len()
            + self.customer.len()
            + self.part.len()
            + self.supplier.len()
            + self.partsupp.len()
            + self.nation.len()
            + self.region.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = TpchData::generate(0.001);
        let b = TpchData::generate(0.001);
        assert_eq!(a.lineitem, b.lineitem);
        assert_eq!(a.orders, b.orders);
        assert_eq!(a.customer, b.customer);
    }

    #[test]
    fn cardinality_ratios_follow_dbgen() {
        let c = Cardinalities::at(0.01);
        assert_eq!(c.lineitem, 60_000);
        assert_eq!(c.orders, 15_000);
        assert_eq!(c.customer, 1_500);
        assert_eq!(c.part, 2_000);
        assert_eq!(c.supplier, 100);
        assert_eq!(c.partsupp, 8_000);
    }

    #[test]
    fn generated_data_respects_foreign_keys() {
        let d = TpchData::generate(0.001);
        let card = Cardinalities::at(0.001);
        for li in &d.lineitem {
            assert!(li.l_orderkey >= 1 && li.l_orderkey <= d.orders.len() as i64);
            assert!(li.l_partkey >= 1 && li.l_partkey <= card.part as i64);
            assert!(li.l_suppkey >= 1 && li.l_suppkey <= card.supplier as i64);
            assert!(li.l_shipdate > li.l_orderdate_of(&d.orders));
        }
        for o in &d.orders {
            assert!(o.o_custkey >= 1 && o.o_custkey <= card.customer as i64);
        }
        assert_eq!(d.nation.len(), 25);
        assert_eq!(d.region.len(), 5);
    }

    impl LineItem {
        fn l_orderdate_of(&self, orders: &[Order]) -> u32 {
            orders[(self.l_orderkey - 1) as usize].o_orderdate
        }
    }

    #[test]
    fn date_arithmetic_is_monotone() {
        let d = 19_950_115;
        assert!(date_plus(d, 1) > d);
        assert!(date_plus(d, 45) > date_plus(d, 10));
        // Month rollover.
        assert_eq!(date_plus(19_951_228, 1), 19_960_101);
    }

    #[test]
    fn lineitem_count_tracks_scale() {
        let small = TpchData::generate(0.0005);
        let large = TpchData::generate(0.002);
        assert!(large.lineitem.len() > 2 * small.lineitem.len());
    }
}
