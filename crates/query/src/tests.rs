//! Cross-engine oracle: both TPC-H engines must produce identical
//! results on the same seeded data, and the Pangea engine must pick the
//! co-partitioned replicas the paper describes.

use crate::dbgen::TpchData;
use crate::exec::QueryId;
use crate::pangea_exec::PangeaTpch;
use crate::spark_exec::SparkTpch;
use pangea_cluster::{ClusterConfig, SimCluster};
use pangea_common::{KB, MB};
use std::path::PathBuf;

fn test_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pangea-query-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn engines(tag: &str, sf: f64) -> (PangeaTpch, SparkTpch) {
    let data = TpchData::generate(sf);
    let cluster = SimCluster::bootstrap(
        ClusterConfig::new(test_root(&format!("{tag}-pangea")), 3)
            .with_pool_capacity(8 * MB)
            .with_page_size(16 * KB),
        "pangea-default-keypair",
    )
    .unwrap();
    let pangea = PangeaTpch::load(&cluster, &data).unwrap();
    let spark =
        SparkTpch::load(&test_root(&format!("{tag}-spark")), &data, 64 * MB, 6, None).unwrap();
    (pangea, spark)
}

#[test]
fn engines_agree_on_every_query() {
    let (pangea, spark) = engines("agree", 0.002);
    for q in QueryId::ALL {
        let a = pangea.run(q).unwrap();
        let b = spark.run(q).unwrap();
        assert_eq!(a, b, "{} results diverge", q.label());
        assert!(!a.is_empty(), "{} returned no rows", q.label());
    }
}

#[test]
fn scheduler_selects_co_partitioned_replicas() {
    let (pangea, _spark) = engines("sched", 0.001);
    assert_eq!(pangea.replica_for("lineitem", "orderkey"), "lineitem_ok");
    assert_eq!(pangea.replica_for("lineitem", "partkey"), "lineitem_pk");
    assert_eq!(pangea.replica_for("orders", "custkey"), "orders_ck");
    assert_eq!(pangea.replica_for("part", "partkey"), "part_pk");
    // No suitable replica → the base (randomly dispatched) set.
    assert_eq!(pangea.replica_for("lineitem", "suppkey"), "lineitem");
}

#[test]
fn pangea_joins_avoid_the_wire_spark_pays_it() {
    let (pangea, spark) = engines("wire", 0.002);
    let net_before = pangea.cluster().network().bytes_moved();
    pangea.run(QueryId::Q17).unwrap();
    let pangea_q17_bytes = pangea.cluster().network().bytes_moved() - net_before;
    let spark_before = spark.net_stats().net_bytes;
    spark.run(QueryId::Q17).unwrap();
    let spark_q17_bytes = spark.net_stats().net_bytes - spark_before;
    assert_eq!(
        pangea_q17_bytes, 0,
        "co-partitioned Q17 must not move data between nodes"
    );
    assert!(
        spark_q17_bytes > 0,
        "Spark's Q17 must shuffle lineitem at query time"
    );
}

#[test]
fn queries_survive_node_failure_and_recovery() {
    let (pangea, _spark) = engines("recover", 0.001);
    let before = pangea.run(QueryId::Q01).unwrap();
    let cluster = pangea.cluster().clone();
    cluster.kill_node(pangea_common::NodeId(1)).unwrap();
    let report = cluster.recover_node(pangea_common::NodeId(1)).unwrap();
    assert!(report.objects_restored > 0);
    let after = pangea.run(QueryId::Q01).unwrap();
    assert_eq!(before, after, "recovered data answers queries identically");
}
