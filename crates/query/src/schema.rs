//! TPC-H schema (the fields the paper's nine queries touch).
//!
//! Rows are stored as pipe-delimited text records — the `dbgen` `.tbl`
//! wire format — so every byte-level Pangea service (dispatch,
//! partitioning by extracted key, shuffle, join maps) works on them
//! unchanged, and both engines pay identical parse costs.
//!
//! Money is fixed-point cents (`i64`), discounts/taxes are basis points
//! (`i64`, 100 = 1%), and dates are `yyyymmdd` integers, keeping every
//! aggregate exactly comparable across engines.

use pangea_common::{PangeaError, Result};

/// Splits a `.tbl` line into at most `N` fields.
pub fn fields(line: &[u8]) -> impl Iterator<Item = &[u8]> {
    line.split(|&b| b == b'|')
}

/// The `idx`-th pipe-delimited field of a record, as bytes.
pub fn field(line: &[u8], idx: usize) -> &[u8] {
    fields(line).nth(idx).unwrap_or(b"")
}

/// Parses an integer field.
pub fn int_field(line: &[u8], idx: usize) -> Result<i64> {
    let f = field(line, idx);
    std::str::from_utf8(f)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            PangeaError::Corruption(format!(
                "field {idx} of row is not an integer: {:?}",
                String::from_utf8_lossy(line)
            ))
        })
}

macro_rules! tpch_table {
    (
        $(#[$doc:meta])*
        $name:ident {
            $( $(#[$fdoc:meta])* $field:ident : $ty:ty ),+ $(,)?
        }
    ) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name {
            $( $(#[$fdoc])* pub $field: $ty, )+
        }

        impl $name {
            /// Formats the row as a pipe-delimited `.tbl` record.
            pub fn to_line(&self) -> Vec<u8> {
                let mut out = Vec::with_capacity(64);
                let mut first = true;
                $(
                    if !first { out.push(b'|'); }
                    first = false;
                    let _ = first;
                    out.extend_from_slice(self.$field.to_string().as_bytes());
                )+
                out
            }

            /// Parses a `.tbl` record back into a row.
            pub fn from_line(line: &[u8]) -> Result<Self> {
                let mut it = fields(line);
                Ok(Self {
                    $(
                        $field: {
                            let f = it.next().ok_or_else(|| PangeaError::Corruption(
                                format!(concat!(stringify!($name), " row missing ",
                                                stringify!($field))))
                            )?;
                            let s = std::str::from_utf8(f).map_err(|_| {
                                PangeaError::Corruption("non-utf8 field".into())
                            })?;
                            s.parse::<$ty>().map_err(|_| PangeaError::Corruption(
                                format!(concat!("bad ", stringify!($field), ": {}"), s)
                            ))?
                        },
                    )+
                })
            }
        }
    };
}

tpch_table! {
    /// The `lineitem` fact table.
    LineItem {
        /// Order this line belongs to.
        l_orderkey: i64,
        /// Part sold.
        l_partkey: i64,
        /// Supplier.
        l_suppkey: i64,
        /// Quantity sold.
        l_quantity: i64,
        /// Extended price in cents.
        l_extendedprice: i64,
        /// Discount in basis points (100 = 1%).
        l_discount: i64,
        /// Tax in basis points.
        l_tax: i64,
        /// Return flag: 0 = 'A', 1 = 'N', 2 = 'R'.
        l_returnflag: u8,
        /// Line status: 0 = 'F', 1 = 'O'.
        l_linestatus: u8,
        /// Ship date as yyyymmdd.
        l_shipdate: u32,
        /// Commit date as yyyymmdd.
        l_commitdate: u32,
        /// Receipt date as yyyymmdd.
        l_receiptdate: u32,
        /// Ship mode index into [`SHIP_MODES`].
        l_shipmode: u8,
    }
}

tpch_table! {
    /// The `orders` table.
    Order {
        /// Primary key.
        o_orderkey: i64,
        /// Ordering customer.
        o_custkey: i64,
        /// Total price in cents.
        o_totalprice: i64,
        /// Order date as yyyymmdd.
        o_orderdate: u32,
        /// Priority index into [`ORDER_PRIORITIES`].
        o_orderpriority: u8,
    }
}

tpch_table! {
    /// The `customer` table.
    Customer {
        /// Primary key.
        c_custkey: i64,
        /// Nation.
        c_nationkey: i64,
        /// Account balance in cents (may be negative).
        c_acctbal: i64,
        /// Two-digit phone country code (Q22's substring).
        c_phone_cc: u8,
    }
}

tpch_table! {
    /// The `part` table.
    Part {
        /// Primary key.
        p_partkey: i64,
        /// Brand index (`Brand#<n>`).
        p_brand: u8,
        /// Type index into a synthetic type vocabulary.
        p_type: u8,
        /// Size.
        p_size: i64,
        /// Container index into [`CONTAINERS`].
        p_container: u8,
    }
}

tpch_table! {
    /// The `supplier` table.
    Supplier {
        /// Primary key.
        s_suppkey: i64,
        /// Nation.
        s_nationkey: i64,
        /// Account balance in cents.
        s_acctbal: i64,
    }
}

tpch_table! {
    /// The `partsupp` table.
    PartSupp {
        /// Part.
        ps_partkey: i64,
        /// Supplier.
        ps_suppkey: i64,
        /// Supply cost in cents.
        ps_supplycost: i64,
        /// Available quantity.
        ps_availqty: i64,
    }
}

tpch_table! {
    /// The `nation` table.
    Nation {
        /// Primary key (0..25).
        n_nationkey: i64,
        /// Region.
        n_regionkey: i64,
    }
}

tpch_table! {
    /// The `region` table.
    Region {
        /// Primary key (0..5).
        r_regionkey: i64,
    }
}

/// Ship modes (`l_shipmode` indexes this).
pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// Order priorities (`o_orderpriority` indexes this).
pub const ORDER_PRIORITIES: [&str; 5] =
    ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Containers (`p_container` indexes this).
pub const CONTAINERS: [&str; 8] = [
    "SM CASE",
    "SM BOX",
    "MED BAG",
    "MED BOX",
    "LG CASE",
    "LG BOX",
    "JUMBO PACK",
    "WRAP JAR",
];

/// Return-flag characters (`l_returnflag` indexes this).
pub const RETURN_FLAGS: [char; 3] = ['A', 'N', 'R'];

/// Line-status characters (`l_linestatus` indexes this).
pub const LINE_STATUS: [char; 2] = ['F', 'O'];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineitem_roundtrips_through_tbl_format() {
        let li = LineItem {
            l_orderkey: 42,
            l_partkey: 7,
            l_suppkey: 3,
            l_quantity: 17,
            l_extendedprice: 123_456,
            l_discount: 500,
            l_tax: 800,
            l_returnflag: 1,
            l_linestatus: 0,
            l_shipdate: 19_950_321,
            l_commitdate: 19_950_301,
            l_receiptdate: 19_950_401,
            l_shipmode: 5,
        };
        let line = li.to_line();
        assert_eq!(
            line,
            b"42|7|3|17|123456|500|800|1|0|19950321|19950301|19950401|5"
        );
        assert_eq!(LineItem::from_line(&line).unwrap(), li);
    }

    #[test]
    fn field_extraction_matches_positions() {
        let line = b"42|7|3|17";
        assert_eq!(field(line, 0), b"42");
        assert_eq!(field(line, 2), b"3");
        assert_eq!(field(line, 9), b"");
        assert_eq!(int_field(line, 3).unwrap(), 17);
        assert!(int_field(b"x|y", 0).is_err());
    }

    #[test]
    fn corrupt_rows_are_rejected() {
        assert!(LineItem::from_line(b"1|2|3").is_err());
        assert!(Order::from_line(b"not|an|order|at|all").is_err());
        let ok = Order {
            o_orderkey: 1,
            o_custkey: 2,
            o_totalprice: 300,
            o_orderdate: 19_970_101,
            o_orderpriority: 2,
        };
        assert_eq!(Order::from_line(&ok.to_line()).unwrap(), ok);
    }

    #[test]
    fn all_small_tables_roundtrip() {
        let c = Customer {
            c_custkey: 9,
            c_nationkey: 3,
            c_acctbal: -50,
            c_phone_cc: 13,
        };
        assert_eq!(Customer::from_line(&c.to_line()).unwrap(), c);
        let p = Part {
            p_partkey: 11,
            p_brand: 23,
            p_type: 4,
            p_size: 30,
            p_container: 2,
        };
        assert_eq!(Part::from_line(&p.to_line()).unwrap(), p);
        let s = Supplier {
            s_suppkey: 5,
            s_nationkey: 1,
            s_acctbal: 1000,
        };
        assert_eq!(Supplier::from_line(&s.to_line()).unwrap(), s);
        let ps = PartSupp {
            ps_partkey: 11,
            ps_suppkey: 5,
            ps_supplycost: 99,
            ps_availqty: 100,
        };
        assert_eq!(PartSupp::from_line(&ps.to_line()).unwrap(), ps);
        let n = Nation {
            n_nationkey: 7,
            n_regionkey: 2,
        };
        assert_eq!(Nation::from_line(&n.to_line()).unwrap(), n);
        let r = Region { r_regionkey: 2 };
        assert_eq!(Region::from_line(&r.to_line()).unwrap(), r);
    }
}
