//! # pangea-query
//!
//! The distributed relational query processor the paper builds on Pangea
//! (§9.1.2, Table 2), plus everything needed to reproduce Fig. 5:
//!
//! * [`schema`] / [`dbgen`] — the TPC-H schema and a deterministic,
//!   scale-factor-parameterized generator;
//! * [`pangea_exec::PangeaTpch`] — the nine paper queries on Pangea,
//!   with heterogeneous-replica selection through the manager's
//!   statistics database;
//! * [`spark_exec::SparkTpch`] — the same queries over Spark-on-HDFS
//!   with query-time repartitioning.
//!
//! Both engines compute in exact integers over the same seeded data, so
//! their results must be equal — the integration tests use this as a
//! cross-engine oracle.

pub mod dbgen;
pub mod exec;
pub mod pangea_exec;
pub mod schema;
pub mod spark_exec;

pub use dbgen::{Cardinalities, TpchData};
pub use exec::{canonical, QueryId, QueryResult};
pub use pangea_exec::PangeaTpch;
pub use spark_exec::SparkTpch;

#[cfg(test)]
mod tests;
