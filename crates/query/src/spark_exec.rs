//! The Spark-over-HDFS TPC-H baseline (paper §9.1.2, Fig. 5).
//!
//! Implements the same nine queries as [`crate::pangea_exec::PangeaTpch`]
//! with identical integer semantics, but through the layered path the
//! paper measures:
//!
//! * tables are read from [`SimHdfs`] through a [`SimSpark`] executor
//!   (paying the load/deserialize cost on first access);
//! * "there is nothing analogous to pre-partitioning available to a
//!   Spark developer when loading data from HDFS; all partitioning must
//!   be performed at query time" — every join exchanges *both* inputs
//!   through a shuffle that serializes, copies, and (optionally)
//!   throttles every record across the simulated wire.

use crate::dbgen::TpchData;
use crate::exec::{canonical, params::*, QueryId, QueryResult};
use crate::schema::*;
use pangea_common::{fx_hash64, FxHashMap, FxHashSet, IoStats, IoStatsSnapshot, Result, Throttle};
use pangea_layered::{load_dataset, SimHdfs, SimSpark, SparkConfig};
use parking_lot::Mutex;
use std::path::Path;
use std::sync::Arc;

/// TPC-H running on Spark-over-HDFS.
pub struct SparkTpch {
    spark: SimSpark,
    partitions: u32,
    net: Arc<IoStats>,
    wire: Arc<Throttle>,
    cached: Mutex<FxHashSet<String>>,
}

impl std::fmt::Debug for SparkTpch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SparkTpch")
            .field("partitions", &self.partitions)
            .finish()
    }
}

impl SparkTpch {
    /// Writes the generated database to HDFS under `dir` and starts an
    /// executor with `executor_memory` bytes. `net_bandwidth` paces the
    /// shuffle wire (None = unthrottled, for tests).
    pub fn load(
        dir: &Path,
        data: &TpchData,
        executor_memory: usize,
        partitions: u32,
        net_bandwidth: Option<u64>,
    ) -> Result<Self> {
        let hdfs = Arc::new(SimHdfs::new(dir, 1, 256 * 1024)?);
        fn write_table<R>(
            hdfs: &SimHdfs,
            name: &str,
            rows: &[R],
            line: impl Fn(&R) -> Vec<u8>,
        ) -> Result<()> {
            let lines: Vec<Vec<u8>> = rows.iter().map(line).collect();
            load_dataset(hdfs, name, lines.iter().map(|l| l.as_slice()))?;
            Ok(())
        }
        write_table(&hdfs, "lineitem", &data.lineitem, |r| r.to_line())?;
        write_table(&hdfs, "orders", &data.orders, |r| r.to_line())?;
        write_table(&hdfs, "customer", &data.customer, |r| r.to_line())?;
        write_table(&hdfs, "part", &data.part, |r| r.to_line())?;
        write_table(&hdfs, "supplier", &data.supplier, |r| r.to_line())?;
        write_table(&hdfs, "partsupp", &data.partsupp, |r| r.to_line())?;
        write_table(&hdfs, "nation", &data.nation, |r| r.to_line())?;
        write_table(&hdfs, "region", &data.region, |r| r.to_line())?;
        let spark = SimSpark::new(hdfs, SparkConfig::new(executor_memory, 256 * 1024));
        Ok(Self {
            spark,
            partitions: partitions.max(1),
            net: Arc::new(IoStats::new()),
            wire: Arc::new(match net_bandwidth {
                Some(bw) => Throttle::bytes_per_sec(bw),
                None => Throttle::unlimited(),
            }),
            cached: Mutex::new(FxHashSet::default()),
        })
    }

    /// Shuffle-wire counters (Fig. 5 diagnostics).
    pub fn net_stats(&self) -> IoStatsSnapshot {
        self.net.snapshot()
    }

    /// The executor (memory accounting for Fig. 4).
    pub fn spark(&self) -> &SimSpark {
        &self.spark
    }

    /// Scans a table through the executor (caching the RDD on first
    /// use, like a Spark application would).
    fn scan(&self, table: &str, mut f: impl FnMut(&[u8]) -> Result<()>) -> Result<()> {
        if self.cached.lock().insert(table.to_string()) {
            self.spark.cache_rdd(table)?;
        }
        self.spark.map_partitions(table, |rec| f(rec))
    }

    /// Query-time repartitioning: filters/projects the table with `map`
    /// and shuffles the projected records by key across the wire.
    fn exchange(
        &self,
        table: &str,
        mut map: impl FnMut(&[u8]) -> Result<Option<(Vec<u8>, Vec<u8>)>>,
    ) -> Result<Vec<Vec<Vec<u8>>>> {
        let p = self.partitions as usize;
        let mut parts: Vec<Vec<Vec<u8>>> = vec![Vec::new(); p];
        self.scan(table, |rec| {
            if let Some((key, payload)) = map(rec)? {
                // Sender: serialize + copy onto the wire.
                self.net.record_serialization(payload.len());
                self.net.record_copy(payload.len());
                self.net.record_net(payload.len());
                self.wire.consume(payload.len());
                // Receiver: deserialize into the partition buffer.
                self.net.record_serialization(payload.len());
                parts[(fx_hash64(&key) % p as u64) as usize].push(payload);
            }
            Ok(())
        })?;
        Ok(parts)
    }

    /// Runs one query by id.
    pub fn run(&self, q: QueryId) -> Result<QueryResult> {
        match q {
            QueryId::Q01 => self.q01(),
            QueryId::Q02 => self.q02(),
            QueryId::Q04 => self.q04(),
            QueryId::Q06 => self.q06(),
            QueryId::Q12 => self.q12(),
            QueryId::Q13 => self.q13(),
            QueryId::Q14 => self.q14(),
            QueryId::Q17 => self.q17(),
            QueryId::Q22 => self.q22(),
        }
    }

    /// Q01 — scan + aggregate (no shuffle needed beyond partials).
    pub fn q01(&self) -> Result<QueryResult> {
        let mut groups: FxHashMap<(u8, u8), (i64, i64, i64, u64)> = FxHashMap::default();
        self.scan("lineitem", |rec| {
            let li = LineItem::from_line(rec)?;
            if li.l_shipdate <= Q01_SHIPDATE_MAX {
                let g = groups
                    .entry((li.l_returnflag, li.l_linestatus))
                    .or_default();
                g.0 += li.l_quantity;
                g.1 += li.l_extendedprice;
                g.2 += li.l_extendedprice * (10_000 - li.l_discount);
                g.3 += 1;
            }
            Ok(())
        })?;
        Ok(canonical(
            groups
                .into_iter()
                .map(|((f, s), (qty, base, disc, cnt))| {
                    vec![
                        RETURN_FLAGS[f as usize].to_string(),
                        LINE_STATUS[s as usize].to_string(),
                        qty.to_string(),
                        base.to_string(),
                        disc.to_string(),
                        cnt.to_string(),
                    ]
                })
                .collect(),
        ))
    }

    /// Q02 — dimension-table joins (all small; broadcast-style).
    pub fn q02(&self) -> Result<QueryResult> {
        let mut nations: FxHashSet<i64> = FxHashSet::default();
        self.scan("nation", |rec| {
            let n = Nation::from_line(rec)?;
            if n.n_regionkey == Q02_REGION {
                nations.insert(n.n_nationkey);
            }
            Ok(())
        })?;
        let mut suppliers: FxHashMap<i64, i64> = FxHashMap::default();
        self.scan("supplier", |rec| {
            let s = Supplier::from_line(rec)?;
            if nations.contains(&s.s_nationkey) {
                suppliers.insert(s.s_suppkey, s.s_acctbal);
            }
            Ok(())
        })?;
        let mut parts: FxHashSet<i64> = FxHashSet::default();
        self.scan("part", |rec| {
            let p = Part::from_line(rec)?;
            if p.p_size == Q02_SIZE && p.p_type % Q02_TYPE_MOD == 0 {
                parts.insert(p.p_partkey);
            }
            Ok(())
        })?;
        let mut best: FxHashMap<i64, (i64, i64)> = FxHashMap::default();
        self.scan("partsupp", |rec| {
            let ps = PartSupp::from_line(rec)?;
            if parts.contains(&ps.ps_partkey) && suppliers.contains_key(&ps.ps_suppkey) {
                let e = best
                    .entry(ps.ps_partkey)
                    .or_insert((ps.ps_supplycost, ps.ps_suppkey));
                if (ps.ps_supplycost, ps.ps_suppkey) < *e {
                    *e = (ps.ps_supplycost, ps.ps_suppkey);
                }
            }
            Ok(())
        })?;
        Ok(canonical(
            best.into_iter()
                .map(|(part, (cost, supp))| {
                    vec![
                        part.to_string(),
                        supp.to_string(),
                        suppliers[&supp].to_string(),
                        cost.to_string(),
                    ]
                })
                .collect(),
        ))
    }

    /// Q04 — both sides shuffled by orderkey at query time.
    pub fn q04(&self) -> Result<QueryResult> {
        let li_parts = self.exchange("lineitem", |rec| {
            let commit = int_field(rec, 10)?;
            let receipt = int_field(rec, 11)?;
            Ok((commit < receipt).then(|| (field(rec, 0).to_vec(), field(rec, 0).to_vec())))
        })?;
        let ord_parts = self.exchange("orders", |rec| {
            let o = Order::from_line(rec)?;
            Ok(
                (o.o_orderdate >= Q04_DATE_LO && o.o_orderdate < Q04_DATE_HI).then(|| {
                    (
                        field(rec, 0).to_vec(),
                        format!("{}|{}", o.o_orderkey, o.o_orderpriority).into_bytes(),
                    )
                }),
            )
        })?;
        let mut counts: FxHashMap<u8, u64> = FxHashMap::default();
        for (li, ords) in li_parts.iter().zip(&ord_parts) {
            let keys: FxHashSet<&[u8]> = li.iter().map(|k| k.as_slice()).collect();
            for o in ords {
                let okey = field(o, 0);
                if keys.contains(okey) {
                    *counts.entry(int_field(o, 1)? as u8).or_default() += 1;
                }
            }
        }
        Ok(canonical(
            counts
                .into_iter()
                .map(|(p, c)| vec![ORDER_PRIORITIES[p as usize].to_string(), c.to_string()])
                .collect(),
        ))
    }

    /// Q06 — scan + filter + sum.
    pub fn q06(&self) -> Result<QueryResult> {
        let mut revenue = 0i64;
        self.scan("lineitem", |rec| {
            let li = LineItem::from_line(rec)?;
            if li.l_shipdate >= Q06_DATE_LO
                && li.l_shipdate < Q06_DATE_HI
                && li.l_discount >= Q06_DISC_LO
                && li.l_discount <= Q06_DISC_HI
                && li.l_quantity < Q06_QTY_MAX
            {
                revenue += li.l_extendedprice * li.l_discount;
            }
            Ok(())
        })?;
        Ok(vec![vec![revenue.to_string()]])
    }

    /// Q12 — both sides shuffled by orderkey.
    pub fn q12(&self) -> Result<QueryResult> {
        let li_parts = self.exchange("lineitem", |rec| {
            let l = LineItem::from_line(rec)?;
            Ok((Q12_MODES.contains(&l.l_shipmode)
                && l.l_commitdate < l.l_receiptdate
                && l.l_shipdate < l.l_commitdate
                && l.l_receiptdate >= Q12_DATE_LO
                && l.l_receiptdate < Q12_DATE_HI)
                .then(|| {
                    (
                        field(rec, 0).to_vec(),
                        format!("{}|{}", l.l_orderkey, l.l_shipmode).into_bytes(),
                    )
                }))
        })?;
        let ord_parts = self.exchange("orders", |rec| {
            let o = Order::from_line(rec)?;
            Ok(Some((
                field(rec, 0).to_vec(),
                format!("{}|{}", o.o_orderkey, o.o_orderpriority).into_bytes(),
            )))
        })?;
        let mut counts: FxHashMap<u8, (u64, u64)> = FxHashMap::default();
        for (li, ords) in li_parts.iter().zip(&ord_parts) {
            let mut prio: FxHashMap<i64, u8> = FxHashMap::default();
            for o in ords {
                prio.insert(int_field(o, 0)?, int_field(o, 1)? as u8);
            }
            for l in li {
                let okey = int_field(l, 0)?;
                let mode = int_field(l, 1)? as u8;
                if let Some(&p) = prio.get(&okey) {
                    let e = counts.entry(mode).or_default();
                    if p <= 1 {
                        e.0 += 1;
                    } else {
                        e.1 += 1;
                    }
                }
            }
        }
        Ok(canonical(
            counts
                .into_iter()
                .map(|(m, (hi, lo))| {
                    vec![
                        SHIP_MODES[m as usize].to_string(),
                        hi.to_string(),
                        lo.to_string(),
                    ]
                })
                .collect(),
        ))
    }

    /// Q13 — both sides shuffled by custkey.
    pub fn q13(&self) -> Result<QueryResult> {
        let ord_parts = self.exchange("orders", |rec| {
            Ok(Some((field(rec, 1).to_vec(), field(rec, 1).to_vec())))
        })?;
        let cust_parts = self.exchange("customer", |rec| {
            Ok(Some((field(rec, 0).to_vec(), field(rec, 0).to_vec())))
        })?;
        let mut distribution: FxHashMap<u64, u64> = FxHashMap::default();
        for (ords, custs) in ord_parts.iter().zip(&cust_parts) {
            let mut per_cust: FxHashMap<i64, u64> = FxHashMap::default();
            for o in ords {
                *per_cust.entry(int_field(o, 0)?).or_default() += 1;
            }
            for c in custs {
                let n = per_cust.get(&int_field(c, 0)?).copied().unwrap_or(0);
                *distribution.entry(n).or_default() += 1;
            }
        }
        Ok(canonical(
            distribution
                .into_iter()
                .map(|(orders, custs)| vec![orders.to_string(), custs.to_string()])
                .collect(),
        ))
    }

    /// Q14 — both sides shuffled by partkey.
    pub fn q14(&self) -> Result<QueryResult> {
        let li_parts = self.exchange("lineitem", |rec| {
            let l = LineItem::from_line(rec)?;
            Ok(
                (l.l_shipdate >= Q14_DATE_LO && l.l_shipdate < Q14_DATE_HI).then(|| {
                    let v = l.l_extendedprice * (10_000 - l.l_discount);
                    (
                        field(rec, 1).to_vec(),
                        format!("{}|{v}", l.l_partkey).into_bytes(),
                    )
                }),
            )
        })?;
        let part_parts = self.exchange("part", |rec| {
            let p = Part::from_line(rec)?;
            Ok(Some((
                field(rec, 0).to_vec(),
                format!("{}|{}", p.p_partkey, p.p_type).into_bytes(),
            )))
        })?;
        let (mut promo, mut total) = (0i64, 0i64);
        for (li, parts) in li_parts.iter().zip(&part_parts) {
            let mut types: FxHashMap<i64, u8> = FxHashMap::default();
            for p in parts {
                types.insert(int_field(p, 0)?, int_field(p, 1)? as u8);
            }
            for l in li {
                if let Some(&t) = types.get(&int_field(l, 0)?) {
                    let v = int_field(l, 1)?;
                    total += v;
                    if t < Q14_PROMO_TYPE_MAX {
                        promo += v;
                    }
                }
            }
        }
        Ok(vec![vec![promo.to_string(), total.to_string()]])
    }

    /// Q17 — the full `lineitem` and `part` tables shuffled by partkey
    /// (a DataFrame shuffle join: the brand/container filter sits on the
    /// `part` side, so Spark repartitions *all* of `lineitem` — exactly
    /// the work Pangea's co-partitioned replicas skip; the paper's 20×).
    pub fn q17(&self) -> Result<QueryResult> {
        let li_parts = self.exchange("lineitem", |rec| {
            Ok(Some((
                field(rec, 1).to_vec(),
                format!(
                    "{}|{}|{}",
                    field_str(rec, 1),
                    field_str(rec, 3),
                    field_str(rec, 4)
                )
                .into_bytes(),
            )))
        })?;
        let part_parts = self.exchange("part", |rec| {
            let p = Part::from_line(rec)?;
            Ok(Some((
                field(rec, 0).to_vec(),
                format!("{}|{}|{}", p.p_partkey, p.p_brand, p.p_container).into_bytes(),
            )))
        })?;
        let mut total = 0i64;
        for (li, parts) in li_parts.iter().zip(&part_parts) {
            let mut targets: FxHashSet<i64> = FxHashSet::default();
            for p in parts {
                let brand = int_field(p, 1)? as u8;
                let container = int_field(p, 2)? as u8;
                if brand <= Q17_BRAND_MAX && container == Q17_CONTAINER {
                    targets.insert(int_field(p, 0)?);
                }
            }
            let mut stats: FxHashMap<i64, (i64, i64)> = FxHashMap::default();
            for l in li {
                let partkey = int_field(l, 0)?;
                if targets.contains(&partkey) {
                    let e = stats.entry(partkey).or_default();
                    e.0 += int_field(l, 1)?;
                    e.1 += 1;
                }
            }
            for l in li {
                if let Some(&(sum_qty, cnt)) = stats.get(&int_field(l, 0)?) {
                    if int_field(l, 1)? * 5 * cnt < sum_qty {
                        total += int_field(l, 2)?;
                    }
                }
            }
        }
        Ok(vec![vec![total.to_string()]])
    }

    /// Q22 — both sides shuffled by custkey.
    pub fn q22(&self) -> Result<QueryResult> {
        let (mut sum, mut cnt) = (0i64, 0i64);
        self.scan("customer", |rec| {
            let c = Customer::from_line(rec)?;
            if c.c_acctbal > 0 && Q22_CODES.contains(&c.c_phone_cc) {
                sum += c.c_acctbal;
                cnt += 1;
            }
            Ok(())
        })?;
        let ord_parts = self.exchange("orders", |rec| {
            Ok(Some((field(rec, 1).to_vec(), field(rec, 1).to_vec())))
        })?;
        let cust_parts = self.exchange("customer", |rec| {
            Ok(Some((field(rec, 0).to_vec(), rec.to_vec())))
        })?;
        let mut groups: FxHashMap<u8, (u64, i64)> = FxHashMap::default();
        for (ords, custs) in ord_parts.iter().zip(&cust_parts) {
            let mut has_orders: FxHashSet<i64> = FxHashSet::default();
            for o in ords {
                has_orders.insert(int_field(o, 0)?);
            }
            for rec in custs {
                let c = Customer::from_line(rec)?;
                if Q22_CODES.contains(&c.c_phone_cc)
                    && c.c_acctbal * cnt > sum
                    && !has_orders.contains(&c.c_custkey)
                {
                    let e = groups.entry(c.c_phone_cc).or_default();
                    e.0 += 1;
                    e.1 += c.c_acctbal;
                }
            }
        }
        Ok(canonical(
            groups
                .into_iter()
                .map(|(cc, (n, bal))| vec![cc.to_string(), n.to_string(), bal.to_string()])
                .collect(),
        ))
    }
}

/// A pipe field as UTF-8 (generated data is always ASCII).
fn field_str(rec: &[u8], idx: usize) -> String {
    String::from_utf8_lossy(field(rec, idx)).into_owned()
}
