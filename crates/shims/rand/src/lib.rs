//! Offline stand-in for [`rand`](https://crates.io/crates/rand).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of the rand 0.9 API it uses: [`StdRng`][rngs::StdRng] (a
//! xoshiro256** generator seeded through SplitMix64),
//! `SeedableRng::seed_from_u64`, and `Rng::random_range` over integer
//! and float ranges. Distribution quality is adequate for data generation
//! and benchmarks; this is not a cryptographic generator.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling helpers, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`. Panics when the range is
    /// empty, matching the real crate.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 uniform mantissa bits -> [0, 1).
                let u01 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * u01 as $t
            }
        }
    )*};
}

float_range!(f32, f64);

/// Generator namespace, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(-50i32..120);
            assert!((-50..120).contains(&v));
            let f = rng.random_range(-3.0f64..3.0);
            assert!((-3.0..3.0).contains(&f));
            let i = rng.random_range(0u32..=10);
            assert!(i <= 10);
        }
    }

    #[test]
    fn coverage_of_small_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }
}
