//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no access to crates.io, so the workspace's
//! property tests run on this miniature implementation: strategies generate
//! deterministic pseudo-random inputs (seeded from the test name, so every
//! run and every machine sees the same cases), and assertion macros map to
//! plain `assert!`. The important simplification versus the real crate is
//! that there is **no shrinking** — a failing case is reported as-is with
//! its case number. The supported surface is exactly what the workspace
//! uses: `proptest! { #[test] fn f(x in strategy, ..) { .. } }` with an
//! optional `#![proptest_config(..)]`, `any::<T>()`, integer/float range
//! strategies, tuple strategies, `collection::vec`, `prop_assert!`, and
//! `prop_assert_eq!`.

/// Deterministic test RNG and per-test configuration.
pub mod test_runner {
    /// Per-`proptest!` configuration. Only `cases` is modeled.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 100 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// SplitMix64 generator seeded from the test name: deterministic per
    /// test, independent across tests.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary label.
        pub fn deterministic(label: &str) -> Self {
            let mut state = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                state ^= b as u64;
                state = state.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

/// Input-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating test inputs of type `Self::Value`.
    pub trait Strategy {
        /// The generated input type.
        type Value;

        /// Draws one input.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u64;
                    (lo as i128 + rng.below(span.saturating_add(1)) as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let u01 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + (self.end - self.start) * u01
        }
    }

    /// The `any::<T>()` strategy: the full value domain of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Self {
                _marker: std::marker::PhantomData,
            }
        }
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Allowed lengths for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing vectors of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The full domain of `T` as a strategy.
pub fn any<T>() -> strategy::Any<T> {
    strategy::Any::new()
}

/// Everything a property test module needs, mirroring
/// `proptest::prelude::*` (including the `prop` alias for the crate root).
pub mod prelude {
    pub use crate as prop;
    pub use crate::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

pub use test_runner::ProptestConfig;

/// Asserts a condition inside a property (maps to `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (maps to `assert_eq!`; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each function body runs `config.cases` times
/// with inputs drawn from its strategies. Failures panic with the case
/// number; re-running reproduces them (generation is deterministic).
#[macro_export]
macro_rules! proptest {
    // Generate one `let` binding per parameter: either `name in strategy`
    // or proptest's shorthand `name: Type` (= `any::<Type>()`).
    (@args $rng:ident;) => {};
    (@args $rng:ident; $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::proptest!(@args $rng; $($rest)*);
    };
    (@args $rng:ident; $arg:ident in $strat:expr) => {
        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    (@args $rng:ident; $arg:ident : $ty:ty, $($rest:tt)*) => {
        let $arg: $ty =
            $crate::strategy::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
        $crate::proptest!(@args $rng; $($rest)*);
    };
    (@args $rng:ident; $arg:ident : $ty:ty) => {
        let $arg: $ty =
            $crate::strategy::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    let result = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(|| {
                            $crate::proptest!(@args rng; $($params)*);
                            $body
                        }),
                    );
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest: property {} failed at case {case}/{}",
                            stringify!($name),
                            config.cases,
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl ($crate::test_runner::ProptestConfig::default()); $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 10u32..20, y in 0usize..=4) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_lengths_respected(
            v in prop::collection::vec(any::<u8>(), 3..6)
        ) {
            prop_assert!((3..6).contains(&v.len()));
        }

        #[test]
        fn tuples_compose(
            pair in (any::<bool>(), 1usize..8)
        ) {
            let (_b, n) = pair;
            prop_assert!((1..8).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_cases_apply(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0u32..100, 5..10);
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
