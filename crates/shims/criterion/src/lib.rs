//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no access to crates.io, so the workspace's
//! benches run on this minimal harness instead. It keeps the API surface
//! the benches use (`Criterion::bench_function`, `benchmark_group`,
//! `Bencher::iter`, the `criterion_group!`/`criterion_main!` macros) and
//! reports mean wall-clock per iteration to stdout. There is no statistical
//! analysis, warm-up modeling, or HTML report — the figures in this
//! repository are produced by `pangea-bench`'s own reporting, and this
//! harness exists so `cargo bench` still drives every figure end to end.

use std::time::{Duration, Instant};

/// Number of timed iterations per benchmark unless the group overrides it.
const DEFAULT_SAMPLES: usize = 10;

/// Measures one benchmark body.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `body` repeatedly, timing each run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = body();
            self.total += start.elapsed();
            self.iters += 1;
            drop(out);
        }
    }
}

/// Prevents the compiler from optimizing a value away. Identity at the
/// moment; good enough for the coarse timings this harness reports.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, DEFAULT_SAMPLES, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
        }
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.samples, f);
        self
    }

    /// Finishes the group (formatting only in this harness).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    let start = Instant::now();
    f(&mut b);
    let wall = start.elapsed();
    if b.iters > 0 {
        let mean = b.total / b.iters as u32;
        println!(
            "bench {name:<48} {mean:>12.2?}/iter ({} iters, {wall:.2?} total)",
            b.iters
        );
    } else {
        println!("bench {name:<48} (no iterations)");
    }
}

/// Declares a group function invoking each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut runs = 0;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert_eq!(runs, DEFAULT_SAMPLES);
    }

    #[test]
    fn group_sample_size_is_respected() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function("case", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 3);
    }
}
