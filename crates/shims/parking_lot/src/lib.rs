//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *subset* of the `parking_lot` API it actually uses as a thin
//! veneer over `std::sync`. Semantics follow parking_lot, not std:
//!
//! * `lock()` / `read()` / `write()` return guards directly (no `Result`);
//! * poisoning is ignored — a panic while holding a lock does not poison it
//!   for later users (`into_inner` on the poison error);
//! * `RwLock::read_arc` / `RwLock::write_arc` return owned, `'static`
//!   guards that keep the `Arc` alive for the guard's lifetime.
//!
//! Only what the workspace needs is provided; this is not a general
//! replacement for the real crate.

use std::fmt;
use std::marker::PhantomData;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Marker standing in for parking_lot's `RawRwLock` type parameter in the
/// owned-guard type aliases.
#[derive(Debug)]
pub struct RawRwLock {
    _priv: (),
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutual-exclusion lock with parking_lot's panic-transparent semantics.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// A reader-writer lock with parking_lot's panic-transparent semantics.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + 'static> RwLock<T> {
    /// Acquires shared read access through an `Arc`, returning an owned
    /// guard that keeps the lock alive for the guard's lifetime.
    pub fn read_arc(this: &Arc<Self>) -> ArcRwLockReadGuard<RawRwLock, T> {
        let arc = Arc::clone(this);
        let guard = this.inner.read().unwrap_or_else(|e| e.into_inner());
        // SAFETY: the guard borrows the RwLock stored behind `arc`'s heap
        // allocation, which is pinned for as long as `arc` lives. The struct
        // drops the guard before the Arc, so the borrow never dangles.
        let guard: std::sync::RwLockReadGuard<'static, T> = unsafe { std::mem::transmute(guard) };
        ArcRwLockReadGuard {
            guard: ManuallyDrop::new(guard),
            arc: ManuallyDrop::new(arc),
            _raw: PhantomData,
        }
    }

    /// Acquires exclusive write access through an `Arc`, returning an owned
    /// guard that keeps the lock alive for the guard's lifetime.
    pub fn write_arc(this: &Arc<Self>) -> ArcRwLockWriteGuard<RawRwLock, T> {
        let arc = Arc::clone(this);
        let guard = this.inner.write().unwrap_or_else(|e| e.into_inner());
        // SAFETY: as in `read_arc`.
        let guard: std::sync::RwLockWriteGuard<'static, T> = unsafe { std::mem::transmute(guard) };
        ArcRwLockWriteGuard {
            guard: ManuallyDrop::new(guard),
            arc: ManuallyDrop::new(arc),
            _raw: PhantomData,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Owned shared-read guard obtained through [`RwLock::read_arc`]. The first
/// type parameter mirrors parking_lot's raw-lock parameter and is unused.
pub struct ArcRwLockReadGuard<R, T: ?Sized + 'static> {
    guard: ManuallyDrop<std::sync::RwLockReadGuard<'static, T>>,
    arc: ManuallyDrop<Arc<RwLock<T>>>,
    _raw: PhantomData<R>,
}

impl<R, T: ?Sized> Deref for ArcRwLockReadGuard<R, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<R, T: ?Sized> Drop for ArcRwLockReadGuard<R, T> {
    fn drop(&mut self) {
        // SAFETY: dropped exactly once, guard strictly before the Arc that
        // owns the lock it borrows.
        unsafe {
            ManuallyDrop::drop(&mut self.guard);
            ManuallyDrop::drop(&mut self.arc);
        }
    }
}

/// Owned exclusive-write guard obtained through [`RwLock::write_arc`].
pub struct ArcRwLockWriteGuard<R, T: ?Sized + 'static> {
    guard: ManuallyDrop<std::sync::RwLockWriteGuard<'static, T>>,
    arc: ManuallyDrop<Arc<RwLock<T>>>,
    _raw: PhantomData<R>,
}

impl<R, T: ?Sized> Deref for ArcRwLockWriteGuard<R, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<R, T: ?Sized> DerefMut for ArcRwLockWriteGuard<R, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<R, T: ?Sized> Drop for ArcRwLockWriteGuard<R, T> {
    fn drop(&mut self) {
        // SAFETY: as in ArcRwLockReadGuard::drop.
        unsafe {
            ManuallyDrop::drop(&mut self.guard);
            ManuallyDrop::drop(&mut self.arc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn arc_guards_keep_lock_alive() {
        let l = Arc::new(RwLock::new(7u32));
        let g = RwLock::read_arc(&l);
        drop(l); // guard still owns a clone
        assert_eq!(*g, 7);
    }

    #[test]
    fn arc_write_guard_mutates() {
        let l = Arc::new(RwLock::new(0u32));
        {
            let mut g = RwLock::write_arc(&l);
            *g = 9;
        }
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn poisoned_lock_is_still_usable() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 0, "parking_lot semantics: no poisoning");
    }
}
