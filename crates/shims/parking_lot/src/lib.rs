//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *subset* of the `parking_lot` API it actually uses as a thin
//! veneer over `std::sync`. Semantics follow parking_lot, not std:
//!
//! * `lock()` / `read()` / `write()` return guards directly (no `Result`);
//! * poisoning is ignored — a panic while holding a lock does not poison it
//!   for later users (`into_inner` on the poison error);
//! * `RwLock::read_arc` / `RwLock::write_arc` return owned, `'static`
//!   guards that keep the `Arc` alive for the guard's lifetime.
//!
//! Only what the workspace needs is provided; this is not a general
//! replacement for the real crate.

use std::fmt;
use std::marker::PhantomData;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Opt-in lock-acquisition-order deadlock detector (`--features
/// lock-order`). Every shim lock gets a lazily assigned id; each
/// acquisition records "held → wanted" edges into a global directed
/// graph and panics — *before* blocking on the real lock — when the
/// wanted lock already has a recorded path back to something this
/// thread holds. A would-be deadlock thus becomes a loud panic naming
/// the cycle instead of a hung test killed by timeout with no
/// diagnosis. Debug/CI only: every acquire takes a global mutex.
#[cfg(feature = "lock-order")]
pub mod order {
    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};

    static NEXT_ID: AtomicU64 = AtomicU64::new(1);

    /// `edges[a]` contains `b` ⇔ some thread acquired `b` while
    /// holding `a` (or declared the intent to).
    fn graph() -> &'static Mutex<HashMap<u64, HashSet<u64>>> {
        static GRAPH: OnceLock<Mutex<HashMap<u64, HashSet<u64>>>> = OnceLock::new();
        GRAPH.get_or_init(|| Mutex::new(HashMap::new()))
    }

    thread_local! {
        /// Ids of the locks this thread currently holds, in
        /// acquisition order (duplicates possible for RwLock reads).
        static HELD: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    }

    /// The lock's id, assigned on first contact. `slot` starts at 0
    /// (`const`-compatible); the first caller installs a fresh nonzero
    /// id, racers keep the winner's.
    fn lock_id(slot: &AtomicU64) -> u64 {
        let cur = slot.load(Ordering::Relaxed);
        if cur != 0 {
            return cur;
        }
        let fresh = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        match slot.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => fresh,
            Err(winner) => winner,
        }
    }

    /// Path `from → … → to` through the edge graph, if one exists.
    fn find_path(
        edges: &HashMap<u64, HashSet<u64>>,
        from: u64,
        to: &[u64],
        path: &mut Vec<u64>,
        seen: &mut HashSet<u64>,
    ) -> bool {
        if !seen.insert(from) {
            return false;
        }
        path.push(from);
        if let Some(next) = edges.get(&from) {
            for &n in next {
                if to.contains(&n) {
                    path.push(n);
                    return true;
                }
                if find_path(edges, n, to, path, seen) {
                    return true;
                }
            }
        }
        path.pop();
        false
    }

    /// Declares the intent to acquire the lock whose id lives in
    /// `slot`: records "held → wanted" edges and panics if the wanted
    /// lock already has a recorded path back to anything this thread
    /// holds (an acquisition-order cycle — some interleaving of the
    /// two orders deadlocks). Must run *before* blocking on the real
    /// lock so the panic fires instead of the hang. Returns the id.
    pub fn about_to_acquire(slot: &AtomicU64) -> u64 {
        let id = lock_id(slot);
        let held: Vec<u64> = HELD.with(|h| h.borrow().clone());
        if held.is_empty() {
            return id;
        }
        let mut g = graph().lock().unwrap_or_else(|e| e.into_inner());
        // Re-acquiring a lock already held (RwLock read recursion) is
        // not an *order* violation; self-edges would only add noise.
        let mut path = Vec::new();
        let mut seen = HashSet::new();
        let others: Vec<u64> = held.iter().copied().filter(|&h| h != id).collect();
        if !others.is_empty() && find_path(&g, id, &others, &mut path, &mut seen) {
            drop(g);
            panic!(
                "lock-order cycle: thread holding locks {held:?} wants lock \
                 #{id}, but the reverse order was already recorded: \
                 {path:?} (a → b means \"a was held while acquiring b\"); \
                 some interleaving of these two orders deadlocks"
            );
        }
        for &h in &held {
            if h != id {
                g.entry(h).or_default().insert(id);
            }
        }
        id
    }

    /// Records that the acquisition declared by [`about_to_acquire`]
    /// succeeded; the id joins this thread's held stack.
    pub fn acquired(id: u64) {
        HELD.with(|h| h.borrow_mut().push(id));
    }

    /// Records a successful `try_lock`-style acquisition: edges and
    /// held stack, but no cycle panic — a failed try degrades
    /// gracefully, it cannot deadlock.
    pub fn try_acquired(slot: &AtomicU64) -> u64 {
        let id = lock_id(slot);
        let held: Vec<u64> = HELD.with(|h| h.borrow().clone());
        if !held.is_empty() {
            let mut g = graph().lock().unwrap_or_else(|e| e.into_inner());
            for &h in &held {
                if h != id {
                    g.entry(h).or_default().insert(id);
                }
            }
        }
        acquired(id);
        id
    }

    /// Removes `id` from this thread's held stack (latest occurrence
    /// first, matching nested guard drop order).
    pub fn on_release(id: u64) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&x| x == id) {
                held.remove(pos);
            }
        });
    }
}

/// Marker standing in for parking_lot's `RawRwLock` type parameter in the
/// owned-guard type aliases.
#[derive(Debug)]
pub struct RawRwLock {
    _priv: (),
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutual-exclusion lock with parking_lot's panic-transparent semantics.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "lock-order")]
    order: std::sync::atomic::AtomicU64,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            #[cfg(feature = "lock-order")]
            order: std::sync::atomic::AtomicU64::new(0),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        let order_id = order::about_to_acquire(&self.order);
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "lock-order")]
        order::acquired(order_id);
        MutexGuard {
            inner,
            #[cfg(feature = "lock-order")]
            order_id,
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        Some(MutexGuard {
            inner,
            #[cfg(feature = "lock-order")]
            order_id: order::try_acquired(&self.order),
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
    #[cfg(feature = "lock-order")]
    order_id: u64,
}

#[cfg(feature = "lock-order")]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        order::on_release(self.order_id);
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// A reader-writer lock with parking_lot's panic-transparent semantics.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "lock-order")]
    order: std::sync::atomic::AtomicU64,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            #[cfg(feature = "lock-order")]
            order: std::sync::atomic::AtomicU64::new(0),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        let order_id = order::about_to_acquire(&self.order);
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "lock-order")]
        order::acquired(order_id);
        RwLockReadGuard {
            inner,
            #[cfg(feature = "lock-order")]
            order_id,
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        let order_id = order::about_to_acquire(&self.order);
        let inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "lock-order")]
        order::acquired(order_id);
        RwLockWriteGuard {
            inner,
            #[cfg(feature = "lock-order")]
            order_id,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + 'static> RwLock<T> {
    /// Acquires shared read access through an `Arc`, returning an owned
    /// guard that keeps the lock alive for the guard's lifetime.
    pub fn read_arc(this: &Arc<Self>) -> ArcRwLockReadGuard<RawRwLock, T> {
        let arc = Arc::clone(this);
        #[cfg(feature = "lock-order")]
        let order_id = order::about_to_acquire(&this.order);
        let guard = this.inner.read().unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "lock-order")]
        order::acquired(order_id);
        // SAFETY: the guard borrows the RwLock stored behind `arc`'s heap
        // allocation, which is pinned for as long as `arc` lives. The struct
        // drops the guard before the Arc, so the borrow never dangles.
        let guard: std::sync::RwLockReadGuard<'static, T> = unsafe { std::mem::transmute(guard) };
        ArcRwLockReadGuard {
            guard: ManuallyDrop::new(guard),
            arc: ManuallyDrop::new(arc),
            #[cfg(feature = "lock-order")]
            order_id,
            _raw: PhantomData,
        }
    }

    /// Acquires exclusive write access through an `Arc`, returning an owned
    /// guard that keeps the lock alive for the guard's lifetime.
    pub fn write_arc(this: &Arc<Self>) -> ArcRwLockWriteGuard<RawRwLock, T> {
        let arc = Arc::clone(this);
        #[cfg(feature = "lock-order")]
        let order_id = order::about_to_acquire(&this.order);
        let guard = this.inner.write().unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "lock-order")]
        order::acquired(order_id);
        // SAFETY: as in `read_arc`.
        let guard: std::sync::RwLockWriteGuard<'static, T> = unsafe { std::mem::transmute(guard) };
        ArcRwLockWriteGuard {
            guard: ManuallyDrop::new(guard),
            arc: ManuallyDrop::new(arc),
            #[cfg(feature = "lock-order")]
            order_id,
            _raw: PhantomData,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    #[cfg(feature = "lock-order")]
    order_id: u64,
}

#[cfg(feature = "lock-order")]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        order::on_release(self.order_id);
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    #[cfg(feature = "lock-order")]
    order_id: u64,
}

#[cfg(feature = "lock-order")]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        order::on_release(self.order_id);
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Owned shared-read guard obtained through [`RwLock::read_arc`]. The first
/// type parameter mirrors parking_lot's raw-lock parameter and is unused.
pub struct ArcRwLockReadGuard<R, T: ?Sized + 'static> {
    guard: ManuallyDrop<std::sync::RwLockReadGuard<'static, T>>,
    arc: ManuallyDrop<Arc<RwLock<T>>>,
    #[cfg(feature = "lock-order")]
    order_id: u64,
    _raw: PhantomData<R>,
}

impl<R, T: ?Sized> Deref for ArcRwLockReadGuard<R, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<R, T: ?Sized> Drop for ArcRwLockReadGuard<R, T> {
    fn drop(&mut self) {
        #[cfg(feature = "lock-order")]
        order::on_release(self.order_id);
        // SAFETY: dropped exactly once, guard strictly before the Arc that
        // owns the lock it borrows.
        unsafe {
            ManuallyDrop::drop(&mut self.guard);
            ManuallyDrop::drop(&mut self.arc);
        }
    }
}

/// Owned exclusive-write guard obtained through [`RwLock::write_arc`].
pub struct ArcRwLockWriteGuard<R, T: ?Sized + 'static> {
    guard: ManuallyDrop<std::sync::RwLockWriteGuard<'static, T>>,
    arc: ManuallyDrop<Arc<RwLock<T>>>,
    #[cfg(feature = "lock-order")]
    order_id: u64,
    _raw: PhantomData<R>,
}

impl<R, T: ?Sized> Deref for ArcRwLockWriteGuard<R, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<R, T: ?Sized> DerefMut for ArcRwLockWriteGuard<R, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<R, T: ?Sized> Drop for ArcRwLockWriteGuard<R, T> {
    fn drop(&mut self) {
        #[cfg(feature = "lock-order")]
        order::on_release(self.order_id);
        // SAFETY: as in ArcRwLockReadGuard::drop.
        unsafe {
            ManuallyDrop::drop(&mut self.guard);
            ManuallyDrop::drop(&mut self.arc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn arc_guards_keep_lock_alive() {
        let l = Arc::new(RwLock::new(7u32));
        let g = RwLock::read_arc(&l);
        drop(l); // guard still owns a clone
        assert_eq!(*g, 7);
    }

    #[test]
    fn arc_write_guard_mutates() {
        let l = Arc::new(RwLock::new(0u32));
        {
            let mut g = RwLock::write_arc(&l);
            *g = 9;
        }
        assert_eq!(*l.read(), 9);
    }

    /// The detector panics on the second half of an A→B / B→A
    /// inversion even when the threads never actually contend — the
    /// *recorded orders* conflict, which is what makes some
    /// interleaving deadlock. Serialized here (thread 2 starts after
    /// thread 1 finished) precisely to prove it's order history, not
    /// luck of the schedule, that trips the check.
    #[cfg(feature = "lock-order")]
    #[test]
    fn lock_order_inversion_panics() {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        std::thread::spawn(move || {
            let _ga = a1.lock();
            let _gb = b1.lock();
        })
        .join()
        .expect("A→B order records fine");
        let inverted = std::thread::spawn(move || {
            let _gb = b.lock();
            let _ga = a.lock(); // closes the cycle: must panic, not hang
        })
        .join();
        let err = inverted.expect_err("B→A after A→B must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("lock-order cycle"),
            "panic should name the cycle, got: {msg}"
        );
    }

    /// Consistent ordering across threads never trips the detector,
    /// and re-reading a lock this thread already reads (RwLock
    /// recursion) is not treated as an inversion.
    #[cfg(feature = "lock-order")]
    #[test]
    fn lock_order_consistent_use_is_quiet() {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(RwLock::new(0u32));
        for _ in 0..4 {
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            std::thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.read();
                let _gb2 = b2.read();
            })
            .join()
            .expect("same order everywhere: no cycle");
        }
    }

    #[test]
    fn poisoned_lock_is_still_usable() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 0, "parking_lot semantics: no poisoning");
    }
}
