//! Offline stand-in for [`crossbeam`](https://crates.io/crates/crossbeam).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the one crossbeam facility it uses: a *bounded* multi-producer
//! multi-consumer channel ([`channel::bounded`]) with blocking `send` and
//! `recv`. The implementation is a `Mutex<VecDeque>` with two condition
//! variables — far simpler than crossbeam's lock-free design, with the
//! same blocking semantics (send blocks while full and fails once every
//! receiver is gone; recv blocks while empty and fails once the queue is
//! drained and every sender is gone).

/// Bounded MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_full: Condvar,
        not_empty: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the undelivered message.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is drained
    /// and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of a bounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a bounded channel holding at most `cap` in-flight messages
    /// (`cap` 0 is rounded up to 1; this shim has no rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap: cap.max(1),
                senders: 1,
                receivers: 1,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until there is room, then enqueues `value`. Fails (and
        /// returns the value) once every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                if inner.queue.len() < inner.cap {
                    inner.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                inner = self
                    .shared
                    .not_full
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives. Fails once the queue is empty
        /// and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .shared
                    .not_empty
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.shared.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn roundtrip_in_order() {
        let (tx, rx) = channel::bounded::<u32>(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<u32> = std::iter::from_fn(|| rx.recv().ok()).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn recv_fails_after_senders_gone() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_fails_after_receivers_gone() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(9).is_err());
    }

    #[test]
    fn bounded_send_blocks_until_room() {
        let (tx, rx) = channel::bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).is_ok());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert!(t.join().unwrap());
    }

    #[test]
    fn mpmc_under_contention() {
        let (tx, rx) = channel::bounded::<u64>(2);
        let mut senders = Vec::new();
        for t in 0..4u64 {
            let tx = tx.clone();
            senders.push(std::thread::spawn(move || {
                for i in 0..50 {
                    tx.send(t * 100 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut receivers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            receivers.push(std::thread::spawn(move || {
                let mut n = 0u64;
                while rx.recv().is_ok() {
                    n += 1;
                }
                n
            }));
        }
        drop(rx);
        for s in senders {
            s.join().unwrap();
        }
        let total: u64 = receivers.into_iter().map(|r| r.join().unwrap()).sum();
        assert_eq!(total, 200);
    }
}
