//! Spark baseline (paper §1, §9.1.1).
//!
//! Models the layered computation framework the paper measures Pangea
//! against: an executor with a unified memory region split into a
//! **storage pool** (the RDD cache, holding *deserialized* objects with
//! per-object allocations) and an **execution pool** (shuffle /
//! aggregation state), running **waves of tasks** (§5: one task per
//! split, `cores` tasks per wave) over a [`DataStore`] such as HDFS,
//! Alluxio, or Ignite.
//!
//! The executed costs:
//! * loading an RDD pays the store's scan cost (serialization + copies)
//!   plus one per-object allocation+copy into the cache;
//! * partitions that do not fit the storage pool are **not cached**
//!   (MEMORY_ONLY semantics) and are recomputed from the store on every
//!   subsequent pass — the §9.1.1 Alluxio observation ("3× slower
//!   iterations" once double caching shrinks the working memory);
//! * reserving execution memory can evict cached partitions (Spark's
//!   unified memory manager), which then also must be recomputed.

use crate::store::DataStore;
use pangea_common::{FxHashMap, IoStats, IoStatsSnapshot, PangeaError, Result};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct SparkConfig {
    /// Unified executor memory (storage + execution).
    pub memory: usize,
    /// Fraction reserved for the storage pool (Spark's
    /// `spark.memory.storageFraction`, default 0.5).
    pub storage_fraction: f64,
    /// Split size in bytes (the paper uses 256 MB; benches scale down).
    pub split_size: usize,
    /// Tasks per wave.
    pub cores: usize,
}

impl SparkConfig {
    /// An executor with `memory` bytes, default fractions, `split_size`
    /// splits and 4 cores.
    pub fn new(memory: usize, split_size: usize) -> Self {
        Self {
            memory,
            storage_fraction: 0.5,
            split_size: split_size.max(64),
            cores: 4,
        }
    }
}

/// Per-object overhead of a deserialized JVM cache entry (object header
/// + reference). The RDD cache pays this per record.
const OBJECT_OVERHEAD: usize = 16;

/// Where a partition's records can be re-read from when not cached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    /// Recompute by re-scanning the backing store's dataset (store-backed
    /// RDDs, MEMORY_ONLY semantics).
    Store,
    /// Re-read from the RDD's spill dataset (materialized RDDs,
    /// MEMORY_AND_DISK semantics). `false` until the partition has been
    /// spilled at least once.
    Spill(bool),
}

#[derive(Debug)]
struct Partition {
    /// Deserialized objects, or `None` when not cached.
    objects: Option<Vec<Box<[u8]>>>,
    /// In-cache size (payload + per-object overhead).
    bytes: usize,
    /// Record range `[start, end)` of this partition in its source
    /// (the dataset for `Source::Store`, the spill dataset otherwise).
    start: u64,
    end: u64,
    /// LRU stamp.
    last_used: u64,
    source: Source,
}

#[derive(Debug, Default)]
struct Rdd {
    partitions: Vec<Partition>,
}

/// The spill dataset holding a materialized RDD's overflow partitions.
fn spill_name(dataset: &str) -> String {
    format!("{dataset}#spill")
}

/// A single-executor Spark simulation over a [`DataStore`].
pub struct SimSpark {
    store: Arc<dyn DataStore>,
    config: SparkConfig,
    rdds: Mutex<FxHashMap<String, Rdd>>,
    storage_used: Mutex<usize>,
    execution_used: Mutex<usize>,
    clock: AtomicU64,
    waves: AtomicU64,
    tasks: AtomicU64,
    stats: Arc<IoStats>,
}

impl std::fmt::Debug for SimSpark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimSpark")
            .field("store", &self.store.name())
            .field("memory", &self.config.memory)
            .finish()
    }
}

impl SimSpark {
    /// An executor over `store`.
    pub fn new(store: Arc<dyn DataStore>, config: SparkConfig) -> Self {
        Self {
            store,
            config,
            rdds: Mutex::new(FxHashMap::default()),
            storage_used: Mutex::new(0),
            execution_used: Mutex::new(0),
            clock: AtomicU64::new(0),
            waves: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
            stats: Arc::new(IoStats::new()),
        }
    }

    /// The backing store.
    pub fn store(&self) -> &Arc<dyn DataStore> {
        &self.store
    }

    /// Storage-pool budget in bytes.
    pub fn storage_budget(&self) -> usize {
        ((self.config.memory as f64) * self.config.storage_fraction) as usize
    }

    /// Executor RAM currently used (RDD cache + execution).
    pub fn mem_bytes(&self) -> u64 {
        (*self.storage_used.lock() + *self.execution_used.lock()) as u64
    }

    /// Task waves run so far (§5 "waves of tasks").
    pub fn waves_run(&self) -> u64 {
        self.waves.load(Ordering::Relaxed)
    }

    /// Tasks run so far.
    pub fn tasks_run(&self) -> u64 {
        self.tasks.load(Ordering::Relaxed)
    }

    /// Executor-side interfacing counters.
    pub fn stats(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }

    /// Loads `dataset` from the store as a cached RDD: deserializes every
    /// record, splits into partitions, and caches as many as fit the
    /// storage pool.
    pub fn cache_rdd(&self, dataset: &str) -> Result<()> {
        let split = self.config.split_size;
        let mut partitions: Vec<Partition> = Vec::new();
        let mut current: Vec<Box<[u8]>> = Vec::new();
        let mut current_bytes = 0usize;
        let mut record_no = 0u64;
        let mut start = 0u64;
        self.store.scan(dataset, &mut |rec| {
            // Deserialized-object materialization: one allocation + copy
            // per record (the JVM object churn the paper charges).
            self.stats.record_copy(rec.len());
            current.push(rec.to_vec().into_boxed_slice());
            current_bytes += rec.len() + OBJECT_OVERHEAD;
            record_no += 1;
            if current_bytes >= split {
                partitions.push(Partition {
                    objects: Some(std::mem::take(&mut current)),
                    bytes: current_bytes,
                    start,
                    end: record_no,
                    last_used: self.clock.fetch_add(1, Ordering::Relaxed),
                    source: Source::Store,
                });
                current_bytes = 0;
                start = record_no;
            }
            Ok(())
        })?;
        if !current.is_empty() {
            partitions.push(Partition {
                objects: Some(current),
                bytes: current_bytes,
                start,
                end: record_no,
                last_used: self.clock.fetch_add(1, Ordering::Relaxed),
                source: Source::Store,
            });
        }
        // Admit partitions under the storage budget (MEMORY_ONLY: the
        // rest are dropped and recomputed on use).
        let budget = self.storage_budget();
        let mut used = self.storage_used.lock();
        for p in &mut partitions {
            if *used + p.bytes <= budget {
                *used += p.bytes;
            } else {
                p.objects = None;
            }
        }
        drop(used);
        self.rdds
            .lock()
            .insert(dataset.to_string(), Rdd { partitions });
        Ok(())
    }

    /// True when every partition of the RDD is cached.
    pub fn fully_cached(&self, dataset: &str) -> bool {
        self.rdds
            .lock()
            .get(dataset)
            .map(|r| r.partitions.iter().all(|p| p.objects.is_some()))
            .unwrap_or(false)
    }

    /// Runs `f` over every record of the RDD in waves of `cores` tasks.
    /// Cached partitions are served from the RDD cache; missing ones are
    /// recomputed from the backing store (one store scan per pass that
    /// has any miss).
    pub fn map_partitions(
        &self,
        dataset: &str,
        mut f: impl FnMut(&[u8]) -> Result<()>,
    ) -> Result<()> {
        let (cached, missing_store, missing_spill, n_parts) = {
            let mut rdds = self.rdds.lock();
            let rdd = rdds
                .get_mut(dataset)
                .ok_or_else(|| PangeaError::usage(format!("RDD '{dataset}' not loaded")))?;
            let mut cached: Vec<(u64, Vec<Box<[u8]>>)> = Vec::new();
            let mut missing_store: Vec<(u64, u64)> = Vec::new();
            let mut missing_spill: Vec<(u64, u64)> = Vec::new();
            for p in &mut rdd.partitions {
                p.last_used = self.clock.fetch_add(1, Ordering::Relaxed);
                match (&p.objects, p.source) {
                    (Some(objs), _) => cached.push((p.start, objs.clone())),
                    (None, Source::Store) => missing_store.push((p.start, p.end)),
                    (None, Source::Spill(true)) => missing_spill.push((p.start, p.end)),
                    (None, Source::Spill(false)) => {
                        return Err(PangeaError::Corruption(format!(
                            "materialized partition of '{dataset}' lost without a                              spill image"
                        )))
                    }
                }
            }
            (cached, missing_store, missing_spill, rdd.partitions.len())
        };
        // Task accounting: one task per partition, `cores` per wave.
        let waves = n_parts.div_ceil(self.config.cores.max(1));
        self.waves.fetch_add(waves as u64, Ordering::Relaxed);
        self.tasks.fetch_add(n_parts as u64, Ordering::Relaxed);
        // Cached partitions stream from memory.
        for (_, objs) in &cached {
            for o in objs {
                f(o)?;
            }
        }
        // Missing store-backed partitions are recomputed from the store:
        // one scan delivering only the missing record ranges (the store
        // still pays its full interfacing cost — that is the point).
        if !missing_store.is_empty() {
            let mut rec_no = 0u64;
            self.store.scan(dataset, &mut |rec| {
                let wanted = missing_store
                    .iter()
                    .any(|&(s, e)| rec_no >= s && rec_no < e);
                rec_no += 1;
                if wanted {
                    f(rec)?;
                }
                Ok(())
            })?;
        }
        // Missing materialized partitions re-read from the spill dataset
        // (MEMORY_AND_DISK).
        if !missing_spill.is_empty() {
            let mut rec_no = 0u64;
            self.store.scan(&spill_name(dataset), &mut |rec| {
                let wanted = missing_spill
                    .iter()
                    .any(|&(s, e)| rec_no >= s && rec_no < e);
                rec_no += 1;
                if wanted {
                    f(rec)?;
                }
                Ok(())
            })?;
        }
        Ok(())
    }

    /// Materializes a *computed* RDD (e.g. a map output) with
    /// MEMORY_AND_DISK semantics: partitions are cached while the storage
    /// pool has room; overflow partitions are written to a spill dataset
    /// on the backing store and re-read on access.
    pub fn materialize_rdd(
        &self,
        dataset: &str,
        records: impl Iterator<Item = Vec<u8>>,
    ) -> Result<()> {
        let split = self.config.split_size;
        let budget = self.storage_budget();
        let spill = spill_name(dataset);
        let _ = self.store.delete(&spill);
        let mut partitions: Vec<Partition> = Vec::new();
        let mut current: Vec<Box<[u8]>> = Vec::new();
        let mut current_bytes = 0usize;
        let mut spill_cursor = 0u64;
        let mut flush = |current: &mut Vec<Box<[u8]>>,
                         current_bytes: &mut usize,
                         partitions: &mut Vec<Partition>|
         -> Result<()> {
            if current.is_empty() {
                return Ok(());
            }
            let objs = std::mem::take(current);
            let bytes = *current_bytes;
            *current_bytes = 0;
            let mut used = self.storage_used.lock();
            if *used + bytes <= budget {
                *used += bytes;
                partitions.push(Partition {
                    objects: Some(objs),
                    bytes,
                    start: 0,
                    end: 0,
                    last_used: self.clock.fetch_add(1, Ordering::Relaxed),
                    source: Source::Spill(false),
                });
            } else {
                drop(used);
                // Spill: write the partition's records to the store.
                let start = spill_cursor;
                for o in &objs {
                    self.store.append(&spill, o)?;
                    spill_cursor += 1;
                }
                partitions.push(Partition {
                    objects: None,
                    bytes,
                    start,
                    end: spill_cursor,
                    last_used: self.clock.fetch_add(1, Ordering::Relaxed),
                    source: Source::Spill(true),
                });
            }
            Ok(())
        };
        for rec in records {
            self.stats.record_copy(rec.len());
            current_bytes += rec.len() + OBJECT_OVERHEAD;
            current.push(rec.into_boxed_slice());
            if current_bytes >= split {
                flush(&mut current, &mut current_bytes, &mut partitions)?;
            }
        }
        flush(&mut current, &mut current_bytes, &mut partitions)?;
        self.store.seal(&spill)?;
        self.rdds
            .lock()
            .insert(dataset.to_string(), Rdd { partitions });
        Ok(())
    }

    /// Reserves execution-pool memory (shuffle/aggregation state). Under
    /// Spark's unified memory manager this may evict cached partitions.
    pub fn reserve_execution(&self, bytes: usize) -> Result<()> {
        {
            let mut exec = self.execution_used.lock();
            *exec += bytes;
        }
        // Evict LRU partitions until storage + execution fit memory.
        let mut storage = self.storage_used.lock();
        let exec = *self.execution_used.lock();
        if exec + *storage <= self.config.memory {
            return Ok(());
        }
        let mut rdds = self.rdds.lock();
        let mut victims: Vec<(String, usize)> = Vec::new();
        {
            let mut all: Vec<(u64, String, usize)> = Vec::new();
            for (name, rdd) in rdds.iter() {
                for (i, p) in rdd.partitions.iter().enumerate() {
                    if p.objects.is_some() {
                        all.push((p.last_used, name.clone(), i));
                    }
                }
            }
            all.sort_unstable();
            let mut need = (exec + *storage).saturating_sub(self.config.memory);
            for (_, name, i) in all {
                if need == 0 {
                    break;
                }
                let bytes = rdds[&name].partitions[i].bytes;
                need = need.saturating_sub(bytes);
                victims.push((name, i));
            }
        }
        for (name, i) in victims {
            if let Some(rdd) = rdds.get_mut(&name) {
                if let Some(p) = rdd.partitions.get_mut(i) {
                    if p.source == Source::Spill(false) {
                        // MEMORY_AND_DISK: write the partition out before
                        // dropping it so it stays recoverable.
                        if let Some(objs) = &p.objects {
                            let spill = spill_name(&name);
                            let mut cursor = 0u64;
                            // Append after any existing spill records.
                            let _ = self.store.scan(&spill, &mut |_| {
                                cursor += 1;
                                Ok(())
                            });
                            p.start = cursor;
                            for o in objs {
                                self.store.append(&spill, o)?;
                                cursor += 1;
                            }
                            self.store.seal(&spill)?;
                            p.end = cursor;
                            p.source = Source::Spill(true);
                        }
                    }
                    if p.objects.take().is_some() {
                        *storage -= p.bytes;
                        self.stats.record_eviction();
                    }
                }
            }
        }
        if exec + *storage > self.config.memory {
            return Err(PangeaError::OutOfMemory {
                requested: bytes,
                capacity: self.config.memory,
                pinned: exec,
            });
        }
        Ok(())
    }

    /// Releases execution-pool memory.
    pub fn release_execution(&self, bytes: usize) {
        let mut exec = self.execution_used.lock();
        *exec = exec.saturating_sub(bytes);
    }

    /// Drops an RDD from the cache (and its spill dataset, if any).
    pub fn uncache(&self, dataset: &str) {
        let _ = self.store.delete(&spill_name(dataset));
        if let Some(rdd) = self.rdds.lock().remove(dataset) {
            let freed: usize = rdd
                .partitions
                .iter()
                .filter(|p| p.objects.is_some())
                .map(|p| p.bytes)
                .sum();
            let mut used = self.storage_used.lock();
            *used = used.saturating_sub(freed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alluxio::SimAlluxio;
    use crate::store::load_dataset;
    use pangea_common::{KB, MB};

    fn records(n: u32, len: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                let mut v = vec![0u8; len];
                v[..4].copy_from_slice(&i.to_le_bytes());
                v
            })
            .collect()
    }

    fn spark_over_alluxio(mem: usize, n: u32) -> (SimSpark, Vec<Vec<u8>>) {
        let store = Arc::new(SimAlluxio::new(64 * MB as u64));
        let recs = records(n, 100);
        load_dataset(store.as_ref(), "pts", recs.iter().map(|r| r.as_slice())).unwrap();
        let spark = SimSpark::new(store, SparkConfig::new(mem, 4 * KB));
        (spark, recs)
    }

    #[test]
    fn fully_cached_rdd_streams_from_memory() {
        let (spark, recs) = spark_over_alluxio(4 * MB, 300);
        spark.cache_rdd("pts").unwrap();
        assert!(spark.fully_cached("pts"));
        let store_reads_before = spark.store().stats().serialized_bytes;
        let mut seen = 0u32;
        spark
            .map_partitions("pts", |_| {
                seen += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(seen as usize, recs.len());
        assert_eq!(
            spark.store().stats().serialized_bytes,
            store_reads_before,
            "no store traffic when fully cached"
        );
        assert!(spark.waves_run() > 0);
    }

    #[test]
    fn partial_cache_recomputes_from_store_every_pass() {
        // Storage pool fits only part of the RDD.
        let (spark, recs) = spark_over_alluxio(48 * KB, 1000);
        spark.cache_rdd("pts").unwrap();
        assert!(!spark.fully_cached("pts"));
        let before = spark.store().stats().serialized_bytes;
        let mut seen = 0u32;
        spark
            .map_partitions("pts", |_| {
                seen += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(seen as usize, recs.len(), "no record lost on miss path");
        assert!(
            spark.store().stats().serialized_bytes > before,
            "misses re-read (and re-deserialize) from the store"
        );
        // Second pass pays again — the per-iteration penalty of Fig. 3.
        let mid = spark.store().stats().serialized_bytes;
        spark.map_partitions("pts", |_| Ok(())).unwrap();
        assert!(spark.store().stats().serialized_bytes > mid);
    }

    #[test]
    fn execution_reservation_evicts_cached_partitions() {
        let (spark, _) = spark_over_alluxio(256 * KB, 1000);
        spark.cache_rdd("pts").unwrap();
        let cached_before = spark.mem_bytes();
        assert!(cached_before > 0);
        spark.reserve_execution(200 * KB).unwrap();
        assert!(
            spark.stats().pages_evicted > 0,
            "unified memory manager evicted storage for execution"
        );
        spark.release_execution(200 * KB);
    }

    #[test]
    fn over_reservation_is_oom() {
        let (spark, _) = spark_over_alluxio(64 * KB, 10);
        spark.cache_rdd("pts").unwrap();
        assert!(matches!(
            spark.reserve_execution(MB),
            Err(PangeaError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn uncache_frees_storage() {
        let (spark, _) = spark_over_alluxio(4 * MB, 200);
        spark.cache_rdd("pts").unwrap();
        assert!(spark.mem_bytes() > 0);
        spark.uncache("pts");
        assert_eq!(spark.mem_bytes(), 0);
        assert!(spark.map_partitions("pts", |_| Ok(())).is_err());
    }
}
