//! The layer-boundary contract shared by the simulated storage systems.
//!
//! Every baseline in this crate *executes* the costs the paper attributes
//! to layering rather than estimating them (§1 "Interfacing Overhead"):
//! records are serialized/deserialized through the workspace codec at
//! each layer crossing, client↔server transfers pay real `memcpy`s
//! (counted in [`IoStats`][pangea_common::IoStats]), and persistent layers move real bytes
//! through a throttleable disk manager.

use pangea_common::{IoStatsSnapshot, Result};

/// A dataset store sitting *under* a computation framework — the role
/// HDFS, Alluxio, and Ignite play below Spark in the paper's layered
/// stacks.
pub trait DataStore: Send + Sync {
    /// Human-readable system name (benchmark labels).
    fn name(&self) -> &'static str;

    /// Appends one record to `dataset` (client → store crossing).
    fn append(&self, dataset: &str, record: &[u8]) -> Result<()>;

    /// Flushes buffered writes of `dataset`.
    fn seal(&self, dataset: &str) -> Result<()>;

    /// Streams every record of `dataset` through `f`
    /// (store → client crossing).
    fn scan(&self, dataset: &str, f: &mut dyn FnMut(&[u8]) -> Result<()>) -> Result<()>;

    /// Removes `dataset` entirely.
    fn delete(&self, dataset: &str) -> Result<()>;

    /// RAM bytes this layer currently holds (Fig. 4 memory accounting).
    fn mem_bytes(&self) -> u64;

    /// Interfacing + I/O counters.
    fn stats(&self) -> IoStatsSnapshot;
}

/// Convenience: appends a whole iterator and seals.
pub fn load_dataset<'a>(
    store: &dyn DataStore,
    dataset: &str,
    records: impl IntoIterator<Item = &'a [u8]>,
) -> Result<u64> {
    let mut n = 0;
    for r in records {
        store.append(dataset, r)?;
        n += 1;
    }
    store.seal(dataset)?;
    Ok(n)
}
