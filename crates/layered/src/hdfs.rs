//! HDFS baseline (paper §9.1.1, §9.2.1 / Fig. 8).
//!
//! Mechanically faithful costs of the HDFS write/read path as the paper
//! measures them against Pangea write-through:
//!
//! * every record crosses a client → datanode boundary (one serialized
//!   copy each way — the paper compares against the native `libhdfs3`
//!   client, so there is no JNI tax, but the client/server copy remains);
//! * data lands in fixed-size blocks, each an append-only file striped
//!   round-robin over the datanode's disks;
//! * reads stream whole blocks from disk, then copy datanode → client.
//!
//! In-memory state is one open block buffer per dataset being written —
//! HDFS itself caches nothing (the OS page cache it normally leans on is
//! the separate [`crate::osfile::OsFileSystem`] baseline).

use crate::store::DataStore;
use pangea_common::{FxHashMap, IoStats, IoStatsSnapshot, PangeaError, Result};
use pangea_storage::{DiskConfig, DiskManager};
use parking_lot::Mutex;
use std::path::Path;
use std::sync::Arc;

/// One sealed on-disk block.
#[derive(Debug, Clone, Copy)]
struct BlockLoc {
    disk: usize,
    offset: u64,
    len: u32,
}

#[derive(Debug, Default)]
struct Dataset {
    blocks: Vec<BlockLoc>,
    open: Vec<u8>,
    records: u64,
}

#[derive(Debug)]
struct HdfsInner {
    disks: Arc<DiskManager>,
    datasets: Mutex<FxHashMap<String, Dataset>>,
    cursors: Mutex<Vec<u64>>,
    next_disk: Mutex<usize>,
    stats: Arc<IoStats>,
    block_size: usize,
}

/// A single-datanode HDFS simulation.
#[derive(Debug, Clone)]
pub struct SimHdfs {
    inner: Arc<HdfsInner>,
}

impl SimHdfs {
    /// A datanode with `disks` drives under `dir` and the given block
    /// size (the paper's 64 MB, scaled down in benches).
    pub fn new(dir: &Path, disks: usize, block_size: usize) -> Result<Self> {
        Self::with_bandwidth(dir, disks, block_size, None)
    }

    /// As [`SimHdfs::new`] with a per-disk bandwidth throttle.
    pub fn with_bandwidth(
        dir: &Path,
        disks: usize,
        block_size: usize,
        bytes_per_sec: Option<u64>,
    ) -> Result<Self> {
        if block_size < 16 {
            return Err(PangeaError::config("HDFS block size too small"));
        }
        let mut cfg = DiskConfig::under(dir, disks);
        if let Some(bw) = bytes_per_sec {
            cfg = cfg.with_bandwidth(bw);
        }
        let disks_mgr = Arc::new(DiskManager::new(cfg)?);
        let n = disks_mgr.num_disks();
        Ok(Self {
            inner: Arc::new(HdfsInner {
                disks: disks_mgr,
                datasets: Mutex::new(FxHashMap::default()),
                cursors: Mutex::new(vec![0; n]),
                next_disk: Mutex::new(0),
                stats: Arc::new(IoStats::new()),
                block_size,
            }),
        })
    }

    fn flush_block(&self, name: &str, ds: &mut Dataset) -> Result<()> {
        if ds.open.is_empty() {
            return Ok(());
        }
        let disk = {
            let mut next = self.inner.next_disk.lock();
            let d = *next;
            *next = (*next + 1) % self.inner.disks.num_disks();
            d
        };
        let offset = {
            let mut cursors = self.inner.cursors.lock();
            let o = cursors[disk];
            cursors[disk] += ds.open.len() as u64;
            o
        };
        self.inner
            .disks
            .write_at(disk, &format!("hdfs_{name}_d{disk}.blk"), offset, &ds.open)?;
        ds.blocks.push(BlockLoc {
            disk,
            offset,
            len: ds.open.len() as u32,
        });
        ds.open.clear();
        Ok(())
    }
}

impl DataStore for SimHdfs {
    fn name(&self) -> &'static str {
        "hdfs"
    }

    fn append(&self, dataset: &str, record: &[u8]) -> Result<()> {
        // Client → datanode: the record is framed (serialized) and
        // copied across the process boundary.
        self.inner.stats.record_serialization(record.len());
        self.inner.stats.record_copy(record.len());
        let mut datasets = self.inner.datasets.lock();
        let ds = datasets.entry(dataset.to_string()).or_default();
        ds.open
            .extend_from_slice(&(record.len() as u32).to_le_bytes());
        ds.open.extend_from_slice(record);
        ds.records += 1;
        if ds.open.len() >= self.inner.block_size {
            let mut full = Dataset {
                blocks: std::mem::take(&mut ds.blocks),
                open: std::mem::take(&mut ds.open),
                records: ds.records,
            };
            self.flush_block(dataset, &mut full)?;
            *ds = full;
        }
        Ok(())
    }

    fn seal(&self, dataset: &str) -> Result<()> {
        let mut datasets = self.inner.datasets.lock();
        let Some(ds) = datasets.get_mut(dataset) else {
            return Ok(());
        };
        let mut taken = Dataset {
            blocks: std::mem::take(&mut ds.blocks),
            open: std::mem::take(&mut ds.open),
            records: ds.records,
        };
        self.flush_block(dataset, &mut taken)?;
        *ds = taken;
        Ok(())
    }

    fn scan(&self, dataset: &str, f: &mut dyn FnMut(&[u8]) -> Result<()>) -> Result<()> {
        let blocks: Vec<BlockLoc> = {
            let datasets = self.inner.datasets.lock();
            let ds = datasets
                .get(dataset)
                .ok_or_else(|| PangeaError::usage(format!("unknown dataset '{dataset}'")))?;
            if !ds.open.is_empty() {
                return Err(PangeaError::usage(format!(
                    "dataset '{dataset}' scanned before seal()"
                )));
            }
            ds.blocks.clone()
        };
        for b in blocks {
            let mut buf = vec![0u8; b.len as usize];
            self.inner.disks.read_at(
                b.disk,
                &format!("hdfs_{dataset}_d{}.blk", b.disk),
                b.offset,
                &mut buf,
            )?;
            // Datanode → client copy, then per-record deserialization.
            self.inner.stats.record_copy(buf.len());
            let mut pos = 0;
            while pos + 4 <= buf.len() {
                let len =
                    u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
                if pos + 4 + len > buf.len() {
                    return Err(PangeaError::Corruption("torn HDFS record".into()));
                }
                self.inner.stats.record_serialization(len);
                f(&buf[pos + 4..pos + 4 + len])?;
                pos += 4 + len;
            }
        }
        Ok(())
    }

    fn delete(&self, dataset: &str) -> Result<()> {
        let removed = self.inner.datasets.lock().remove(dataset);
        if removed.is_some() {
            for d in 0..self.inner.disks.num_disks() {
                self.inner
                    .disks
                    .delete(&format!("hdfs_{dataset}_d{d}.blk"))?;
            }
        }
        Ok(())
    }

    fn mem_bytes(&self) -> u64 {
        self.inner
            .datasets
            .lock()
            .values()
            .map(|d| d.open.len() as u64)
            .sum()
    }

    fn stats(&self) -> IoStatsSnapshot {
        let mut s = self.inner.stats.snapshot();
        let disks = self.inner.disks.stats().snapshot();
        s.disk_reads += disks.disk_reads;
        s.disk_read_bytes += disks.disk_read_bytes;
        s.disk_writes += disks.disk_writes;
        s.disk_write_bytes += disks.disk_write_bytes;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::load_dataset;
    use std::path::PathBuf;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "pangea-hdfs-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn write_seal_scan_roundtrip() {
        let h = SimHdfs::new(&dir("rt"), 2, 256).unwrap();
        let records: Vec<Vec<u8>> = (0..100u32)
            .map(|i| format!("row-{i:04}").into_bytes())
            .collect();
        load_dataset(&h, "t", records.iter().map(|r| r.as_slice())).unwrap();
        let mut out = Vec::new();
        h.scan("t", &mut |r| {
            out.push(r.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(out, records);
        assert_eq!(h.mem_bytes(), 0, "sealed datasets hold no RAM");
    }

    #[test]
    fn every_byte_pays_serialization_and_copy() {
        let h = SimHdfs::new(&dir("cost"), 1, 128).unwrap();
        load_dataset(&h, "t", [b"0123456789".as_slice()]).unwrap();
        let s = h.stats();
        assert!(s.serialized_bytes >= 10);
        assert!(s.copied_bytes >= 10);
        assert!(s.disk_write_bytes >= 10);
        h.scan("t", &mut |_| Ok(())).unwrap();
        let s2 = h.stats();
        assert!(s2.serialized_bytes >= 20, "read deserializes again");
        assert!(s2.disk_read_bytes >= 10);
    }

    #[test]
    fn blocks_stripe_over_disks() {
        let h = SimHdfs::new(&dir("stripe"), 2, 64).unwrap();
        let recs: Vec<Vec<u8>> = (0..50u32).map(|i| vec![i as u8; 30]).collect();
        load_dataset(&h, "t", recs.iter().map(|r| r.as_slice())).unwrap();
        let inner = h.inner.datasets.lock();
        let blocks = &inner.get("t").unwrap().blocks;
        assert!(blocks.len() > 2);
        assert!(blocks.iter().any(|b| b.disk == 0));
        assert!(blocks.iter().any(|b| b.disk == 1));
    }

    #[test]
    fn scan_before_seal_is_rejected() {
        let h = SimHdfs::new(&dir("unsealed"), 1, 1024).unwrap();
        h.append("t", b"x").unwrap();
        assert!(h.scan("t", &mut |_| Ok(())).is_err());
        assert!(h.scan("missing", &mut |_| Ok(())).is_err());
    }

    #[test]
    fn delete_removes_files() {
        let h = SimHdfs::new(&dir("del"), 1, 64).unwrap();
        load_dataset(&h, "t", [b"data".as_slice()]).unwrap();
        h.delete("t").unwrap();
        assert!(h.scan("t", &mut |_| Ok(())).is_err());
    }
}
