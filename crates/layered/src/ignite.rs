//! Apache Ignite baseline (paper §9.1.1).
//!
//! The paper profiles Spark-over-Ignite and attributes its slowdown to
//! two mechanical properties, both executed here:
//!
//! * Ignite stores entries in off-heap pages with a **16 KB hard page
//!   size limit**; per-entry row headers fragment those small pages, and
//!   "Spark over Ignite spends about 40% of time in memory compaction
//!   due to fragmentation" — compaction passes here really copy live
//!   entries into fresh pages;
//! * a bounded off-heap region: exceeding it reproduces the paper's
//!   "Ignite throws a segmentation fault when processing 2 billion or
//!   more points" as a [`PangeaError::SystemFailure`] gap.

use crate::store::DataStore;
use pangea_common::{FxHashMap, IoStats, IoStatsSnapshot, PangeaError, Result};
use parking_lot::Mutex;
use std::sync::Arc;

/// Ignite's hard page-size limit (paper §9.1.1: "it enforces a 16KB
/// hard page size limitation").
pub const IGNITE_PAGE: usize = 16 * 1024;

/// Per-entry row header (key hash, version, expiry — modeled as dead
/// bytes that fragment pages).
const ROW_HEADER: usize = 40;

/// Appends between compaction passes, per dataset.
const COMPACTION_INTERVAL: u64 = 4096;

#[derive(Debug, Default)]
struct IgniteDataset {
    pages: Vec<Vec<u8>>,
    records: u64,
    appends_since_compaction: u64,
}

#[derive(Debug)]
struct IgniteInner {
    datasets: Mutex<FxHashMap<String, IgniteDataset>>,
    off_heap_max: u64,
    used: Mutex<u64>,
    stats: Arc<IoStats>,
}

/// A single-node Ignite simulation exposing the `SharedRDD`-style store.
#[derive(Debug, Clone)]
pub struct SimIgnite {
    inner: Arc<IgniteInner>,
}

impl SimIgnite {
    /// An Ignite region with `off_heap_max` bytes of off-heap memory.
    pub fn new(off_heap_max: u64) -> Self {
        Self {
            inner: Arc::new(IgniteInner {
                datasets: Mutex::new(FxHashMap::default()),
                off_heap_max,
                used: Mutex::new(0),
                stats: Arc::new(IoStats::new()),
            }),
        }
    }

    /// Off-heap bytes in use.
    pub fn used_bytes(&self) -> u64 {
        *self.inner.used.lock()
    }

    /// Copies every live entry of `ds` into fresh pages — the compaction
    /// work the paper profiles at ~40% of runtime.
    fn compact(&self, ds: &mut IgniteDataset) {
        let mut fresh: Vec<Vec<u8>> = Vec::new();
        let mut moved = 0usize;
        for page in &ds.pages {
            let mut pos = 0;
            while pos + 4 <= page.len() {
                let len =
                    u32::from_le_bytes(page[pos..pos + 4].try_into().expect("4 bytes")) as usize;
                if len == 0 || pos + 4 + len > page.len() {
                    break;
                }
                let entry = &page[pos..pos + 4 + len];
                if fresh
                    .last()
                    .map(|p: &Vec<u8>| p.len() + entry.len() + ROW_HEADER > IGNITE_PAGE)
                    .unwrap_or(true)
                {
                    fresh.push(Vec::with_capacity(IGNITE_PAGE));
                }
                let dst = fresh.last_mut().expect("just ensured");
                dst.extend_from_slice(entry);
                dst.resize(dst.len() + ROW_HEADER, 0);
                moved += entry.len() + ROW_HEADER;
                pos += 4 + len + ROW_HEADER;
            }
        }
        self.inner.stats.record_copy(moved);
        ds.pages = fresh;
    }
}

impl DataStore for SimIgnite {
    fn name(&self) -> &'static str {
        "ignite"
    }

    fn append(&self, dataset: &str, record: &[u8]) -> Result<()> {
        let row = record.len() + 4 + ROW_HEADER;
        if row > IGNITE_PAGE {
            return Err(PangeaError::SystemFailure(format!(
                "Ignite entry of {} B exceeds the 16 KB page limit",
                record.len()
            )));
        }
        {
            let mut used = self.inner.used.lock();
            if *used + row as u64 > self.inner.off_heap_max {
                // The paper's segfault at 2B points, as a gap row.
                return Err(PangeaError::SystemFailure(format!(
                    "Ignite segmentation fault: off-heap region exhausted \
                     ({} B of {} B)",
                    *used, self.inner.off_heap_max
                )));
            }
            *used += row as u64;
        }
        self.inner.stats.record_serialization(record.len());
        self.inner.stats.record_copy(record.len());
        let mut datasets = self.inner.datasets.lock();
        let ds = datasets.entry(dataset.to_string()).or_default();
        // Row headers fragment the 16 KB pages: fewer records fit than
        // the payload bytes alone would allow.
        if ds
            .pages
            .last()
            .map(|p| p.len() + row > IGNITE_PAGE)
            .unwrap_or(true)
        {
            ds.pages.push(Vec::with_capacity(IGNITE_PAGE));
        }
        let page = ds.pages.last_mut().expect("just ensured");
        page.extend_from_slice(&(record.len() as u32).to_le_bytes());
        page.extend_from_slice(record);
        page.resize(page.len() + ROW_HEADER, 0);
        ds.records += 1;
        ds.appends_since_compaction += 1;
        if ds.appends_since_compaction >= COMPACTION_INTERVAL {
            ds.appends_since_compaction = 0;
            let mut taken = std::mem::take(ds);
            drop(datasets);
            self.compact(&mut taken);
            self.inner
                .datasets
                .lock()
                .insert(dataset.to_string(), taken);
        }
        Ok(())
    }

    fn seal(&self, _dataset: &str) -> Result<()> {
        Ok(())
    }

    fn scan(&self, dataset: &str, f: &mut dyn FnMut(&[u8]) -> Result<()>) -> Result<()> {
        let pages: Vec<Vec<u8>> = {
            let datasets = self.inner.datasets.lock();
            let ds = datasets
                .get(dataset)
                .ok_or_else(|| PangeaError::usage(format!("unknown dataset '{dataset}'")))?;
            ds.pages.clone()
        };
        for page in &pages {
            self.inner.stats.record_copy(page.len());
            let mut pos = 0;
            while pos + 4 <= page.len() {
                let len =
                    u32::from_le_bytes(page[pos..pos + 4].try_into().expect("4 bytes")) as usize;
                if len == 0 || pos + 4 + len > page.len() {
                    break; // row-header padding region
                }
                self.inner.stats.record_serialization(len);
                f(&page[pos + 4..pos + 4 + len])?;
                pos += 4 + len + ROW_HEADER;
            }
        }
        Ok(())
    }

    fn delete(&self, dataset: &str) -> Result<()> {
        let removed = self.inner.datasets.lock().remove(dataset);
        if let Some(ds) = removed {
            let bytes: u64 = ds.records.checked_mul(ROW_HEADER as u64).unwrap_or(0)
                + ds.pages.iter().map(|p| p.len() as u64).sum::<u64>();
            let mut used = self.inner.used.lock();
            *used = used.saturating_sub(bytes);
        }
        Ok(())
    }

    fn mem_bytes(&self) -> u64 {
        *self.inner.used.lock()
    }

    fn stats(&self) -> IoStatsSnapshot {
        self.inner.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::load_dataset;

    #[test]
    fn roundtrip_and_page_limit() {
        let ig = SimIgnite::new(1 << 20);
        let recs: Vec<Vec<u8>> = (0..200u32).map(|i| format!("v{i}").into_bytes()).collect();
        load_dataset(&ig, "t", recs.iter().map(|r| r.as_slice())).unwrap();
        let mut out = Vec::new();
        ig.scan("t", &mut |r| {
            out.push(r.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(out, recs);
    }

    #[test]
    fn oversized_entries_rejected() {
        let ig = SimIgnite::new(1 << 24);
        assert!(matches!(
            ig.append("t", &vec![0u8; IGNITE_PAGE]),
            Err(PangeaError::SystemFailure(_))
        ));
    }

    #[test]
    fn off_heap_exhaustion_is_the_segfault_gap() {
        let ig = SimIgnite::new(4096);
        let rec = vec![1u8; 100];
        let err = loop {
            if let Err(e) = ig.append("t", &rec) {
                break e;
            }
        };
        assert!(err.is_reported_as_gap());
        assert!(err.to_string().contains("segmentation fault"));
    }

    #[test]
    fn row_headers_fragment_pages() {
        let ig = SimIgnite::new(1 << 24);
        // 100-byte payloads with 44 B framing+header: ~113 rows per 16 KB
        // page instead of ~157 — memory use exceeds raw payload bytes.
        for i in 0..1000u32 {
            ig.append("t", &[i as u8; 100]).unwrap();
        }
        let raw = 1000 * 100;
        assert!(
            ig.used_bytes() > raw + (1000 * ROW_HEADER as u64) / 2,
            "headers accounted: {} vs raw {raw}",
            ig.used_bytes()
        );
    }

    #[test]
    fn compaction_pays_copy_work() {
        let ig = SimIgnite::new(1 << 26);
        let before = ig.stats().copied_bytes;
        for i in 0..(COMPACTION_INTERVAL + 10) {
            ig.append("t", &i.to_le_bytes()).unwrap();
        }
        // One compaction pass ran, copying roughly the whole dataset on
        // top of the per-append copies.
        let after = ig.stats().copied_bytes;
        let appended = (COMPACTION_INTERVAL + 10) * 8;
        assert!(
            after - before > appended + appended / 2,
            "compaction recopied the data: {} vs {appended}",
            after - before
        );
        // Data still intact afterwards.
        let mut n = 0;
        ig.scan("t", &mut |_| {
            n += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(n, COMPACTION_INTERVAL + 10);
    }
}
