//! C-implemented Spark-style shuffle baseline (paper §9.2.2, Table 3).
//!
//! The paper compares Pangea's shuffle service against "simulated Spark
//! shuffling written in C++" for an apples-to-apples (not JVM-vs-C)
//! comparison. Its mechanical properties, executed here:
//!
//! * each CPU core keeps a separate spill file per shuffle partition —
//!   `numCores × numPartitions` files in total (Pangea: at most
//!   `numPartitions` locality sets);
//! * writing a record pays a `malloc` + copy (heap-allocated record)
//!   and then a buffered `fwrite` (copy into a stdio buffer, flushed to
//!   disk in 4 KB chunks);
//! * reading a partition reads back every core's file for it.

use pangea_common::{IoStats, IoStatsSnapshot, PangeaError, Result};
use pangea_storage::{DiskConfig, DiskManager};
use std::path::Path;
use std::sync::Arc;

/// stdio user-space buffer size (`fwrite` semantics).
const STDIO_BUF: usize = 4096;

#[derive(Debug)]
struct SpillFile {
    buf: Vec<u8>,
    cursor: u64,
}

/// The C-Spark shuffle: `cores × partitions` spill files on disk.
#[derive(Debug)]
pub struct CSparkShuffle {
    disks: Arc<DiskManager>,
    cores: usize,
    partitions: usize,
    files: Vec<SpillFile>,
    stats: Arc<IoStats>,
}

impl CSparkShuffle {
    /// A shuffle with `cores` writer cores and `partitions` partitions,
    /// spilling under `dir`.
    pub fn new(dir: &Path, cores: usize, partitions: usize) -> Result<Self> {
        Self::with_bandwidth(dir, cores, partitions, None)
    }

    /// As [`CSparkShuffle::new`] with a disk throttle.
    pub fn with_bandwidth(
        dir: &Path,
        cores: usize,
        partitions: usize,
        bytes_per_sec: Option<u64>,
    ) -> Result<Self> {
        if cores == 0 || partitions == 0 {
            return Err(PangeaError::config("cores and partitions must be > 0"));
        }
        let mut cfg = DiskConfig::under(dir, 1);
        if let Some(bw) = bytes_per_sec {
            cfg = cfg.with_bandwidth(bw);
        }
        Ok(Self {
            disks: Arc::new(DiskManager::new(cfg)?),
            cores,
            partitions,
            files: (0..cores * partitions)
                .map(|_| SpillFile {
                    buf: Vec::with_capacity(STDIO_BUF),
                    cursor: 0,
                })
                .collect(),
            stats: Arc::new(IoStats::new()),
        })
    }

    /// Total spill files (`cores × partitions` — the paper's point).
    pub fn num_files(&self) -> usize {
        self.files.len()
    }

    /// I/O + allocation counters.
    pub fn stats(&self) -> IoStatsSnapshot {
        let mut s = self.stats.snapshot();
        let d = self.disks.stats().snapshot();
        s.disk_reads += d.disk_reads;
        s.disk_read_bytes += d.disk_read_bytes;
        s.disk_writes += d.disk_writes;
        s.disk_write_bytes += d.disk_write_bytes;
        s
    }

    fn file_name(core: usize, partition: usize) -> String {
        format!("spill_c{core}_p{partition}.dat")
    }

    fn file_index(&self, core: usize, partition: usize) -> Result<usize> {
        if core >= self.cores || partition >= self.partitions {
            return Err(PangeaError::usage(format!(
                "core {core} / partition {partition} out of range"
            )));
        }
        Ok(core * self.partitions + partition)
    }

    /// Writes one record from `core` to `partition`.
    pub fn write(&mut self, core: usize, partition: usize, record: &[u8]) -> Result<()> {
        let idx = self.file_index(core, partition)?;
        // malloc + copy: the record is first heap-allocated …
        let owned: Box<[u8]> = record.to_vec().into_boxed_slice();
        self.stats.record_copy(owned.len());
        // … then fwrite'd: copied again into the stdio buffer.
        let file = &mut self.files[idx];
        file.buf
            .extend_from_slice(&(owned.len() as u32).to_le_bytes());
        file.buf.extend_from_slice(&owned);
        self.stats.record_copy(owned.len() + 4);
        if file.buf.len() >= STDIO_BUF {
            let name = Self::file_name(core, partition);
            self.disks.write_at(0, &name, file.cursor, &file.buf)?;
            file.cursor += file.buf.len() as u64;
            file.buf.clear();
        }
        Ok(())
    }

    /// Flushes every open stdio buffer (end of the write phase).
    pub fn finish_writes(&mut self) -> Result<()> {
        for core in 0..self.cores {
            for partition in 0..self.partitions {
                let idx = core * self.partitions + partition;
                let file = &mut self.files[idx];
                if !file.buf.is_empty() {
                    let name = Self::file_name(core, partition);
                    self.disks.write_at(0, &name, file.cursor, &file.buf)?;
                    file.cursor += file.buf.len() as u64;
                    file.buf.clear();
                }
            }
        }
        Ok(())
    }

    /// Streams every record of `partition` (all cores' files) through `f`.
    pub fn read_partition(
        &self,
        partition: usize,
        mut f: impl FnMut(&[u8]) -> Result<()>,
    ) -> Result<()> {
        if partition >= self.partitions {
            return Err(PangeaError::usage(format!(
                "partition {partition} out of range"
            )));
        }
        for core in 0..self.cores {
            let idx = core * self.partitions + partition;
            let len = self.files[idx].cursor;
            if len == 0 {
                continue;
            }
            let mut buf = vec![0u8; len as usize];
            self.disks
                .read_at(0, &Self::file_name(core, partition), 0, &mut buf)?;
            self.stats.record_copy(buf.len());
            let mut pos = 0;
            while pos + 4 <= buf.len() {
                let rec_len =
                    u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
                if pos + 4 + rec_len > buf.len() {
                    return Err(PangeaError::Corruption("torn shuffle record".into()));
                }
                f(&buf[pos + 4..pos + 4 + rec_len])?;
                pos += 4 + rec_len;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "pangea-cshuffle-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn file_count_is_cores_times_partitions() {
        let s = CSparkShuffle::new(&dir("count"), 4, 4).unwrap();
        assert_eq!(s.num_files(), 16);
    }

    #[test]
    fn write_read_roundtrip_by_partition() {
        let mut s = CSparkShuffle::new(&dir("rt"), 2, 3).unwrap();
        for i in 0..300u32 {
            let core = (i % 2) as usize;
            let part = (i % 3) as usize;
            s.write(core, part, format!("rec-{i:04}").as_bytes())
                .unwrap();
        }
        s.finish_writes().unwrap();
        let mut total = 0;
        for p in 0..3 {
            s.read_partition(p, |rec| {
                let n: u32 = std::str::from_utf8(rec).unwrap()[4..].parse().unwrap();
                assert_eq!(n % 3, p as u32);
                total += 1;
                Ok(())
            })
            .unwrap();
        }
        assert_eq!(total, 300);
    }

    #[test]
    fn every_record_pays_double_copy() {
        let mut s = CSparkShuffle::new(&dir("copy"), 1, 1).unwrap();
        s.write(0, 0, &[0u8; 100]).unwrap();
        let st = s.stats();
        assert!(st.copied_bytes >= 200, "malloc copy + fwrite copy");
    }

    #[test]
    fn out_of_range_rejected() {
        let mut s = CSparkShuffle::new(&dir("range"), 2, 2).unwrap();
        assert!(s.write(2, 0, b"x").is_err());
        assert!(s.write(0, 2, b"x").is_err());
        assert!(s.read_partition(2, |_| Ok(())).is_err());
        assert!(CSparkShuffle::new(&dir("zero"), 0, 1).is_err());
    }
}
