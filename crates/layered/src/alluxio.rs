//! Alluxio baseline (paper §9.1.1 and Fig. 7).
//!
//! Alluxio is an in-memory file system deployed *between* a computation
//! framework and a DFS. The costs the paper measures:
//!
//! * every write serializes the record and copies it client → worker;
//!   every read copies worker → client and deserializes (the paper's
//!   tuned NIO client — still two crossings per record);
//! * worker memory is a hard budget: "Alluxio doesn't support writing
//!   more data than its configured memory size" (Fig. 7) — exceeding it
//!   is a [`PangeaError::SystemFailure`], plotted as a gap;
//! * optionally an under-store (e.g. [`crate::hdfs::SimHdfs`]) persists
//!   every write too — that is the *double caching* of §9.1.1: the same
//!   bytes live in Alluxio memory and again in the under-store path.

use crate::store::DataStore;
use pangea_common::{FxHashMap, IoStats, IoStatsSnapshot, PangeaError, Result};
use parking_lot::Mutex;
use std::sync::Arc;

#[derive(Debug, Default)]
struct MemDataset {
    /// Framed records (length prefix + payload) in 1 MB-ish buffers.
    buffers: Vec<Vec<u8>>,
    bytes: u64,
}

struct AlluxioInner {
    capacity: u64,
    used: Mutex<u64>,
    datasets: Mutex<FxHashMap<String, MemDataset>>,
    under: Option<Arc<dyn DataStore>>,
    stats: Arc<IoStats>,
}

impl std::fmt::Debug for AlluxioInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlluxioInner")
            .field("capacity", &self.capacity)
            .field("has_under_store", &self.under.is_some())
            .finish()
    }
}

/// A single-worker Alluxio simulation.
#[derive(Debug, Clone)]
pub struct SimAlluxio {
    inner: Arc<AlluxioInner>,
}

/// Buffer granularity inside the worker.
const ALLUXIO_BUFFER: usize = 1 << 20;

impl SimAlluxio {
    /// A worker with `capacity` bytes of memory and no under-store
    /// (the Fig. 7 transient configuration).
    pub fn new(capacity: u64) -> Self {
        Self {
            inner: Arc::new(AlluxioInner {
                capacity,
                used: Mutex::new(0),
                datasets: Mutex::new(FxHashMap::default()),
                under: None,
                stats: Arc::new(IoStats::new()),
            }),
        }
    }

    /// A worker that also persists every write to an under-store — the
    /// double-caching configuration of §9.1.1.
    pub fn with_under_store(capacity: u64, under: Arc<dyn DataStore>) -> Self {
        Self {
            inner: Arc::new(AlluxioInner {
                capacity,
                used: Mutex::new(0),
                datasets: Mutex::new(FxHashMap::default()),
                under: Some(under),
                stats: Arc::new(IoStats::new()),
            }),
        }
    }

    /// Worker memory currently used.
    pub fn used_bytes(&self) -> u64 {
        *self.inner.used.lock()
    }

    /// Configured worker memory.
    pub fn capacity(&self) -> u64 {
        self.inner.capacity
    }
}

impl DataStore for SimAlluxio {
    fn name(&self) -> &'static str {
        "alluxio"
    }

    fn append(&self, dataset: &str, record: &[u8]) -> Result<()> {
        // Spill datasets (Spark block-manager files, named `…#spill`)
        // belong on local disk, not in worker memory; route them to the
        // under-store when one exists.
        if dataset.contains("#spill") {
            if let Some(under) = &self.inner.under {
                return under.append(dataset, record);
            }
        }
        let framed = record.len() as u64 + 4;
        {
            let mut used = self.inner.used.lock();
            if *used + framed > self.inner.capacity {
                return Err(PangeaError::SystemFailure(format!(
                    "Alluxio worker out of memory: {} B used of {} B",
                    *used, self.inner.capacity
                )));
            }
            *used += framed;
        }
        // Client → worker crossing.
        self.inner.stats.record_serialization(record.len());
        self.inner.stats.record_copy(record.len());
        let mut datasets = self.inner.datasets.lock();
        let ds = datasets.entry(dataset.to_string()).or_default();
        if ds
            .buffers
            .last()
            .map(|b| b.len() + record.len() + 4 > ALLUXIO_BUFFER)
            .unwrap_or(true)
        {
            ds.buffers.push(Vec::with_capacity(
                ALLUXIO_BUFFER.min((record.len() + 4).next_power_of_two()),
            ));
        }
        let buf = ds.buffers.last_mut().expect("just ensured");
        buf.extend_from_slice(&(record.len() as u32).to_le_bytes());
        buf.extend_from_slice(record);
        ds.bytes += framed;
        drop(datasets);
        if let Some(under) = &self.inner.under {
            under.append(dataset, record)?;
        }
        Ok(())
    }

    fn seal(&self, dataset: &str) -> Result<()> {
        if let Some(under) = &self.inner.under {
            under.seal(dataset)?;
        }
        Ok(())
    }

    fn scan(&self, dataset: &str, f: &mut dyn FnMut(&[u8]) -> Result<()>) -> Result<()> {
        if dataset.contains("#spill") {
            if let Some(under) = &self.inner.under {
                return under.scan(dataset, f);
            }
        }
        let datasets = self.inner.datasets.lock();
        let ds = datasets
            .get(dataset)
            .ok_or_else(|| PangeaError::usage(format!("unknown dataset '{dataset}'")))?;
        // Copy the buffers out under the lock (worker → client copy),
        // then deserialize client-side.
        let buffers: Vec<Vec<u8>> = ds.buffers.clone();
        for b in &buffers {
            self.inner.stats.record_copy(b.len());
        }
        drop(datasets);
        for buf in buffers {
            let mut pos = 0;
            while pos + 4 <= buf.len() {
                let len =
                    u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
                if pos + 4 + len > buf.len() {
                    return Err(PangeaError::Corruption("torn Alluxio record".into()));
                }
                self.inner.stats.record_serialization(len);
                f(&buf[pos + 4..pos + 4 + len])?;
                pos += 4 + len;
            }
        }
        Ok(())
    }

    fn delete(&self, dataset: &str) -> Result<()> {
        if dataset.contains("#spill") {
            if let Some(under) = &self.inner.under {
                return under.delete(dataset);
            }
        }
        let removed = self.inner.datasets.lock().remove(dataset);
        if let Some(ds) = removed {
            *self.inner.used.lock() -= ds.bytes;
        }
        if let Some(under) = &self.inner.under {
            under.delete(dataset)?;
        }
        Ok(())
    }

    fn mem_bytes(&self) -> u64 {
        *self.inner.used.lock()
            + self
                .inner
                .under
                .as_ref()
                .map(|u| u.mem_bytes())
                .unwrap_or(0)
    }

    fn stats(&self) -> IoStatsSnapshot {
        let mut s = self.inner.stats.snapshot();
        if let Some(under) = &self.inner.under {
            let u = under.stats();
            s.disk_reads += u.disk_reads;
            s.disk_read_bytes += u.disk_read_bytes;
            s.disk_writes += u.disk_writes;
            s.disk_write_bytes += u.disk_write_bytes;
            s.serializations += u.serializations;
            s.serialized_bytes += u.serialized_bytes;
            s.copies += u.copies;
            s.copied_bytes += u.copied_bytes;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hdfs::SimHdfs;
    use crate::store::load_dataset;
    use pangea_common::KB;

    #[test]
    fn roundtrip_within_memory() {
        let a = SimAlluxio::new(64 * KB as u64);
        let recs: Vec<Vec<u8>> = (0..50u32).map(|i| format!("r{i}").into_bytes()).collect();
        load_dataset(&a, "t", recs.iter().map(|r| r.as_slice())).unwrap();
        let mut out = Vec::new();
        a.scan("t", &mut |r| {
            out.push(r.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(out, recs);
        assert!(a.used_bytes() > 0);
    }

    #[test]
    fn refuses_writes_beyond_memory() {
        let a = SimAlluxio::new(1024);
        let rec = vec![0u8; 256];
        let mut wrote = 0;
        let err = loop {
            match a.append("t", &rec) {
                Ok(()) => wrote += 1,
                Err(e) => break e,
            }
        };
        assert!(wrote >= 3, "some writes fit: {wrote}");
        assert!(matches!(err, PangeaError::SystemFailure(_)));
        assert!(err.is_reported_as_gap(), "plotted as a gap in Fig. 7");
    }

    #[test]
    fn delete_releases_memory() {
        let a = SimAlluxio::new(8 * KB as u64);
        load_dataset(&a, "t", [b"0123456789".as_slice()]).unwrap();
        assert!(a.used_bytes() > 0);
        a.delete("t").unwrap();
        assert_eq!(a.used_bytes(), 0);
    }

    #[test]
    fn under_store_double_caches() {
        let dir = std::env::temp_dir().join(format!(
            "pangea-alluxio-under-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let hdfs = Arc::new(SimHdfs::new(&dir, 1, 256).unwrap());
        let a = SimAlluxio::with_under_store(64 * KB as u64, hdfs.clone());
        load_dataset(&a, "t", [b"persisted".as_slice()]).unwrap();
        // The same record is in Alluxio memory AND on the HDFS path.
        assert!(a.used_bytes() > 0);
        let mut from_hdfs = Vec::new();
        hdfs.scan("t", &mut |r| {
            from_hdfs.push(r.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(from_hdfs, vec![b"persisted".to_vec()]);
        // Both layers' interfacing costs accumulate.
        assert!(a.stats().serialized_bytes >= 18, "two layers serialized");
    }

    #[test]
    fn every_scan_pays_copy_and_deserialization() {
        let a = SimAlluxio::new(64 * KB as u64);
        load_dataset(&a, "t", [b"abcdefgh".as_slice()]).unwrap();
        let before = a.stats();
        a.scan("t", &mut |_| Ok(())).unwrap();
        let after = a.stats();
        assert!(after.copied_bytes > before.copied_bytes);
        assert!(after.serialized_bytes > before.serialized_bytes);
    }
}
