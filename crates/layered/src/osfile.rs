//! OS file system baseline (paper §9.2.1 / Fig. 8).
//!
//! Models buffered file I/O through the OS page cache, which is what the
//! paper's "OS file system" series measures against Pangea's direct-I/O
//! write-through path:
//!
//! * writes copy user → kernel cache page, then flush to disk in cache
//!   blocks (write-back at block granularity);
//! * reads check the cache; hits copy kernel → user, misses read the
//!   block from disk first;
//! * the cache has a capacity and evicts LRU — so repeated scans of a
//!   working set larger than memory thrash, which is exactly the regime
//!   where Pangea's data-aware paging wins in Fig. 8b.

use crate::store::DataStore;
use pangea_common::{FxHashMap, IoStats, IoStatsSnapshot, PangeaError, Result};
use pangea_storage::{DiskConfig, DiskManager};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::path::Path;
use std::sync::Arc;

/// Cache block size (a large folio of OS pages; scaled like the other
/// baselines).
const CACHE_BLOCK: usize = 64 * 1024;

#[derive(Debug, Default)]
struct FileMeta {
    /// Sealed length in bytes.
    len: u64,
    /// Open write buffer (the current cache block being filled).
    open: Vec<u8>,
    records: u64,
}

#[derive(Debug)]
struct OsFileInner {
    disks: Arc<DiskManager>,
    files: Mutex<FxHashMap<String, FileMeta>>,
    /// (file, block ordinal) → cached block.
    cache: Mutex<FxHashMap<(String, u64), Vec<u8>>>,
    /// LRU order of cache keys.
    lru: Mutex<VecDeque<(String, u64)>>,
    cache_capacity_blocks: usize,
    stats: Arc<IoStats>,
}

/// A file system with an OS-style buffer cache.
#[derive(Debug, Clone)]
pub struct OsFileSystem {
    inner: Arc<OsFileInner>,
}

impl OsFileSystem {
    /// A file system under `dir` whose buffer cache holds
    /// `cache_capacity` bytes.
    pub fn new(dir: &Path, cache_capacity: usize) -> Result<Self> {
        Self::with_bandwidth(dir, cache_capacity, None)
    }

    /// As [`OsFileSystem::new`] with a disk bandwidth throttle.
    pub fn with_bandwidth(
        dir: &Path,
        cache_capacity: usize,
        bytes_per_sec: Option<u64>,
    ) -> Result<Self> {
        if cache_capacity < CACHE_BLOCK {
            return Err(PangeaError::config("buffer cache below one block"));
        }
        let mut cfg = DiskConfig::under(dir, 1);
        if let Some(bw) = bytes_per_sec {
            cfg = cfg.with_bandwidth(bw);
        }
        Ok(Self {
            inner: Arc::new(OsFileInner {
                disks: Arc::new(DiskManager::new(cfg)?),
                files: Mutex::new(FxHashMap::default()),
                cache: Mutex::new(FxHashMap::default()),
                lru: Mutex::new(VecDeque::new()),
                cache_capacity_blocks: cache_capacity / CACHE_BLOCK,
                stats: Arc::new(IoStats::new()),
            }),
        })
    }

    fn file_name(dataset: &str) -> String {
        format!("osfs_{dataset}.dat")
    }

    fn cache_insert(&self, key: (String, u64), block: Vec<u8>) {
        let mut cache = self.inner.cache.lock();
        let mut lru = self.inner.lru.lock();
        while cache.len() >= self.inner.cache_capacity_blocks {
            let Some(victim) = lru.pop_front() else { break };
            cache.remove(&victim);
            self.inner.stats.record_eviction();
        }
        lru.push_back(key.clone());
        cache.insert(key, block);
    }

    fn cached_block(&self, key: &(String, u64)) -> Option<Vec<u8>> {
        let cache = self.inner.cache.lock();
        let block = cache.get(key)?.clone();
        let mut lru = self.inner.lru.lock();
        if let Some(pos) = lru.iter().position(|k| k == key) {
            let k = lru.remove(pos).expect("position valid");
            lru.push_back(k);
        }
        Some(block)
    }
}

impl DataStore for OsFileSystem {
    fn name(&self) -> &'static str {
        "os-file"
    }

    fn append(&self, dataset: &str, record: &[u8]) -> Result<()> {
        // User → kernel copy.
        self.inner.stats.record_copy(record.len());
        let mut files = self.inner.files.lock();
        let meta = files.entry(dataset.to_string()).or_default();
        meta.open
            .extend_from_slice(&(record.len() as u32).to_le_bytes());
        meta.open.extend_from_slice(record);
        meta.records += 1;
        // Flush in exact CACHE_BLOCK chunks (records may span blocks;
        // the scan's carry buffer reassembles them). Keeping every block
        // except the last exactly block-sized keeps the cache ordinals
        // aligned with the scan's fixed stride.
        while meta.open.len() >= CACHE_BLOCK {
            let rest = meta.open.split_off(CACHE_BLOCK);
            let block = std::mem::replace(&mut meta.open, rest);
            let ordinal = meta.len / CACHE_BLOCK as u64;
            let offset = meta.len;
            meta.len += block.len() as u64;
            self.inner
                .disks
                .write_at(0, &Self::file_name(dataset), offset, &block)?;
            self.cache_insert((dataset.to_string(), ordinal), block);
        }
        Ok(())
    }

    fn seal(&self, dataset: &str) -> Result<()> {
        let mut files = self.inner.files.lock();
        let Some(meta) = files.get_mut(dataset) else {
            return Ok(());
        };
        if meta.open.is_empty() {
            return Ok(());
        }
        let block = std::mem::take(&mut meta.open);
        debug_assert!(block.len() < CACHE_BLOCK, "append flushes full blocks");
        let ordinal = meta.len / CACHE_BLOCK as u64;
        let offset = meta.len;
        meta.len += block.len() as u64;
        let name = Self::file_name(dataset);
        drop(files);
        self.inner.disks.write_at(0, &name, offset, &block)?;
        self.cache_insert((dataset.to_string(), ordinal), block);
        Ok(())
    }

    fn scan(&self, dataset: &str, f: &mut dyn FnMut(&[u8]) -> Result<()>) -> Result<()> {
        let (len, pending) = {
            let files = self.inner.files.lock();
            let meta = files
                .get(dataset)
                .ok_or_else(|| PangeaError::usage(format!("unknown dataset '{dataset}'")))?;
            (meta.len, meta.open.len())
        };
        if pending > 0 {
            return Err(PangeaError::usage(format!(
                "dataset '{dataset}' scanned before seal()"
            )));
        }
        let name = Self::file_name(dataset);
        let mut carry: Vec<u8> = Vec::new();
        let mut ordinal = 0u64;
        let mut offset = 0u64;
        while offset < len {
            let block_len = ((len - offset) as usize).min(CACHE_BLOCK);
            let key = (dataset.to_string(), ordinal);
            let block = match self.cached_block(&key) {
                Some(b) => b,
                None => {
                    let mut buf = vec![0u8; block_len];
                    self.inner.disks.read_at(0, &name, offset, &mut buf)?;
                    self.cache_insert(key, buf.clone());
                    buf
                }
            };
            // Kernel → user copy.
            self.inner.stats.record_copy(block.len());
            carry.extend_from_slice(&block);
            let mut pos = 0;
            while pos + 4 <= carry.len() {
                let rec_len =
                    u32::from_le_bytes(carry[pos..pos + 4].try_into().expect("4 bytes")) as usize;
                if pos + 4 + rec_len > carry.len() {
                    break; // record continues in the next block
                }
                f(&carry[pos + 4..pos + 4 + rec_len])?;
                pos += 4 + rec_len;
            }
            carry.drain(..pos);
            offset += block_len as u64;
            ordinal += 1;
        }
        if !carry.is_empty() {
            return Err(PangeaError::Corruption("torn OS-file record".into()));
        }
        Ok(())
    }

    fn delete(&self, dataset: &str) -> Result<()> {
        if self.inner.files.lock().remove(dataset).is_some() {
            self.inner.disks.delete(&Self::file_name(dataset))?;
            let mut cache = self.inner.cache.lock();
            let mut lru = self.inner.lru.lock();
            cache.retain(|(d, _), _| d != dataset);
            lru.retain(|(d, _)| d != dataset);
        }
        Ok(())
    }

    fn mem_bytes(&self) -> u64 {
        let cache: u64 = self
            .inner
            .cache
            .lock()
            .values()
            .map(|b| b.len() as u64)
            .sum();
        let open: u64 = self
            .inner
            .files
            .lock()
            .values()
            .map(|m| m.open.len() as u64)
            .sum();
        cache + open
    }

    fn stats(&self) -> IoStatsSnapshot {
        let mut s = self.inner.stats.snapshot();
        let disks = self.inner.disks.stats().snapshot();
        s.disk_reads += disks.disk_reads;
        s.disk_read_bytes += disks.disk_read_bytes;
        s.disk_writes += disks.disk_writes;
        s.disk_write_bytes += disks.disk_write_bytes;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::load_dataset;
    use std::path::PathBuf;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "pangea-osfs-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn roundtrip_with_records_spanning_blocks() {
        let fs = OsFileSystem::new(&dir("rt"), 4 * CACHE_BLOCK).unwrap();
        // 40 KB records force block-boundary spanning.
        let recs: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 40_000]).collect();
        load_dataset(&fs, "t", recs.iter().map(|r| r.as_slice())).unwrap();
        let mut out = Vec::new();
        fs.scan("t", &mut |r| {
            out.push(r.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(out, recs);
    }

    #[test]
    fn cache_hits_avoid_disk_on_rescan() {
        let fs = OsFileSystem::new(&dir("hits"), 16 * CACHE_BLOCK).unwrap();
        let recs: Vec<Vec<u8>> = (0..100u32).map(|i| vec![i as u8; 500]).collect();
        load_dataset(&fs, "t", recs.iter().map(|r| r.as_slice())).unwrap();
        fs.scan("t", &mut |_| Ok(())).unwrap();
        let before = fs.stats().disk_read_bytes;
        fs.scan("t", &mut |_| Ok(())).unwrap();
        assert_eq!(
            fs.stats().disk_read_bytes,
            before,
            "working set fits: second scan is all cache hits"
        );
    }

    #[test]
    fn oversized_working_set_thrashes() {
        // 1-block cache, multi-block file: every scan rereads.
        let fs = OsFileSystem::new(&dir("thrash"), CACHE_BLOCK).unwrap();
        let recs: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 60_000]).collect();
        load_dataset(&fs, "t", recs.iter().map(|r| r.as_slice())).unwrap();
        fs.scan("t", &mut |_| Ok(())).unwrap();
        let first = fs.stats().disk_read_bytes;
        fs.scan("t", &mut |_| Ok(())).unwrap();
        assert!(
            fs.stats().disk_read_bytes > first,
            "LRU cache thrashes on repeat scans of an oversized set"
        );
    }

    #[test]
    fn copies_are_paid_both_ways() {
        let fs = OsFileSystem::new(&dir("copies"), 4 * CACHE_BLOCK).unwrap();
        load_dataset(&fs, "t", [b"0123456789".as_slice()]).unwrap();
        let w = fs.stats().copied_bytes;
        assert!(w >= 10, "user->kernel copy on write");
        fs.scan("t", &mut |_| Ok(())).unwrap();
        assert!(fs.stats().copied_bytes > w, "kernel->user copy on read");
    }

    #[test]
    fn unaligned_records_survive_repeated_cached_scans() {
        // 84-byte framed records never align with the 64 KB block size;
        // blocks must stay exactly block-sized so cache ordinals match
        // the scan stride (regression: torn records on cache-hit scans).
        let fs = OsFileSystem::new(&dir("unaligned"), 8 * CACHE_BLOCK).unwrap();
        let recs: Vec<Vec<u8>> = (0..3000u32)
            .map(|i| {
                let mut v = vec![b'x'; 80];
                v[..4].copy_from_slice(&i.to_le_bytes());
                v
            })
            .collect();
        load_dataset(&fs, "t", recs.iter().map(|r| r.as_slice())).unwrap();
        for _ in 0..3 {
            let mut out = Vec::new();
            fs.scan("t", &mut |r| {
                out.push(r.to_vec());
                Ok(())
            })
            .unwrap();
            assert_eq!(out, recs);
        }
    }

    #[test]
    fn delete_clears_cache_and_file() {
        let fs = OsFileSystem::new(&dir("del"), 4 * CACHE_BLOCK).unwrap();
        load_dataset(&fs, "t", [b"x".as_slice()]).unwrap();
        fs.delete("t").unwrap();
        assert!(fs.scan("t", &mut |_| Ok(())).is_err());
        assert_eq!(fs.mem_bytes(), 0);
    }
}
