//! OS virtual-memory baseline (paper §9.2.1, Fig. 7).
//!
//! Models `malloc()`/`free()` plus the OS's paging behaviour: data lives
//! in 4 KB pages; when resident memory exceeds the configured capacity
//! the pager evicts least-recently-used pages to a swap file, and — like
//! a real OS — performs *page stealing*: it evicts more pages than the
//! immediate demand requires, keeping a free watermark. The paper
//! measures that this combination writes ~2.5× more bytes to disk than
//! Pangea's MRU-for-sequential policy on scan workloads.
//!
//! The work is real: object bytes are copied in on `malloc` (the
//! allocation + copy cost), swap traffic moves through a throttleable
//! [`DiskManager`], and faults copy pages back.

use pangea_common::{IoStats, IoStatsSnapshot, PangeaError, Result};
use pangea_storage::{DiskConfig, DiskManager};
use std::collections::VecDeque;
use std::path::Path;
use std::sync::Arc;

/// The OS page size.
pub const VM_PAGE: usize = 4096;

/// Fraction of capacity kept free by page stealing: on memory pressure
/// the pager evicts down to this watermark, not just one page.
const STEAL_WATERMARK: f64 = 0.125;

/// An allocation handle returned by [`OsVm::malloc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmPtr {
    first_page: usize,
    offset: usize,
    len: usize,
}

impl VmPtr {
    /// Allocation size in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false: zero-byte allocations are rejected.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[derive(Debug)]
struct VmPage {
    /// Resident bytes, or `None` when paged out.
    data: Option<Box<[u8]>>,
    /// Offset in the swap file once the page has ever been swapped.
    swap_offset: Option<u64>,
    dirty: bool,
}

/// A single-process OS-VM simulation: bump-allocated heap over 4 KB
/// pages with an LRU + page-stealing pager.
#[derive(Debug)]
pub struct OsVm {
    pages: Vec<VmPage>,
    /// LRU queue of resident page indexes (front = least recent).
    lru: VecDeque<usize>,
    resident: usize,
    capacity_pages: usize,
    /// Bump cursor: next free byte in the heap.
    brk: usize,
    swap: Arc<DiskManager>,
    swap_cursor: u64,
    stats: Arc<IoStats>,
}

impl OsVm {
    /// A VM with `capacity` bytes of RAM, swapping under `swap_dir`.
    pub fn new(capacity: usize, swap_dir: &Path) -> Result<Self> {
        Self::with_bandwidth(capacity, swap_dir, None)
    }

    /// As [`OsVm::new`] with an optional swap-device bandwidth.
    pub fn with_bandwidth(
        capacity: usize,
        swap_dir: &Path,
        bytes_per_sec: Option<u64>,
    ) -> Result<Self> {
        if capacity < VM_PAGE {
            return Err(PangeaError::config("VM capacity below one page"));
        }
        let mut cfg = DiskConfig::under(swap_dir, 1);
        if let Some(bw) = bytes_per_sec {
            cfg = cfg.with_bandwidth(bw);
        }
        let swap = Arc::new(DiskManager::new(cfg)?);
        Ok(Self {
            pages: Vec::new(),
            lru: VecDeque::new(),
            resident: 0,
            capacity_pages: capacity / VM_PAGE,
            brk: 0,
            swap,
            swap_cursor: 0,
            stats: Arc::new(IoStats::new()),
        })
    }

    /// Swap + fault I/O counters, merged with the swap device's own.
    pub fn io_snapshot(&self) -> IoStatsSnapshot {
        let mut s = self.stats.snapshot();
        let d = self.swap.stats().snapshot();
        s.disk_reads += d.disk_reads;
        s.disk_read_bytes += d.disk_read_bytes;
        s.disk_writes += d.disk_writes;
        s.disk_write_bytes += d.disk_write_bytes;
        s
    }

    /// Resident memory in bytes.
    pub fn resident_bytes(&self) -> usize {
        self.resident * VM_PAGE
    }

    /// Total heap size in bytes (resident + swapped).
    pub fn heap_bytes(&self) -> usize {
        self.pages.len() * VM_PAGE
    }

    /// Allocates and copies `bytes` into the heap — the per-object
    /// `malloc` + copy the paper charges to layered designs.
    pub fn malloc(&mut self, bytes: &[u8]) -> Result<VmPtr> {
        if bytes.is_empty() {
            return Err(PangeaError::usage("zero-byte allocation"));
        }
        let ptr = VmPtr {
            first_page: self.brk / VM_PAGE,
            offset: self.brk % VM_PAGE,
            len: bytes.len(),
        };
        let mut written = 0;
        while written < bytes.len() {
            let page_idx = (self.brk + written) / VM_PAGE;
            let offset = (self.brk + written) % VM_PAGE;
            self.ensure_page(page_idx)?;
            let chunk = (VM_PAGE - offset).min(bytes.len() - written);
            let data = self.pages[page_idx]
                .data
                .as_mut()
                .expect("faulted in by ensure_page");
            data[offset..offset + chunk].copy_from_slice(&bytes[written..written + chunk]);
            self.pages[page_idx].dirty = true;
            self.touch(page_idx);
            written += chunk;
        }
        self.brk += bytes.len();
        self.stats.record_copy(bytes.len());
        Ok(ptr)
    }

    /// Reads an allocation back, faulting pages in as needed.
    pub fn read(&mut self, ptr: VmPtr) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(ptr.len);
        let mut addr = ptr.first_page * VM_PAGE + ptr.offset;
        let mut remaining = ptr.len;
        while remaining > 0 {
            let page_idx = addr / VM_PAGE;
            let offset = addr % VM_PAGE;
            self.ensure_page(page_idx)?;
            let chunk = (VM_PAGE - offset).min(remaining);
            let data = self.pages[page_idx]
                .data
                .as_ref()
                .expect("faulted in by ensure_page");
            out.extend_from_slice(&data[offset..offset + chunk]);
            self.touch(page_idx);
            addr += chunk;
            remaining -= chunk;
        }
        Ok(out)
    }

    /// Frees the whole heap at once (the bulk-deallocation both Pangea
    /// and the OS-VM baseline are good at; Fig. 7 "OS VM deallocation").
    pub fn free_all(&mut self) {
        self.pages.clear();
        self.lru.clear();
        self.resident = 0;
        self.brk = 0;
        self.swap_cursor = 0;
        self.swap.drop_all_handles();
    }

    /// Ensures `page_idx` exists and is resident.
    fn ensure_page(&mut self, page_idx: usize) -> Result<()> {
        while self.pages.len() <= page_idx {
            self.pages.push(VmPage {
                data: None,
                swap_offset: None,
                dirty: false,
            });
        }
        if self.pages[page_idx].data.is_some() {
            return Ok(());
        }
        self.make_room(1)?;
        // Fault in: either fresh-zero or from swap.
        let mut buf = vec![0u8; VM_PAGE].into_boxed_slice();
        if let Some(off) = self.pages[page_idx].swap_offset {
            self.swap.read_at(0, "swap", off, &mut buf)?;
        }
        self.pages[page_idx].data = Some(buf);
        self.pages[page_idx].dirty = false;
        self.lru.push_back(page_idx);
        self.resident += 1;
        Ok(())
    }

    /// LRU eviction with page stealing: on pressure, evicts down to the
    /// free watermark rather than freeing just `need` pages.
    fn make_room(&mut self, need: usize) -> Result<()> {
        if self.resident + need <= self.capacity_pages {
            return Ok(());
        }
        let steal = ((self.capacity_pages as f64 * STEAL_WATERMARK) as usize).max(need);
        let target = self.capacity_pages.saturating_sub(steal);
        while self.resident > target {
            let Some(victim) = self.lru.pop_front() else {
                break;
            };
            let page = &mut self.pages[victim];
            let Some(data) = page.data.take() else {
                continue;
            };
            if page.dirty {
                let off = match page.swap_offset {
                    Some(o) => o,
                    None => {
                        let o = self.swap_cursor;
                        self.swap_cursor += VM_PAGE as u64;
                        o
                    }
                };
                self.swap.write_at(0, "swap", off, &data)?;
                self.pages[victim].swap_offset = Some(off);
                self.pages[victim].dirty = false;
                self.stats.record_flush();
            }
            self.stats.record_eviction();
            self.resident -= 1;
        }
        Ok(())
    }

    fn touch(&mut self, page_idx: usize) {
        // O(n) reposition is fine at simulation scales; a real OS uses
        // clock approximation for the same policy.
        if let Some(pos) = self.lru.iter().position(|&p| p == page_idx) {
            self.lru.remove(pos);
            self.lru.push_back(page_idx);
        }
    }
}

/// A sequential object store over [`OsVm`] — the paper's Fig. 7
/// "OS VM" series: write = per-object `malloc`, read = full scan.
#[derive(Debug)]
pub struct VmObjectStore {
    vm: OsVm,
    objects: Vec<VmPtr>,
}

impl VmObjectStore {
    /// A store over a VM with `capacity` bytes of RAM.
    pub fn new(capacity: usize, swap_dir: &Path, bandwidth: Option<u64>) -> Result<Self> {
        Ok(Self {
            vm: OsVm::with_bandwidth(capacity, swap_dir, bandwidth)?,
            objects: Vec::new(),
        })
    }

    /// Appends one object.
    pub fn write(&mut self, bytes: &[u8]) -> Result<()> {
        let ptr = self.vm.malloc(bytes)?;
        self.objects.push(ptr);
        Ok(())
    }

    /// Scans every object in write order, calling `f` on each.
    pub fn scan(&mut self, mut f: impl FnMut(&[u8])) -> Result<()> {
        for i in 0..self.objects.len() {
            let bytes = self.vm.read(self.objects[i])?;
            f(&bytes);
        }
        Ok(())
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when no objects are stored.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Drops everything at once.
    pub fn clear(&mut self) {
        self.objects.clear();
        self.vm.free_all();
    }

    /// The underlying VM (stats, residency).
    pub fn vm(&self) -> &OsVm {
        &self.vm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "pangea-osvm-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn malloc_read_roundtrip_within_memory() {
        let mut vm = OsVm::new(64 * VM_PAGE, &dir("fit")).unwrap();
        let a = vm.malloc(b"hello").unwrap();
        let b = vm.malloc(&[7u8; 10_000]).unwrap(); // spans pages
        assert_eq!(vm.read(a).unwrap(), b"hello");
        assert_eq!(vm.read(b).unwrap(), vec![7u8; 10_000]);
        assert_eq!(vm.io_snapshot().pages_flushed, 0, "no swapping");
    }

    #[test]
    fn swaps_out_and_faults_back_under_pressure() {
        // 8 pages of RAM, 40 pages of data.
        let mut vm = OsVm::new(8 * VM_PAGE, &dir("swap")).unwrap();
        let mut ptrs = Vec::new();
        for i in 0..40u8 {
            ptrs.push(vm.malloc(&[i; VM_PAGE]).unwrap());
        }
        assert!(vm.io_snapshot().pages_flushed > 0, "must have swapped");
        for (i, &p) in ptrs.iter().enumerate() {
            assert_eq!(vm.read(p).unwrap(), vec![i as u8; VM_PAGE]);
        }
        assert!(vm.resident_bytes() <= 8 * VM_PAGE);
    }

    #[test]
    fn page_stealing_overshoots_demand() {
        let mut vm = OsVm::new(16 * VM_PAGE, &dir("steal")).unwrap();
        for i in 0..17u8 {
            vm.malloc(&[i; VM_PAGE]).unwrap();
        }
        // One page over capacity, but stealing freed a batch.
        let evicted = vm.io_snapshot().pages_evicted;
        assert!(evicted >= 2, "page stealing evicts extra pages: {evicted}");
    }

    #[test]
    fn object_store_scans_in_order_and_clears() {
        let mut s = VmObjectStore::new(8 * VM_PAGE, &dir("store"), None).unwrap();
        for i in 0..200u32 {
            s.write(format!("obj-{i:05}").as_bytes()).unwrap();
        }
        let mut seen = Vec::new();
        s.scan(|b| seen.push(String::from_utf8(b.to_vec()).unwrap()))
            .unwrap();
        assert_eq!(seen.len(), 200);
        assert_eq!(seen[0], "obj-00000");
        assert_eq!(seen[199], "obj-00199");
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.vm().heap_bytes(), 0);
    }

    #[test]
    fn scan_of_oversized_store_rereads_from_swap() {
        let mut s = VmObjectStore::new(8 * VM_PAGE, &dir("thrash"), None).unwrap();
        for i in 0..100u32 {
            s.write(&[i as u8; 1024]).unwrap();
        }
        let before = s.vm().io_snapshot().disk_read_bytes;
        s.scan(|_| {}).unwrap();
        let after = s.vm().io_snapshot().disk_read_bytes;
        assert!(after > before, "sequential scan faults swapped pages back");
    }

    #[test]
    fn tiny_capacity_rejected() {
        assert!(OsVm::new(100, &dir("tiny")).is_err());
    }
}
