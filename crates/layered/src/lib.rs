//! # pangea-layered
//!
//! Mechanically faithful simulations of the layered systems the paper
//! compares Pangea against (§9): HDFS, Alluxio, Ignite, Spark, the OS
//! file system and virtual memory, a C-implemented Spark shuffle, and a
//! Redis-like aggregation server, plus the VM-pressured `unordered_map`
//! baseline.
//!
//! Design rule (DESIGN.md §2): these baselines *execute* the work the
//! paper attributes to layering — serialization at each boundary,
//! client↔server copies, double caching, per-object allocation, 16 KB
//! Ignite pages with compaction, waves-of-tasks scheduling, RESP round
//! trips — rather than modeling it with fitted constants. Failure modes
//! the paper plots as gaps (Alluxio memory refusal, Ignite's segfault,
//! Redis OOM, DBMIN blocking) surface as [`pangea_common::PangeaError`]
//! values with `is_reported_as_gap() == true`.
//!
//! Deliberately **not** built on `pangea-core`: a baseline must not
//! benefit from Pangea's unified buffer pool.

pub mod alluxio;
pub mod hdfs;
pub mod ignite;
pub mod osfile;
pub mod osvm;
pub mod redis;
pub mod shuffle;
pub mod spark;
pub mod store;

pub use alluxio::SimAlluxio;
pub use hdfs::SimHdfs;
pub use ignite::{SimIgnite, IGNITE_PAGE};
pub use osfile::OsFileSystem;
pub use osvm::{OsVm, VmObjectStore, VmPtr, VM_PAGE};
pub use redis::{RedisLike, StlVmMap};
pub use shuffle::CSparkShuffle;
pub use spark::{SimSpark, SparkConfig};
pub use store::{load_dataset, DataStore};
