//! Key-value aggregation baselines (paper §9.2.3, Table 4).
//!
//! * [`RedisLike`] — a Redis-style client/server store: every operation
//!   round-trips through RESP-encoded request and response buffers
//!   (serialize + copy both ways, which is why "Redis incurs significant
//!   latency [...] it adopts a client/server architecture"), and the
//!   server fails hard when its memory budget is exhausted (the paper's
//!   "failed" row at 300 M keys).
//! * [`StlVmMap`] — `STL unordered_map`: an in-process hash map whose
//!   heap lives under an OS-VM budget. Once the table outgrows the
//!   budget, its randomly-distributed accesses page-fault with
//!   probability proportional to the overflow, paying real swap I/O —
//!   reproducing the paper's blow-up at 200 M keys (47 s → 7657 s).

use crate::osvm::VM_PAGE;
use pangea_common::{FxHashMap, IoStats, IoStatsSnapshot, PangeaError, Result};
use pangea_storage::{DiskConfig, DiskManager};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Approximate heap footprint of one `unordered_map` node
/// (bucket slot + node header + key/value storage rounding).
const STL_NODE_OVERHEAD: usize = 48;

/// A Redis-style remote aggregation store.
#[derive(Debug)]
pub struct RedisLike {
    store: FxHashMap<Vec<u8>, i64>,
    mem_budget: u64,
    mem_used: u64,
    stats: IoStats,
}

impl RedisLike {
    /// A server allowed `mem_budget` bytes before it refuses writes.
    pub fn new(mem_budget: u64) -> Self {
        Self {
            store: FxHashMap::default(),
            mem_budget,
            mem_used: 0,
            stats: IoStats::new(),
        }
    }

    /// RESP-encodes a command (the client-side serialization cost).
    fn encode_command(args: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.extend_from_slice(format!("*{}\r\n", args.len()).as_bytes());
        for a in args {
            out.extend_from_slice(format!("${}\r\n", a.len()).as_bytes());
            out.extend_from_slice(a);
            out.extend_from_slice(b"\r\n");
        }
        out
    }

    /// Server-side parse of a RESP command (the deserialization cost).
    fn decode_command(buf: &[u8]) -> Result<Vec<Vec<u8>>> {
        let mut parts = Vec::new();
        let mut pos = 0;
        let read_line = |pos: &mut usize| -> Result<Vec<u8>> {
            let start = *pos;
            while *pos + 1 < buf.len() && !(buf[*pos] == b'\r' && buf[*pos + 1] == b'\n') {
                *pos += 1;
            }
            if *pos + 1 >= buf.len() {
                return Err(PangeaError::Corruption("truncated RESP frame".into()));
            }
            let line = buf[start..*pos].to_vec();
            *pos += 2;
            Ok(line)
        };
        let header = read_line(&mut pos)?;
        if header.first() != Some(&b'*') {
            return Err(PangeaError::Corruption("RESP frame missing array".into()));
        }
        let n: usize = std::str::from_utf8(&header[1..])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| PangeaError::Corruption("bad RESP count".into()))?;
        for _ in 0..n {
            let len_line = read_line(&mut pos)?;
            if len_line.first() != Some(&b'$') {
                return Err(PangeaError::Corruption("RESP frame missing bulk".into()));
            }
            let len: usize = std::str::from_utf8(&len_line[1..])
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| PangeaError::Corruption("bad RESP length".into()))?;
            if pos + len + 2 > buf.len() {
                return Err(PangeaError::Corruption("truncated RESP bulk".into()));
            }
            parts.push(buf[pos..pos + len].to_vec());
            pos += len + 2;
        }
        Ok(parts)
    }

    /// `INCRBY key delta` through the full request/response round trip.
    pub fn incr_by(&mut self, key: &[u8], delta: i64) -> Result<i64> {
        let delta_s = delta.to_string();
        let request = Self::encode_command(&[b"INCRBY", key, delta_s.as_bytes()]);
        self.stats.record_serialization(request.len());
        self.stats.record_copy(request.len()); // client → server
        self.stats.record_net(request.len());
        let parts = Self::decode_command(&request)?;
        debug_assert_eq!(parts.len(), 3);
        let key = &parts[1];
        let delta: i64 = std::str::from_utf8(&parts[2])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| PangeaError::Corruption("bad INCRBY delta".into()))?;
        let value = match self.store.get_mut(key.as_slice()) {
            Some(v) => {
                *v += delta;
                *v
            }
            None => {
                let need = (key.len() + 8 + STL_NODE_OVERHEAD) as u64;
                if self.mem_used + need > self.mem_budget {
                    return Err(PangeaError::SystemFailure(
                        "Redis: OOM command not allowed when used memory > 'maxmemory'".into(),
                    ));
                }
                self.mem_used += need;
                self.store.insert(key.clone(), delta);
                delta
            }
        };
        // Response: ":<n>\r\n" back to the client.
        let response = format!(":{value}\r\n");
        self.stats.record_serialization(response.len());
        self.stats.record_copy(response.len()); // server → client
        self.stats.record_net(response.len());
        Ok(value)
    }

    /// `GET key` (also a full round trip).
    pub fn get(&mut self, key: &[u8]) -> Result<Option<i64>> {
        let request = Self::encode_command(&[b"GET", key]);
        self.stats.record_serialization(request.len());
        self.stats.record_net(request.len());
        let parts = Self::decode_command(&request)?;
        let v = self.store.get(parts[1].as_slice()).copied();
        let response = match v {
            Some(n) => format!("${}\r\n{n}\r\n", n.to_string().len()),
            None => "$-1\r\n".to_string(),
        };
        self.stats.record_serialization(response.len());
        self.stats.record_net(response.len());
        Ok(v)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Interfacing counters.
    pub fn stats(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }
}

/// `STL unordered_map` under a virtual-memory budget.
#[derive(Debug)]
pub struct StlVmMap {
    map: HashMap<Vec<u8>, i64>,
    heap_bytes: u64,
    budget: u64,
    /// Fault accumulator: deficit ratio accrues per op; each whole unit
    /// is one page fault (deterministic stand-in for random paging).
    fault_acc: f64,
    swap: Arc<DiskManager>,
    faults: u64,
}

impl StlVmMap {
    /// A map whose process is allowed `budget` bytes of RAM, swapping
    /// under `swap_dir` at an optional device bandwidth.
    pub fn new(budget: u64, swap_dir: &Path, bandwidth: Option<u64>) -> Result<Self> {
        let mut cfg = DiskConfig::under(swap_dir, 1);
        if let Some(bw) = bandwidth {
            cfg = cfg.with_bandwidth(bw);
        }
        Ok(Self {
            map: HashMap::new(),
            heap_bytes: 0,
            budget: budget.max(VM_PAGE as u64),
            fault_acc: 0.0,
            swap: Arc::new(DiskManager::new(cfg)?),
            faults: 0,
        })
    }

    /// Inserts or accumulates `key += delta`, paying real swap I/O once
    /// the table outgrows the budget.
    pub fn merge(&mut self, key: &[u8], delta: i64) -> Result<()> {
        match self.map.get_mut(key) {
            Some(v) => *v += delta,
            None => {
                self.heap_bytes += (key.len() + 8 + STL_NODE_OVERHEAD) as u64;
                self.map.insert(key.to_vec(), delta);
            }
        }
        if self.heap_bytes > self.budget {
            // Hash-table accesses are uniform over the heap, so the
            // fault probability is the non-resident fraction.
            let deficit = 1.0 - (self.budget as f64 / self.heap_bytes as f64);
            self.fault_acc += deficit;
            let page = [0u8; VM_PAGE];
            let mut buf = [0u8; VM_PAGE];
            while self.fault_acc >= 1.0 {
                self.fault_acc -= 1.0;
                // One fault: write a dirty page out, read another in —
                // real (throttleable) device traffic.
                let slot = (self.faults % 256) * VM_PAGE as u64;
                self.swap.write_at(0, "swap", slot, &page)?;
                self.swap.read_at(0, "swap", slot, &mut buf)?;
                self.faults += 1;
            }
        }
        Ok(())
    }

    /// Swap-device counters.
    pub fn io_snapshot(&self) -> IoStatsSnapshot {
        self.swap.stats().snapshot()
    }

    /// Current value of `key`.
    pub fn get(&self, key: &[u8]) -> Option<i64> {
        self.map.get(key).copied()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Page faults taken so far.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Estimated heap footprint.
    pub fn heap_bytes(&self) -> u64 {
        self.heap_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "pangea-redis-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn redis_incr_roundtrip() {
        let mut r = RedisLike::new(1 << 20);
        assert_eq!(r.incr_by(b"k", 3).unwrap(), 3);
        assert_eq!(r.incr_by(b"k", 4).unwrap(), 7);
        assert_eq!(r.get(b"k").unwrap(), Some(7));
        assert_eq!(r.get(b"missing").unwrap(), None);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn redis_pays_network_serialization_both_ways() {
        let mut r = RedisLike::new(1 << 20);
        r.incr_by(b"some-key", 1).unwrap();
        let s = r.stats();
        assert!(s.net_messages >= 2, "request and response");
        assert!(s.serialized_bytes > 16);
    }

    #[test]
    fn redis_fails_hard_at_maxmemory() {
        let mut r = RedisLike::new(1024);
        let err = loop {
            let k = format!("key-{}", r.len());
            match r.incr_by(k.as_bytes(), 1) {
                Ok(_) => {}
                Err(e) => break e,
            }
        };
        assert!(err.is_reported_as_gap());
        assert!(err.to_string().contains("OOM"));
        // Existing keys still work (Redis keeps serving reads/updates).
        assert!(r.incr_by(b"key-0", 1).is_ok());
    }

    #[test]
    fn stl_map_aggregates_without_faults_in_budget() {
        let mut m = StlVmMap::new(1 << 20, &dir("fit"), None).unwrap();
        for i in 0..100u32 {
            m.merge(format!("k{}", i % 10).as_bytes(), 1).unwrap();
        }
        assert_eq!(m.len(), 10);
        assert_eq!(m.get(b"k3"), Some(10));
        assert_eq!(m.faults(), 0);
    }

    #[test]
    fn stl_map_thrashes_beyond_budget() {
        let mut m = StlVmMap::new(4096, &dir("thrash"), None).unwrap();
        for i in 0..2000u32 {
            m.merge(format!("key-{i:06}").as_bytes(), 1).unwrap();
        }
        assert!(m.heap_bytes() > 4096);
        assert!(
            m.faults() > 500,
            "deep overflow faults on most ops: {}",
            m.faults()
        );
    }
}
