//! The TCP implementation of [`Transport`].
//!
//! Each peer is a `pangead` server (or anything speaking the
//! [`crate::proto`] protocol). Connections are pooled per peer: a
//! request checks a connection out, performs one framed round trip, and
//! checks it back in; a stale pooled connection (peer restarted, socket
//! torn down) is dropped and the request retried once on a fresh
//! connection. Byte accounting matches [`SimNetwork`]'s exactly — payload
//! bytes into `record_net`/`record_copy`, paced by the same token-bucket
//! [`Throttle`] — while wire framing and protocol headers are charged to
//! `record_serialization`, so figures comparing the two backends line up
//! (DESIGN.md §2a).
//!
//! This transport deliberately speaks *legacy* correlation-0 frames
//! (one request in flight per connection, strict-serial): `transfer` is
//! a single idempotency-guarded round trip, so multiplexing buys it
//! nothing and the unflagged prefix keeps it compatible with
//! pre-correlation peers. Pipelined, correlated exchanges (windowed
//! ingest/repair pushes with credit-based backpressure) live in
//! [`crate::client::PangeaClient`] instead (DESIGN.md §2i).
//!
//! [`SimNetwork`]: https://docs.rs/pangea-cluster
//! [`Throttle`]: pangea_common::Throttle

use crate::frame::{read_frame, write_frame};
use crate::proto::{Request, Response};
use crate::transport::Transport;
use pangea_common::{FxHashMap, IoStats, NodeId, PangeaError, Result, Throttle};
use parking_lot::Mutex;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

/// Pooled idle connections kept per peer.
const MAX_POOLED_PER_PEER: usize = 4;

/// A real TCP cluster interconnect with per-peer connection pooling.
#[derive(Debug)]
pub struct TcpTransport {
    peers: FxHashMap<NodeId, SocketAddr>,
    pool: Mutex<FxHashMap<NodeId, Vec<TcpStream>>>,
    throttle: Arc<Throttle>,
    stats: Arc<IoStats>,
    /// Shared handshake secret sent as a `Hello` on every fresh
    /// connection (pooled connections are already authenticated).
    secret: Option<String>,
}

impl TcpTransport {
    /// A transport reaching `peers`, unthrottled.
    pub fn new(peers: impl IntoIterator<Item = (NodeId, SocketAddr)>) -> Self {
        Self::build(peers, Throttle::unlimited())
    }

    /// A transport paced at `bytes_per_sec` aggregate payload bandwidth,
    /// mirroring `SimNetwork::with_bandwidth`.
    pub fn with_bandwidth(
        peers: impl IntoIterator<Item = (NodeId, SocketAddr)>,
        bytes_per_sec: u64,
    ) -> Self {
        Self::build(peers, Throttle::bytes_per_sec(bytes_per_sec))
    }

    fn build(peers: impl IntoIterator<Item = (NodeId, SocketAddr)>, throttle: Throttle) -> Self {
        Self {
            peers: peers.into_iter().collect(),
            pool: Mutex::new(FxHashMap::default()),
            throttle: Arc::new(throttle),
            stats: Arc::new(IoStats::new()),
            secret: None,
        }
    }

    /// Sends `secret` in a [`Request::Hello`] handshake on every fresh
    /// connection, for fleets of `pangead`s bound with a shared secret.
    pub fn with_secret(mut self, secret: &str) -> Self {
        self.secret = Some(secret.to_string());
        self
    }

    /// The peers this transport can reach.
    pub fn peer_addrs(&self) -> &FxHashMap<NodeId, SocketAddr> {
        &self.peers
    }

    fn addr_of(&self, to: NodeId) -> Result<SocketAddr> {
        self.peers
            .get(&to)
            .copied()
            .ok_or(PangeaError::NodeUnavailable(to))
    }

    /// Idle pooled connection for `to`, if any.
    fn checkout(&self, to: NodeId) -> Option<TcpStream> {
        self.pool.lock().get_mut(&to).and_then(Vec::pop)
    }

    /// Returns a healthy connection to the pool (bounded per peer).
    fn checkin(&self, to: NodeId, stream: TcpStream) {
        let mut pool = self.pool.lock();
        let slot = pool.entry(to).or_default();
        if slot.len() < MAX_POOLED_PER_PEER {
            slot.push(stream);
        }
    }

    /// Number of idle pooled connections for `to` (diagnostics).
    pub fn pooled_connections(&self, to: NodeId) -> usize {
        self.pool.lock().get(&to).map_or(0, Vec::len)
    }

    /// Performs one framed request/response round trip with `to`.
    ///
    /// Protocol bytes (frames + headers) are charged as serialization;
    /// the caller is responsible for `record_net` payload accounting
    /// (done by [`Transport::transfer`] so raw deliveries and higher RPCs
    /// count the same way the simulation does).
    pub fn request(&self, to: NodeId, req: &Request) -> Result<Response> {
        let addr = self.addr_of(to)?;
        let encoded = req.encode();
        self.stats
            .record_serialization(encoded.len() + crate::frame::FRAME_OVERHEAD);
        // A pooled connection may have been closed by the peer while it
        // sat idle. Retrying is only safe when the peer provably never
        // processed the request: a failed frame write, or a clean EOF
        // before any response byte (pangead always writes a response
        // before closing, so zero response bytes means zero processing).
        // Any later failure could duplicate a non-idempotent operation,
        // so it propagates instead of retrying.
        if let Some(stream) = self.checkout(to) {
            match self.round_trip(stream, &encoded) {
                Ok((resp, stream)) => {
                    self.checkin(to, stream);
                    return resp.into_result();
                }
                Err(RoundTripError::NotProcessed) => {}
                Err(RoundTripError::Fatal(e)) => return Err(e),
            }
        }
        let stream = TcpStream::connect(addr).map_err(|e| self.connect_error(to, addr, e))?;
        stream.set_nodelay(true).ok();
        let stream = self.handshake(stream)?;
        let (resp, stream) = self.round_trip(stream, &encoded).map_err(|e| match e {
            RoundTripError::NotProcessed => PangeaError::Io(Arc::new(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "peer closed a fresh connection before responding",
            ))),
            RoundTripError::Fatal(e) => e,
        })?;
        self.checkin(to, stream);
        resp.into_result()
    }

    fn connect_error(&self, to: NodeId, addr: SocketAddr, e: std::io::Error) -> PangeaError {
        PangeaError::Remote(format!("connecting {to} at {addr}: {e}"))
    }

    /// Authenticates a fresh connection when a secret is configured.
    fn handshake(&self, stream: TcpStream) -> Result<TcpStream> {
        let Some(secret) = &self.secret else {
            return Ok(stream);
        };
        let hello = Request::Hello {
            secret: secret.clone(),
        }
        .encode();
        self.stats
            .record_serialization(hello.len() + crate::frame::FRAME_OVERHEAD);
        let (resp, stream) = self.round_trip(stream, &hello).map_err(|e| match e {
            RoundTripError::NotProcessed => PangeaError::Io(Arc::new(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "peer closed the connection during the handshake",
            ))),
            RoundTripError::Fatal(e) => e,
        })?;
        resp.into_result()?;
        Ok(stream)
    }

    fn round_trip(
        &self,
        mut stream: TcpStream,
        encoded: &[u8],
    ) -> std::result::Result<(Response, TcpStream), RoundTripError> {
        if let Err(e) = write_frame(&mut stream, encoded) {
            // The request never fully left this side.
            return Err(match e {
                PangeaError::Io(_) => RoundTripError::NotProcessed,
                other => RoundTripError::Fatal(other),
            });
        }
        let payload = match read_frame(&mut stream) {
            // Clean EOF with zero response bytes: the peer closed the
            // idle connection without seeing the request.
            Ok(None) => return Err(RoundTripError::NotProcessed),
            Ok(Some(p)) => p,
            // Mid-response failure: the peer may have executed the
            // request; never silently retry.
            Err(e) => return Err(RoundTripError::Fatal(e)),
        };
        self.stats
            .record_serialization(payload.len() + crate::frame::FRAME_OVERHEAD);
        match Response::decode(&payload) {
            Ok(resp) => Ok((resp, stream)),
            Err(e) => Err(RoundTripError::Fatal(e)),
        }
    }
}

/// Why one request/response exchange failed, split by whether the peer
/// could have processed the request (governs retry safety).
enum RoundTripError {
    /// The request provably never reached the peer's handler.
    NotProcessed,
    /// The peer may have processed the request; the error must surface.
    Fatal(PangeaError),
}

impl Transport for TcpTransport {
    /// Moves `payload` to `to` over TCP via the peer's `Deliver` endpoint.
    ///
    /// Accounting mirrors the simulation: local deliveries are free;
    /// remote deliveries pay the throttle and count `payload.len()` net
    /// bytes plus one copy (the receive-side buffer).
    fn transfer(&self, from: NodeId, to: NodeId, payload: &[u8]) -> Result<Vec<u8>> {
        if from == to {
            return Ok(payload.to_vec());
        }
        self.throttle.consume(payload.len());
        self.stats.record_net(payload.len());
        self.stats.record_copy(payload.len());
        let resp = self.request(
            to,
            &Request::Deliver {
                from: from.raw(),
                payload: payload.to_vec(),
            },
        )?;
        match resp {
            Response::Delivered { len, checksum } => {
                if len != payload.len() as u64 || checksum != pangea_common::fx_hash64(payload) {
                    return Err(PangeaError::Corruption(format!(
                        "delivery ack digest mismatch for a {} B payload",
                        payload.len()
                    )));
                }
                Ok(payload.to_vec())
            }
            other => Err(PangeaError::Remote(format!(
                "unexpected delivery response: {other:?}"
            ))),
        }
    }

    fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    fn kind(&self) -> &'static str {
        "tcp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_peer_is_unavailable() {
        let t = TcpTransport::new([]);
        assert!(matches!(
            t.transfer(NodeId(0), NodeId(1), b"x"),
            Err(PangeaError::NodeUnavailable(NodeId(1)))
        ));
    }

    #[test]
    fn local_delivery_needs_no_peer() {
        let t = TcpTransport::new([]);
        assert_eq!(t.transfer(NodeId(3), NodeId(3), b"loc").unwrap(), b"loc");
        assert_eq!(t.bytes_moved(), 0);
    }

    #[test]
    fn unreachable_peer_reports_remote_error() {
        // Port 9 on localhost: nothing listens there in the test env.
        let addr: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let t = TcpTransport::new([(NodeId(1), addr)]);
        match t.transfer(NodeId(0), NodeId(1), b"x") {
            Err(PangeaError::Remote(m)) => assert!(m.contains("node#1")),
            other => panic!("expected Remote error, got {other:?}"),
        }
    }
}
