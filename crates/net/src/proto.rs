//! The pangead request/response protocol.
//!
//! Messages cover the core node operations the cluster layer needs from a
//! remote peer: set creation, sequential append, page enumeration and
//! fetch (the recovery read path), full scans, shuffle receive, the raw
//! transport delivery used by [`crate::TcpTransport::transfer`], and a
//! statistics probe. Encoding reuses `pangea_common::codec`: every field
//! is a length-prefixed record in a [`ByteWriter`] stream, so the wire
//! format inherits the codec's self-framing and its truncation checks.
//! One encoded message travels inside one [`crate::frame`] frame.

use pangea_common::{ByteReader, ByteWriter, PangeaError, Result};

/// A client/cluster → pangead message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// `createSet(name, durability)` with an optional page-size override
    /// (`None` uses the serving node's default).
    CreateSet {
        /// Locality-set name, unique per node.
        name: String,
        /// `"write-through"` or `"write-back"` (the paper's string form).
        durability: String,
        /// Page size override in bytes.
        page_size: Option<u64>,
    },
    /// Appends records through the sequential write service.
    Append {
        /// Target locality set.
        set: String,
        /// Record payloads, written in order.
        records: Vec<Vec<u8>>,
    },
    /// Enumerates a set's page ordinals (dense).
    PageNumbers {
        /// Target locality set.
        set: String,
    },
    /// Fetches one page's raw bytes — the recovery read path.
    FetchPage {
        /// Target locality set.
        set: String,
        /// Page ordinal.
        num: u64,
    },
    /// Reads every record of a set through the sequential read service.
    Scan {
        /// Target locality set.
        set: String,
    },
    /// Creates a shuffle service (`partitions` write-back locality sets
    /// named `<name>.part<i>`).
    ShuffleCreate {
        /// Shuffle name.
        name: String,
        /// Partition count.
        partitions: u32,
        /// Big-page size override in bytes.
        page_size: Option<u64>,
    },
    /// Delivers shuffle records for one partition (the shuffle-send of a
    /// remote mapper).
    ShuffleSend {
        /// Shuffle name.
        name: String,
        /// Destination partition.
        partition: u32,
        /// Record payloads.
        records: Vec<Vec<u8>>,
    },
    /// Seals all in-progress shuffle pages after the mappers finish.
    ShuffleFinish {
        /// Shuffle name.
        name: String,
    },
    /// Raw transport delivery: the byte-move primitive behind
    /// `Transport::transfer`. The receiver acknowledges with the payload.
    Deliver {
        /// Sending node (`u32::MAX` = external client).
        from: u32,
        /// Opaque payload.
        payload: Vec<u8>,
    },
    /// Reads the serving node's I/O counters.
    Stats,
}

/// A pangead → client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Success without payload.
    Ok,
    /// Set created; carries the node-local set id.
    Created {
        /// Raw `SetId` on the serving node.
        set: u64,
    },
    /// Records appended.
    Appended {
        /// Number of records written.
        records: u64,
    },
    /// Page enumeration.
    Pages {
        /// Dense page ordinals.
        nums: Vec<u64>,
    },
    /// One page's raw bytes.
    Page {
        /// The page image.
        bytes: Vec<u8>,
    },
    /// Scanned records, in storage order.
    Records {
        /// Record payloads.
        records: Vec<Vec<u8>>,
    },
    /// Acknowledged raw delivery. Carries a digest rather than echoing
    /// the payload, so an ack costs a few bytes instead of doubling the
    /// wire traffic of every transfer.
    Delivered {
        /// Bytes received.
        len: u64,
        /// `fx_hash64` of the received payload (integrity check).
        checksum: u64,
    },
    /// Counter snapshot of the serving node.
    Stats {
        /// Payload bytes received over the wire by this server.
        net_bytes: u64,
        /// Wire messages handled.
        net_messages: u64,
        /// Bytes read from the node's disks.
        disk_read_bytes: u64,
        /// Bytes written to the node's disks.
        disk_write_bytes: u64,
    },
    /// The operation failed on the serving node.
    Err {
        /// Display form of the remote error.
        message: String,
    },
}

// Opcodes. Stable over the protocol's life; add, never renumber.
const REQ_PING: u64 = 1;
const REQ_CREATE_SET: u64 = 2;
const REQ_APPEND: u64 = 3;
const REQ_PAGE_NUMBERS: u64 = 4;
const REQ_FETCH_PAGE: u64 = 5;
const REQ_SCAN: u64 = 6;
const REQ_SHUFFLE_CREATE: u64 = 7;
const REQ_SHUFFLE_SEND: u64 = 8;
const REQ_SHUFFLE_FINISH: u64 = 9;
const REQ_DELIVER: u64 = 10;
const REQ_STATS: u64 = 11;

const RESP_OK: u64 = 1;
const RESP_CREATED: u64 = 2;
const RESP_APPENDED: u64 = 3;
const RESP_PAGES: u64 = 4;
const RESP_PAGE: u64 = 5;
const RESP_RECORDS: u64 = 6;
const RESP_DELIVERED: u64 = 7;
const RESP_STATS: u64 = 8;
const RESP_ERR: u64 = 9;

fn put_list(w: &mut ByteWriter, items: &[Vec<u8>]) {
    w.write_record(&(items.len() as u64));
    for item in items {
        w.write_bytes(item);
    }
}

fn get_list(r: &mut ByteReader<'_>) -> Result<Vec<Vec<u8>>> {
    let n: u64 = r.read_record()?;
    let mut out = Vec::with_capacity(n.min(1 << 20) as usize);
    for _ in 0..n {
        out.push(r.read_bytes()?.to_vec());
    }
    Ok(out)
}

fn put_opt_u64(w: &mut ByteWriter, v: Option<u64>) {
    // 0 marks "absent"; legitimate values here (page sizes) are never 0.
    w.write_record(&v.unwrap_or(0));
}

fn get_opt_u64(r: &mut ByteReader<'_>) -> Result<Option<u64>> {
    let v: u64 = r.read_record()?;
    Ok(if v == 0 { None } else { Some(v) })
}

fn bad_opcode(kind: &str, op: u64) -> PangeaError {
    PangeaError::Corruption(format!("unknown {kind} opcode {op}"))
}

impl Request {
    /// Encodes this request into one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Self::Ping => w.write_record(&REQ_PING),
            Self::CreateSet {
                name,
                durability,
                page_size,
            } => {
                w.write_record(&REQ_CREATE_SET);
                w.write_record(name);
                w.write_record(durability);
                put_opt_u64(&mut w, *page_size);
            }
            Self::Append { set, records } => {
                w.write_record(&REQ_APPEND);
                w.write_record(set);
                put_list(&mut w, records);
            }
            Self::PageNumbers { set } => {
                w.write_record(&REQ_PAGE_NUMBERS);
                w.write_record(set);
            }
            Self::FetchPage { set, num } => {
                w.write_record(&REQ_FETCH_PAGE);
                w.write_record(set);
                w.write_record(num);
            }
            Self::Scan { set } => {
                w.write_record(&REQ_SCAN);
                w.write_record(set);
            }
            Self::ShuffleCreate {
                name,
                partitions,
                page_size,
            } => {
                w.write_record(&REQ_SHUFFLE_CREATE);
                w.write_record(name);
                w.write_record(&(*partitions as u64));
                put_opt_u64(&mut w, *page_size);
            }
            Self::ShuffleSend {
                name,
                partition,
                records,
            } => {
                w.write_record(&REQ_SHUFFLE_SEND);
                w.write_record(name);
                w.write_record(&(*partition as u64));
                put_list(&mut w, records);
            }
            Self::ShuffleFinish { name } => {
                w.write_record(&REQ_SHUFFLE_FINISH);
                w.write_record(name);
            }
            Self::Deliver { from, payload } => {
                w.write_record(&REQ_DELIVER);
                w.write_record(&(*from as u64));
                w.write_bytes(payload);
            }
            Self::Stats => w.write_record(&REQ_STATS),
        }
        w.into_bytes()
    }

    /// Decodes a request from one frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let op: u64 = r.read_record()?;
        Ok(match op {
            REQ_PING => Self::Ping,
            REQ_CREATE_SET => Self::CreateSet {
                name: r.read_record()?,
                durability: r.read_record()?,
                page_size: get_opt_u64(&mut r)?,
            },
            REQ_APPEND => Self::Append {
                set: r.read_record()?,
                records: get_list(&mut r)?,
            },
            REQ_PAGE_NUMBERS => Self::PageNumbers {
                set: r.read_record()?,
            },
            REQ_FETCH_PAGE => Self::FetchPage {
                set: r.read_record()?,
                num: r.read_record()?,
            },
            REQ_SCAN => Self::Scan {
                set: r.read_record()?,
            },
            REQ_SHUFFLE_CREATE => Self::ShuffleCreate {
                name: r.read_record()?,
                partitions: r.read_record::<u64>()? as u32,
                page_size: get_opt_u64(&mut r)?,
            },
            REQ_SHUFFLE_SEND => Self::ShuffleSend {
                name: r.read_record()?,
                partition: r.read_record::<u64>()? as u32,
                records: get_list(&mut r)?,
            },
            REQ_SHUFFLE_FINISH => Self::ShuffleFinish {
                name: r.read_record()?,
            },
            REQ_DELIVER => Self::Deliver {
                from: r.read_record::<u64>()? as u32,
                payload: r.read_bytes()?.to_vec(),
            },
            REQ_STATS => Self::Stats,
            other => return Err(bad_opcode("request", other)),
        })
    }
}

impl Response {
    /// Encodes this response into one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Self::Ok => w.write_record(&RESP_OK),
            Self::Created { set } => {
                w.write_record(&RESP_CREATED);
                w.write_record(set);
            }
            Self::Appended { records } => {
                w.write_record(&RESP_APPENDED);
                w.write_record(records);
            }
            Self::Pages { nums } => {
                w.write_record(&RESP_PAGES);
                w.write_record(&(nums.len() as u64));
                for n in nums {
                    w.write_record(n);
                }
            }
            Self::Page { bytes } => {
                w.write_record(&RESP_PAGE);
                w.write_bytes(bytes);
            }
            Self::Records { records } => {
                w.write_record(&RESP_RECORDS);
                put_list(&mut w, records);
            }
            Self::Delivered { len, checksum } => {
                w.write_record(&RESP_DELIVERED);
                w.write_record(len);
                w.write_record(checksum);
            }
            Self::Stats {
                net_bytes,
                net_messages,
                disk_read_bytes,
                disk_write_bytes,
            } => {
                w.write_record(&RESP_STATS);
                w.write_record(net_bytes);
                w.write_record(net_messages);
                w.write_record(disk_read_bytes);
                w.write_record(disk_write_bytes);
            }
            Self::Err { message } => {
                w.write_record(&RESP_ERR);
                w.write_record(message);
            }
        }
        w.into_bytes()
    }

    /// Decodes a response from one frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let op: u64 = r.read_record()?;
        Ok(match op {
            RESP_OK => Self::Ok,
            RESP_CREATED => Self::Created {
                set: r.read_record()?,
            },
            RESP_APPENDED => Self::Appended {
                records: r.read_record()?,
            },
            RESP_PAGES => {
                let n: u64 = r.read_record()?;
                let mut nums = Vec::with_capacity(n.min(1 << 20) as usize);
                for _ in 0..n {
                    nums.push(r.read_record()?);
                }
                Self::Pages { nums }
            }
            RESP_PAGE => Self::Page {
                bytes: r.read_bytes()?.to_vec(),
            },
            RESP_RECORDS => Self::Records {
                records: get_list(&mut r)?,
            },
            RESP_DELIVERED => Self::Delivered {
                len: r.read_record()?,
                checksum: r.read_record()?,
            },
            RESP_STATS => Self::Stats {
                net_bytes: r.read_record()?,
                net_messages: r.read_record()?,
                disk_read_bytes: r.read_record()?,
                disk_write_bytes: r.read_record()?,
            },
            RESP_ERR => Self::Err {
                message: r.read_record()?,
            },
            other => return Err(bad_opcode("response", other)),
        })
    }

    /// Converts an error response into `Err`, passing others through.
    pub fn into_result(self) -> Result<Response> {
        match self {
            Self::Err { message } => Err(PangeaError::Remote(message)),
            other => Ok(other),
        }
    }
}

/// Encodes a [`PangeaError`] as the wire error response.
pub fn error_response(e: &PangeaError) -> Response {
    Response::Err {
        message: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(r: Request) {
        assert_eq!(Request::decode(&r.encode()).unwrap(), r);
    }

    fn roundtrip_resp(r: Response) {
        assert_eq!(Response::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::CreateSet {
            name: "events".into(),
            durability: "write-back".into(),
            page_size: Some(4096),
        });
        roundtrip_req(Request::CreateSet {
            name: "u".into(),
            durability: "write-through".into(),
            page_size: None,
        });
        roundtrip_req(Request::Append {
            set: "events".into(),
            records: vec![b"a".to_vec(), vec![], b"ccc".to_vec()],
        });
        roundtrip_req(Request::PageNumbers { set: "s".into() });
        roundtrip_req(Request::FetchPage {
            set: "s".into(),
            num: 17,
        });
        roundtrip_req(Request::Scan { set: "s".into() });
        roundtrip_req(Request::ShuffleCreate {
            name: "wc".into(),
            partitions: 8,
            page_size: None,
        });
        roundtrip_req(Request::ShuffleSend {
            name: "wc".into(),
            partition: 3,
            records: vec![b"k|1".to_vec()],
        });
        roundtrip_req(Request::ShuffleFinish { name: "wc".into() });
        roundtrip_req(Request::Deliver {
            from: u32::MAX,
            payload: vec![0, 1, 2, 255],
        });
        roundtrip_req(Request::Stats);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::Created { set: 9 });
        roundtrip_resp(Response::Appended { records: 1000 });
        roundtrip_resp(Response::Pages {
            nums: vec![0, 1, 2, 9],
        });
        roundtrip_resp(Response::Page {
            bytes: vec![7; 4096],
        });
        roundtrip_resp(Response::Records {
            records: vec![b"x".to_vec(), b"yy".to_vec()],
        });
        roundtrip_resp(Response::Delivered {
            len: 3,
            checksum: 0x1234_5678_9abc_def0,
        });
        roundtrip_resp(Response::Stats {
            net_bytes: 1,
            net_messages: 2,
            disk_read_bytes: 3,
            disk_write_bytes: 4,
        });
        roundtrip_resp(Response::Err {
            message: "set 'x' missing".into(),
        });
    }

    #[test]
    fn unknown_opcodes_are_corruption() {
        let mut w = pangea_common::ByteWriter::new();
        w.write_record(&999u64);
        assert!(matches!(
            Request::decode(w.as_bytes()),
            Err(PangeaError::Corruption(_))
        ));
        assert!(matches!(
            Response::decode(w.as_bytes()),
            Err(PangeaError::Corruption(_))
        ));
    }

    #[test]
    fn truncated_message_is_an_error() {
        let enc = Request::Append {
            set: "s".into(),
            records: vec![b"abc".to_vec()],
        }
        .encode();
        for cut in 1..enc.len() {
            assert!(
                Request::decode(&enc[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn err_response_converts_to_remote_error() {
        let r = error_response(&PangeaError::usage("nope"));
        match r.into_result() {
            Err(PangeaError::Remote(m)) => assert!(m.contains("nope")),
            other => panic!("expected Remote error, got {other:?}"),
        }
    }
}
