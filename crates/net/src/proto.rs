//! The pangead request/response protocol.
//!
//! Messages cover the core node operations the cluster layer needs from a
//! remote peer: set creation, sequential append, page enumeration and
//! fetch (the recovery read path), full scans, shuffle receive, the raw
//! transport delivery used by `TcpTransport`'s `transfer`, and a
//! statistics probe. Encoding reuses `pangea_common::codec`: every field
//! is a length-prefixed record in a [`ByteWriter`] stream, so the wire
//! format inherits the codec's self-framing and its truncation checks.
//! One encoded message travels inside one [`crate::frame`] frame.

use crate::wire::{ReduceSpec, RepairFilter, SchemeSpec, TaskSpec, WireCatalogEntry, WireWorker};
use pangea_common::{ByteReader, ByteWriter, PangeaError, Result};
use pangea_obs::TraceCtx;

/// A client/cluster → pangead message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Shared-secret handshake. On daemons configured with a secret this
    /// must be the first message of every connection; other requests are
    /// answered with [`Response::Denied`] until it succeeds.
    Hello {
        /// The deployment's shared secret.
        secret: String,
    },
    /// `createSet(name, durability)` with an optional page-size override
    /// (`None` uses the serving node's default).
    CreateSet {
        /// Locality-set name, unique per node.
        name: String,
        /// `"write-through"` or `"write-back"` (the paper's string form).
        durability: String,
        /// Page size override in bytes.
        page_size: Option<u64>,
    },
    /// Appends records through the sequential write service.
    Append {
        /// Target locality set.
        set: String,
        /// Record payloads, written in order.
        records: Vec<Vec<u8>>,
    },
    /// Enumerates a set's page ordinals (dense).
    PageNumbers {
        /// Target locality set.
        set: String,
    },
    /// Fetches one page's raw bytes — the recovery read path.
    FetchPage {
        /// Target locality set.
        set: String,
        /// Page ordinal.
        num: u64,
    },
    /// Reads every record of a set through the sequential read service.
    Scan {
        /// Target locality set.
        set: String,
    },
    /// Creates a shuffle service (`partitions` write-back locality sets
    /// named `<name>.part<i>`).
    ShuffleCreate {
        /// Shuffle name.
        name: String,
        /// Partition count.
        partitions: u32,
        /// Big-page size override in bytes.
        page_size: Option<u64>,
    },
    /// Delivers shuffle records for one partition (the shuffle-send of a
    /// remote mapper).
    ShuffleSend {
        /// Shuffle name.
        name: String,
        /// Destination partition.
        partition: u32,
        /// Record payloads.
        records: Vec<Vec<u8>>,
    },
    /// Seals all in-progress shuffle pages after the mappers finish.
    ShuffleFinish {
        /// Shuffle name.
        name: String,
    },
    /// Raw transport delivery: the byte-move primitive behind
    /// `Transport::transfer`. The receiver acknowledges with the payload.
    Deliver {
        /// Sending node (`u32::MAX` = external client).
        from: u32,
        /// Opaque payload.
        payload: Vec<u8>,
    },
    /// Reads the serving node's I/O counters.
    Stats,
    /// Drops a locality set (used by distributed-set teardown).
    DropSet {
        /// Target locality set.
        set: String,
    },
    /// Counts a set's records server-side (no payload crosses the wire
    /// — diagnostics like `total_records` stay O(1) in wire bytes).
    Count {
        /// Target locality set.
        set: String,
    },

    // ---- Worker→worker recovery (peer repair) -----------------------
    /// Record hashes (`fx_hash64`) of a local set, in storage order —
    /// the peer pull a replacement uses to learn the surviving share of
    /// a round-robin recovery target without moving any payload.
    /// Paginated by a `(page, record)` cursor so a huge set can never
    /// overflow one reply frame and each chunk costs only its own scan:
    /// the server returns at most [`HASH_CHUNK`] hashes from the cursor
    /// on, with [`Response::Hashes::next`] carrying the resume point.
    HashList {
        /// Target locality set.
        set: String,
        /// Page ordinal to start at (0 for the first chunk).
        start_page: u64,
        /// Records to skip within the starting page.
        start_record: u64,
    },
    /// Opens a repair session for `set` on the replacement node: the
    /// session's dedup ledger is seeded with the record hashes of every
    /// peer in `present_from` (pulled worker→worker via [`Request::HashList`]),
    /// so subsequent [`Request::RecoverAppend`]s restore each lost
    /// record exactly once. Replaces any existing session for the set.
    RecoverBegin {
        /// The recovery target set.
        set: String,
        /// Peer `pangead` addresses holding the surviving share.
        present_from: Vec<String>,
    },
    /// Survivor→replacement delivery of candidate records: the session
    /// appends only records its ledger has not seen, making concurrent
    /// pushes from several survivors (and retries) idempotent.
    RecoverAppend {
        /// The recovery target set (must have an open session).
        set: String,
        /// Candidate record payloads.
        records: Vec<Vec<u8>>,
    },
    /// Seals the repair session and returns its append totals.
    RecoverEnd {
        /// The recovery target set.
        set: String,
    },
    /// Record hashes already *present* in an open repair session's
    /// dedup ledger (seeded at [`Request::RecoverBegin`] from the
    /// target's own records plus its peers' surviving shares) —
    /// paginated by an index cursor like [`Request::HashList`], at most
    /// [`HASH_CHUNK`] hashes per reply. A survivor running an
    /// [`crate::wire::RepairFilter::Absent`] push pulls this from the
    /// replacement and filters at the source, so the surviving share's
    /// payload never crosses the wire.
    RepairLedger {
        /// The recovery target set (must have an open session).
        set: String,
        /// Index of the first ledger hash to return (0 for the first
        /// chunk).
        start: u64,
    },
    /// Driver→survivor orchestration: scan the local share of
    /// `source_set`, keep records matching `filter`, and stream them in
    /// batches straight to `target_set` on the `pangead` at
    /// `target_addr` — the driver never touches the payload.
    RecoverPush {
        /// The survivor-local source set to scan.
        source_set: String,
        /// The recovery target set on the replacement.
        target_set: String,
        /// The replacement `pangead`'s address.
        target_addr: String,
        /// Which scanned records to ship.
        filter: RepairFilter,
    },

    // ---- Distributed map-shuffle (task shipping + push shuffle) -----
    /// Driver→worker: run one shipped map task — scan the local share of
    /// the task's input, apply its declarative map, and stream routed
    /// batches straight to each destination worker's ingest session.
    /// The driver never touches the record payload.
    TaskRun {
        /// The task, wire form.
        spec: TaskSpec,
    },
    /// Opens a shuffle-ingest session for `set` on a destination worker.
    /// The local `set` share is truncated first — a begin is the
    /// idempotent open of a *fresh* attempt, so partial output from a
    /// failed prior attempt never leaks into the retry. Mirrors
    /// [`Request::RecoverBegin`]'s session pattern, but the dedup ledger
    /// tracks provenance tags ([`crate::wire::ingest_tag`]) instead of
    /// record content: shuffle output may contain honest duplicates.
    IngestBegin {
        /// The ingest target set (must already exist on the node).
        set: String,
        /// When present, the session runs in *reducing* mode: incoming
        /// records are `key|value` partials folded into a keyed
        /// accumulator and materialized at [`Request::IngestEnd`],
        /// instead of being appended record-for-record.
        reduce: Option<ReduceSpec>,
    },
    /// Mapper→destination delivery of routed records, each carrying its
    /// provenance tag: the session appends only tags its ledger has not
    /// seen, making within-attempt RPC retries (lost acks) idempotent.
    IngestAppend {
        /// The ingest target set (must have an open session).
        set: String,
        /// `(tag, record)` pairs.
        entries: Vec<(u64, Vec<u8>)>,
    },
    /// Seals the ingest session and returns its append totals.
    /// Idempotent via a sealed-totals tombstone, like
    /// [`Request::RecoverEnd`].
    IngestEnd {
        /// The ingest target set.
        set: String,
    },

    // ---- Manager (pangea-mgr) requests: membership ------------------
    /// Registers a worker with the manager. `slot` pins a node id — a
    /// replacement worker re-registers its predecessor's slot; `None`
    /// takes the next free slot.
    MgrRegisterWorker {
        /// The address the worker's `pangead` serves on.
        addr: String,
        /// Explicit node slot (raw `NodeId`), or `None` for the next one.
        slot: Option<u64>,
    },
    /// Worker liveness heartbeat.
    MgrHeartbeat {
        /// The sender's node slot.
        node: u32,
        /// The sender's registration epoch.
        epoch: u64,
    },
    /// Clean worker shutdown: deregisters the slot.
    MgrDeregisterWorker {
        /// The sender's node slot.
        node: u32,
        /// The sender's registration epoch.
        epoch: u64,
    },
    /// Membership snapshot (sweeps liveness first).
    MgrListWorkers,

    // ---- Manager requests: catalog + statistics DB ------------------
    /// Registers a distributed set in the wire-served catalog.
    MgrRegisterSet {
        /// Cluster-wide set name.
        name: String,
        /// Its partitioning scheme (declarative form).
        scheme: SchemeSpec,
    },
    /// Removes a set from the catalog (and its replica group).
    MgrDeregisterSet {
        /// Cluster-wide set name.
        name: String,
    },
    /// Looks up one catalog entry.
    MgrEntry {
        /// Cluster-wide set name.
        name: String,
    },
    /// All registered set names, sorted.
    MgrSetNames,
    /// Adds dispatch counts to a set's statistics.
    MgrAddStats {
        /// Cluster-wide set name.
        name: String,
        /// Objects dispatched.
        objects: u64,
        /// Payload bytes dispatched.
        bytes: u64,
    },
    /// Puts two sets in the same replica group (`registerReplica`).
    MgrLinkReplicas {
        /// First set.
        a: String,
        /// Second set.
        b: String,
    },
    /// Members of a replica group.
    MgrGroupMembers {
        /// Raw `ReplicaGroupId`.
        group: u64,
    },
    /// All replica groups, ascending.
    MgrGroups,
    /// The statistics service: the group member organized by `key`.
    MgrBestReplica {
        /// The set whose group is consulted.
        set: String,
        /// The desired partitioning key.
        key: String,
    },
    /// Pulls the serving process's observability state: every
    /// registered metric plus the retained span ring, paginated by a
    /// pair of cursors (metric index, span sequence number) like
    /// [`Request::HashList`]/[`Request::RepairLedger`]. Subsumes the
    /// ad-hoc [`Request::Stats`] RPC, which survives as a compat view.
    MetricsDump {
        /// Index of the first metric to return (0 for the first chunk).
        metrics_start: u64,
        /// Ring sequence number of the first span to return (0 for the
        /// first chunk; evicted spans are silently skipped).
        spans_start: u64,
    },
    /// Manager-served: pulls one job's fleet-wide spans from the
    /// scrape-loop's retained store, paginated by a plain index into
    /// the job's span list (0 for the first chunk).
    TraceQuery {
        /// The job whose stitched trace is wanted.
        job: u64,
        /// Index of the first span to return.
        start: u64,
    },
    /// Client → manager: contributes locally recorded spans to the
    /// fleet span store under a display name. Drivers use this to hand
    /// over their `DriverRpc` root spans — they are transient clients
    /// the scrape loop can never reach, yet every cross-node trace is
    /// rooted in one of their rings.
    TracePush {
        /// Display name the spans are attributed to (e.g. `driver`).
        node: String,
        /// `(ring seq, span)` records, oldest first.
        spans: Vec<crate::wire::WireSpan>,
    },
}

/// A pangead → client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Success without payload.
    Ok,
    /// Set created; carries the node-local set id.
    Created {
        /// Raw `SetId` on the serving node.
        set: u64,
    },
    /// Records appended.
    Appended {
        /// Number of records written.
        records: u64,
    },
    /// Page enumeration.
    Pages {
        /// Dense page ordinals.
        nums: Vec<u64>,
    },
    /// One page's raw bytes.
    Page {
        /// The page image.
        bytes: Vec<u8>,
    },
    /// Scanned records, in storage order.
    Records {
        /// Record payloads.
        records: Vec<Vec<u8>>,
    },
    /// Acknowledged raw delivery. Carries a digest rather than echoing
    /// the payload, so an ack costs a few bytes instead of doubling the
    /// wire traffic of every transfer.
    Delivered {
        /// Bytes received.
        len: u64,
        /// `fx_hash64` of the received payload (integrity check).
        checksum: u64,
    },
    /// Counter snapshot of the serving node.
    Stats {
        /// Payload bytes received over the wire by this server.
        net_bytes: u64,
        /// Wire messages handled.
        net_messages: u64,
        /// Bytes read from the node's disks.
        disk_read_bytes: u64,
        /// Bytes written to the node's disks.
        disk_write_bytes: u64,
        /// Peer-repair payload bytes this node moved (pushed to a peer
        /// or appended from one) during worker→worker recovery.
        repair_bytes: u64,
        /// Map-shuffle payload bytes this node moved (shipped to a peer
        /// or appended from one) during a distributed map-shuffle.
        shuffle_bytes: u64,
        /// Buffer-pool page pins satisfied from resident frames.
        paging_hits: u64,
        /// Buffer-pool page pins that had to read from disk.
        paging_misses: u64,
        /// Pages evicted from the pool to make room.
        paging_evictions: u64,
        /// Bytes written to disk by spills and dirty evictions.
        paging_spill_bytes: u64,
        /// Bytes currently resident in the buffer pool.
        pool_used_bytes: u64,
        /// Total buffer-pool capacity in bytes.
        pool_capacity_bytes: u64,
    },
    /// The operation failed on the serving node.
    Err {
        /// Display form of the remote error.
        message: String,
    },
    /// The connection failed the shared-secret handshake; decodes to
    /// [`PangeaError::Unauthenticated`] on the client.
    Denied {
        /// Why the peer was rejected.
        message: String,
    },
    /// The server is at its connection cap and refused this connection
    /// before serving anything; decodes to [`PangeaError::Busy`] on the
    /// client so callers can back off and redial without parsing prose.
    /// Handled structurally by the error conversions in this file (it
    /// never reaches a dispatch arm), which the opcode rule excludes to
    /// stay non-vacuous. // lint:allow(opcode-coverage)
    Busy {
        /// Why the connection was refused.
        message: String,
    },
    /// Worker registered (or re-registered) with the manager.
    WorkerRegistered {
        /// The assigned node slot.
        node: u32,
        /// The slot's fresh registration epoch.
        epoch: u64,
    },
    /// Membership snapshot.
    Workers {
        /// One record per known slot, ascending by node.
        workers: Vec<WireWorker>,
    },
    /// One catalog entry (or `None` when the set is unknown).
    CatalogEntry {
        /// The entry, if registered.
        entry: Option<WireCatalogEntry>,
    },
    /// A list of names (set names, group members, …), sorted by the
    /// serving operation's contract.
    Names {
        /// The names.
        names: Vec<String>,
    },
    /// A replica group id.
    Group {
        /// Raw `ReplicaGroupId`.
        group: u64,
    },
    /// All replica groups.
    Groups {
        /// Raw `ReplicaGroupId`s, ascending.
        groups: Vec<u64>,
    },
    /// An optional name (the statistics service's best-replica answer).
    MaybeName {
        /// The name, if any member matched.
        name: Option<String>,
    },
    /// A membership operation carried an out-of-date epoch; decodes to
    /// [`PangeaError::StaleEpoch`] on the client (zombie incarnations
    /// must be able to tell "replaced" from other failures).
    Stale {
        /// The node slot addressed.
        node: u32,
        /// The epoch the sender held.
        held: u64,
        /// The slot's current epoch at the manager.
        current: u64,
    },
    /// A one-shot scan reply would exceed the frame budget; decodes to
    /// [`PangeaError::ScanTooLarge`] so readers can fall back to the
    /// page-by-page `FetchPage` path without parsing error prose.
    ScanTooLarge {
        /// The set whose scan was refused.
        set: String,
        /// The per-reply byte budget.
        budget: u64,
    },
    /// A server-side record count.
    Count {
        /// Records in the set.
        records: u64,
    },
    /// Record hashes of a set (the [`Request::HashList`] reply).
    Hashes {
        /// `fx_hash64` of each record in this chunk, in storage order.
        hashes: Vec<u64>,
        /// When more records follow, the `(page, record)` cursor to
        /// resume the next chunk at.
        next: Option<(u64, u64)>,
    },
    /// Repair-session acknowledgement: what one [`Request::RecoverAppend`]
    /// batch (or, for [`Request::RecoverEnd`], the whole session)
    /// actually appended after dedup.
    RepairAck {
        /// Records appended.
        appended: u64,
        /// Payload bytes appended.
        bytes: u64,
        /// Credit grant: how many more in-flight batches the receiver's
        /// pool residency can absorb right now. `0` means "no
        /// information" (a legacy peer) — senders treat it as
        /// unconstrained; any other value caps the sender's pipeline
        /// window until the next ack revises it.
        credit: u64,
    },
    /// Outcome of one [`Request::TaskRun`] (a worker's full
    /// scan-map-route-stream pass over its local input share).
    TaskDone {
        /// Records scanned in the local input share.
        scanned: u64,
        /// Records that survived the map and were shipped.
        emitted: u64,
        /// Payload bytes shipped worker→worker.
        emitted_bytes: u64,
        /// Records the destinations appended after dedup.
        appended: u64,
        /// Payload bytes the destinations appended.
        appended_bytes: u64,
    },
    /// Ingest-session acknowledgement: what one [`Request::IngestAppend`]
    /// batch (or, for [`Request::IngestEnd`], the whole session)
    /// actually appended after tag dedup.
    IngestAck {
        /// Records appended.
        appended: u64,
        /// Payload bytes appended.
        bytes: u64,
        /// Credit grant, as in [`Response::RepairAck::credit`]: `0` is
        /// "no information", anything else caps the sender's window.
        credit: u64,
    },
    /// Outcome of one [`Request::RecoverPush`] (a survivor's full
    /// scan-filter-stream pass against the replacement).
    Pushed {
        /// Records scanned in the local source share.
        scanned: u64,
        /// Records that matched the filter and were shipped.
        pushed: u64,
        /// Payload bytes shipped worker→worker.
        pushed_bytes: u64,
        /// Records the replacement appended after dedup.
        appended: u64,
        /// Payload bytes the replacement appended.
        appended_bytes: u64,
    },
    /// One [`Request::MetricsDump`] chunk: metrics (sorted by name) and
    /// retained spans, with a resume cursor when either list has more.
    Metrics {
        /// Metric snapshots in this chunk.
        metrics: Vec<crate::wire::WireMetric>,
        /// `(ring seq, span)` records in this chunk, oldest first.
        spans: Vec<crate::wire::WireSpan>,
        /// When more remains, the `(metrics_start, spans_start)` cursor
        /// pair to resume the next chunk at.
        next: Option<(u64, u64)>,
    },
    /// One [`Request::TraceQuery`] chunk: the job's retained spans,
    /// each tagged with the node it was scraped from.
    Trace {
        /// `(node, span)` pairs in this chunk, store order.
        spans: Vec<(String, crate::wire::WireSpan)>,
        /// Fleet-wide spans known lost at query time (a worker ring
        /// wrapped past the scraper's cursor, or the store's own
        /// bounds) — nonzero means the tree may be incomplete.
        dropped: u64,
        /// When more remains, the start index to resume at.
        next: Option<u64>,
    },
}

/// Maximum hashes in one [`Response::Hashes`] chunk: 1 Mi hashes encode
/// to 12 MiB, comfortably inside [`crate::frame::MAX_FRAME`], so a hash
/// pull over a set of any size pages (by `(page, record)` cursor)
/// instead of overflowing a frame.
pub const HASH_CHUNK: usize = 1 << 20;

// Opcodes. Stable over the protocol's life; add, never renumber.
const REQ_PING: u64 = 1;
const REQ_CREATE_SET: u64 = 2;
const REQ_APPEND: u64 = 3;
const REQ_PAGE_NUMBERS: u64 = 4;
const REQ_FETCH_PAGE: u64 = 5;
const REQ_SCAN: u64 = 6;
const REQ_SHUFFLE_CREATE: u64 = 7;
const REQ_SHUFFLE_SEND: u64 = 8;
const REQ_SHUFFLE_FINISH: u64 = 9;
const REQ_DELIVER: u64 = 10;
const REQ_STATS: u64 = 11;
const REQ_HELLO: u64 = 12;
const REQ_DROP_SET: u64 = 13;
const REQ_MGR_REGISTER_WORKER: u64 = 14;
const REQ_MGR_HEARTBEAT: u64 = 15;
const REQ_MGR_DEREGISTER_WORKER: u64 = 16;
const REQ_MGR_LIST_WORKERS: u64 = 17;
const REQ_MGR_REGISTER_SET: u64 = 18;
const REQ_MGR_DEREGISTER_SET: u64 = 19;
const REQ_MGR_ENTRY: u64 = 20;
const REQ_MGR_SET_NAMES: u64 = 21;
const REQ_MGR_ADD_STATS: u64 = 22;
const REQ_MGR_LINK_REPLICAS: u64 = 23;
const REQ_MGR_GROUP_MEMBERS: u64 = 24;
const REQ_MGR_GROUPS: u64 = 25;
const REQ_MGR_BEST_REPLICA: u64 = 26;
const REQ_COUNT: u64 = 27;
const REQ_HASH_LIST: u64 = 28;
const REQ_RECOVER_BEGIN: u64 = 29;
const REQ_RECOVER_APPEND: u64 = 30;
const REQ_RECOVER_END: u64 = 31;
const REQ_RECOVER_PUSH: u64 = 32;
const REQ_TASK_RUN: u64 = 33;
const REQ_INGEST_BEGIN: u64 = 34;
const REQ_INGEST_APPEND: u64 = 35;
const REQ_INGEST_END: u64 = 36;
const REQ_REPAIR_LEDGER: u64 = 37;
const REQ_METRICS_DUMP: u64 = 38;
const REQ_TRACE_QUERY: u64 = 39;
const REQ_TRACE_PUSH: u64 = 40;

const RESP_OK: u64 = 1;
const RESP_CREATED: u64 = 2;
const RESP_APPENDED: u64 = 3;
const RESP_PAGES: u64 = 4;
const RESP_PAGE: u64 = 5;
const RESP_RECORDS: u64 = 6;
const RESP_DELIVERED: u64 = 7;
const RESP_STATS: u64 = 8;
const RESP_ERR: u64 = 9;
const RESP_DENIED: u64 = 10;
const RESP_WORKER_REGISTERED: u64 = 11;
const RESP_WORKERS: u64 = 12;
const RESP_CATALOG_ENTRY: u64 = 13;
const RESP_NAMES: u64 = 14;
const RESP_GROUP: u64 = 15;
const RESP_GROUPS: u64 = 16;
const RESP_MAYBE_NAME: u64 = 17;
const RESP_STALE: u64 = 18;
const RESP_SCAN_TOO_LARGE: u64 = 19;
const RESP_COUNT: u64 = 20;
const RESP_HASHES: u64 = 21;
const RESP_REPAIR_ACK: u64 = 22;
const RESP_PUSHED: u64 = 23;
const RESP_TASK_DONE: u64 = 24;
const RESP_INGEST_ACK: u64 = 25;
const RESP_METRICS: u64 = 26;
const RESP_TRACE: u64 = 27;
const RESP_BUSY: u64 = 28;

/// Trailing-envelope marker for a wire-propagated [`TraceCtx`]: a
/// request payload may be followed by `(TRACE_MARK, job, span)` after
/// its last body field. Decoders that predate tracing never look past
/// the body (the protocol has always ignored trailing bytes), and
/// [`Request::decode_traced`] treats anything that fails to parse as
/// "no context" — so the envelope is both backward and forward
/// compatible with untraced peers.
const TRACE_MARK: u64 = 0x5041_4e47_4541_5443; // "PANGEATC"

fn put_list(w: &mut ByteWriter, items: &[Vec<u8>]) {
    w.write_record(&(items.len() as u64));
    for item in items {
        w.write_bytes(item);
    }
}

fn get_list(r: &mut ByteReader<'_>) -> Result<Vec<Vec<u8>>> {
    let n: u64 = r.read_record()?;
    let mut out = Vec::with_capacity(n.min(1 << 20) as usize);
    for _ in 0..n {
        out.push(r.read_bytes()?.to_vec());
    }
    Ok(out)
}

fn put_opt_u64(w: &mut ByteWriter, v: Option<u64>) {
    // 0 marks "absent"; legitimate values here (page sizes) are never 0.
    w.write_record(&v.unwrap_or(0));
}

fn get_opt_u64(r: &mut ByteReader<'_>) -> Result<Option<u64>> {
    let v: u64 = r.read_record()?;
    Ok(if v == 0 { None } else { Some(v) })
}

fn bad_opcode(kind: &str, op: u64) -> PangeaError {
    PangeaError::Corruption(format!("unknown {kind} opcode {op}"))
}

impl Request {
    /// Encodes this request into one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Self::Ping => w.write_record(&REQ_PING),
            Self::CreateSet {
                name,
                durability,
                page_size,
            } => {
                w.write_record(&REQ_CREATE_SET);
                w.write_record(name);
                w.write_record(durability);
                put_opt_u64(&mut w, *page_size);
            }
            Self::Append { set, records } => {
                w.write_record(&REQ_APPEND);
                w.write_record(set);
                put_list(&mut w, records);
            }
            Self::PageNumbers { set } => {
                w.write_record(&REQ_PAGE_NUMBERS);
                w.write_record(set);
            }
            Self::FetchPage { set, num } => {
                w.write_record(&REQ_FETCH_PAGE);
                w.write_record(set);
                w.write_record(num);
            }
            Self::Scan { set } => {
                w.write_record(&REQ_SCAN);
                w.write_record(set);
            }
            Self::ShuffleCreate {
                name,
                partitions,
                page_size,
            } => {
                w.write_record(&REQ_SHUFFLE_CREATE);
                w.write_record(name);
                w.write_record(&(*partitions as u64));
                put_opt_u64(&mut w, *page_size);
            }
            Self::ShuffleSend {
                name,
                partition,
                records,
            } => {
                w.write_record(&REQ_SHUFFLE_SEND);
                w.write_record(name);
                w.write_record(&(*partition as u64));
                put_list(&mut w, records);
            }
            Self::ShuffleFinish { name } => {
                w.write_record(&REQ_SHUFFLE_FINISH);
                w.write_record(name);
            }
            Self::Deliver { from, payload } => {
                w.write_record(&REQ_DELIVER);
                w.write_record(&(*from as u64));
                w.write_bytes(payload);
            }
            Self::Stats => w.write_record(&REQ_STATS),
            Self::Hello { secret } => {
                w.write_record(&REQ_HELLO);
                w.write_record(secret);
            }
            Self::DropSet { set } => {
                w.write_record(&REQ_DROP_SET);
                w.write_record(set);
            }
            Self::Count { set } => {
                w.write_record(&REQ_COUNT);
                w.write_record(set);
            }
            Self::HashList {
                set,
                start_page,
                start_record,
            } => {
                w.write_record(&REQ_HASH_LIST);
                w.write_record(set);
                w.write_record(start_page);
                w.write_record(start_record);
            }
            Self::RecoverBegin { set, present_from } => {
                w.write_record(&REQ_RECOVER_BEGIN);
                w.write_record(set);
                w.write_record(&(present_from.len() as u64));
                for addr in present_from {
                    w.write_record(addr);
                }
            }
            Self::RecoverAppend { set, records } => {
                w.write_record(&REQ_RECOVER_APPEND);
                w.write_record(set);
                put_list(&mut w, records);
            }
            Self::RecoverEnd { set } => {
                w.write_record(&REQ_RECOVER_END);
                w.write_record(set);
            }
            Self::RecoverPush {
                source_set,
                target_set,
                target_addr,
                filter,
            } => {
                w.write_record(&REQ_RECOVER_PUSH);
                w.write_record(source_set);
                w.write_record(target_set);
                w.write_record(target_addr);
                filter.put(&mut w);
            }
            Self::TaskRun { spec } => {
                w.write_record(&REQ_TASK_RUN);
                spec.put(&mut w);
            }
            Self::IngestBegin { set, reduce } => {
                w.write_record(&REQ_INGEST_BEGIN);
                w.write_record(set);
                ReduceSpec::put_opt(reduce, &mut w);
            }
            Self::RepairLedger { set, start } => {
                w.write_record(&REQ_REPAIR_LEDGER);
                w.write_record(set);
                w.write_record(start);
            }
            Self::IngestAppend { set, entries } => {
                w.write_record(&REQ_INGEST_APPEND);
                w.write_record(set);
                w.write_record(&(entries.len() as u64));
                for (tag, rec) in entries {
                    w.write_record(tag);
                    w.write_bytes(rec);
                }
            }
            Self::IngestEnd { set } => {
                w.write_record(&REQ_INGEST_END);
                w.write_record(set);
            }
            Self::MgrRegisterWorker { addr, slot } => {
                w.write_record(&REQ_MGR_REGISTER_WORKER);
                w.write_record(addr);
                // u64::MAX marks "next free slot"; real slots are u32.
                w.write_record(&slot.unwrap_or(u64::MAX));
            }
            Self::MgrHeartbeat { node, epoch } => {
                w.write_record(&REQ_MGR_HEARTBEAT);
                w.write_record(&(*node as u64));
                w.write_record(epoch);
            }
            Self::MgrDeregisterWorker { node, epoch } => {
                w.write_record(&REQ_MGR_DEREGISTER_WORKER);
                w.write_record(&(*node as u64));
                w.write_record(epoch);
            }
            Self::MgrListWorkers => w.write_record(&REQ_MGR_LIST_WORKERS),
            Self::MgrRegisterSet { name, scheme } => {
                w.write_record(&REQ_MGR_REGISTER_SET);
                w.write_record(name);
                scheme.put(&mut w);
            }
            Self::MgrDeregisterSet { name } => {
                w.write_record(&REQ_MGR_DEREGISTER_SET);
                w.write_record(name);
            }
            Self::MgrEntry { name } => {
                w.write_record(&REQ_MGR_ENTRY);
                w.write_record(name);
            }
            Self::MgrSetNames => w.write_record(&REQ_MGR_SET_NAMES),
            Self::MgrAddStats {
                name,
                objects,
                bytes,
            } => {
                w.write_record(&REQ_MGR_ADD_STATS);
                w.write_record(name);
                w.write_record(objects);
                w.write_record(bytes);
            }
            Self::MgrLinkReplicas { a, b } => {
                w.write_record(&REQ_MGR_LINK_REPLICAS);
                w.write_record(a);
                w.write_record(b);
            }
            Self::MgrGroupMembers { group } => {
                w.write_record(&REQ_MGR_GROUP_MEMBERS);
                w.write_record(group);
            }
            Self::MgrGroups => w.write_record(&REQ_MGR_GROUPS),
            Self::MgrBestReplica { set, key } => {
                w.write_record(&REQ_MGR_BEST_REPLICA);
                w.write_record(set);
                w.write_record(key);
            }
            Self::MetricsDump {
                metrics_start,
                spans_start,
            } => {
                w.write_record(&REQ_METRICS_DUMP);
                w.write_record(metrics_start);
                w.write_record(spans_start);
            }
            Self::TraceQuery { job, start } => {
                w.write_record(&REQ_TRACE_QUERY);
                w.write_record(job);
                w.write_record(start);
            }
            Self::TracePush { node, spans } => {
                w.write_record(&REQ_TRACE_PUSH);
                w.write_record(node);
                w.write_record(&(spans.len() as u64));
                for s in spans {
                    s.put(&mut w);
                }
            }
        }
        w.into_bytes()
    }

    /// Encodes this request with an optional trailing [`TraceCtx`]
    /// envelope. With `None` this is byte-identical to
    /// [`Request::encode`]; with a context, `(marker, job, span)` is
    /// appended after the body, where untraced decoders never look.
    pub fn encode_traced(&self, ctx: Option<&TraceCtx>) -> Vec<u8> {
        let mut bytes = self.encode();
        if let Some(ctx) = ctx {
            let mut w = ByteWriter::new();
            w.write_record(&TRACE_MARK);
            w.write_record(&ctx.job);
            w.write_record(&ctx.span);
            bytes.extend_from_slice(w.as_bytes());
        }
        bytes
    }

    /// Decodes a request from one frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        Self::decode_from(&mut r)
    }

    /// Decodes a request and, when the payload carries a trailing
    /// [`TraceCtx`] envelope, the context. A missing, truncated, or
    /// unrecognizable envelope decodes to `None` — never an error — so
    /// frames from peers that predate tracing (or postdate this
    /// decoder) stay valid.
    pub fn decode_traced(bytes: &[u8]) -> Result<(Self, Option<TraceCtx>)> {
        let mut r = ByteReader::new(bytes);
        let req = Self::decode_from(&mut r)?;
        let ctx = read_trace(&mut r);
        Ok((req, ctx))
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self> {
        let op: u64 = r.read_record()?;
        Ok(match op {
            REQ_PING => Self::Ping,
            REQ_CREATE_SET => Self::CreateSet {
                name: r.read_record()?,
                durability: r.read_record()?,
                page_size: get_opt_u64(r)?,
            },
            REQ_APPEND => Self::Append {
                set: r.read_record()?,
                records: get_list(r)?,
            },
            REQ_PAGE_NUMBERS => Self::PageNumbers {
                set: r.read_record()?,
            },
            REQ_FETCH_PAGE => Self::FetchPage {
                set: r.read_record()?,
                num: r.read_record()?,
            },
            REQ_SCAN => Self::Scan {
                set: r.read_record()?,
            },
            REQ_SHUFFLE_CREATE => Self::ShuffleCreate {
                name: r.read_record()?,
                partitions: r.read_record::<u64>()? as u32,
                page_size: get_opt_u64(r)?,
            },
            REQ_SHUFFLE_SEND => Self::ShuffleSend {
                name: r.read_record()?,
                partition: r.read_record::<u64>()? as u32,
                records: get_list(r)?,
            },
            REQ_SHUFFLE_FINISH => Self::ShuffleFinish {
                name: r.read_record()?,
            },
            REQ_DELIVER => Self::Deliver {
                from: r.read_record::<u64>()? as u32,
                payload: r.read_bytes()?.to_vec(),
            },
            REQ_STATS => Self::Stats,
            REQ_HELLO => Self::Hello {
                secret: r.read_record()?,
            },
            REQ_DROP_SET => Self::DropSet {
                set: r.read_record()?,
            },
            REQ_COUNT => Self::Count {
                set: r.read_record()?,
            },
            REQ_HASH_LIST => Self::HashList {
                set: r.read_record()?,
                start_page: r.read_record()?,
                start_record: r.read_record()?,
            },
            REQ_RECOVER_BEGIN => {
                let set = r.read_record()?;
                let n: u64 = r.read_record()?;
                let mut present_from = Vec::with_capacity(n.min(1 << 20) as usize);
                for _ in 0..n {
                    present_from.push(r.read_record()?);
                }
                Self::RecoverBegin { set, present_from }
            }
            REQ_RECOVER_APPEND => Self::RecoverAppend {
                set: r.read_record()?,
                records: get_list(r)?,
            },
            REQ_RECOVER_END => Self::RecoverEnd {
                set: r.read_record()?,
            },
            REQ_RECOVER_PUSH => Self::RecoverPush {
                source_set: r.read_record()?,
                target_set: r.read_record()?,
                target_addr: r.read_record()?,
                filter: RepairFilter::get(r)?,
            },
            REQ_TASK_RUN => Self::TaskRun {
                spec: TaskSpec::get(r)?,
            },
            REQ_INGEST_BEGIN => Self::IngestBegin {
                set: r.read_record()?,
                reduce: ReduceSpec::get_opt(r)?,
            },
            REQ_REPAIR_LEDGER => Self::RepairLedger {
                set: r.read_record()?,
                start: r.read_record()?,
            },
            REQ_INGEST_APPEND => {
                let set = r.read_record()?;
                let n: u64 = r.read_record()?;
                let mut entries = Vec::with_capacity(n.min(1 << 20) as usize);
                for _ in 0..n {
                    let tag: u64 = r.read_record()?;
                    entries.push((tag, r.read_bytes()?.to_vec()));
                }
                Self::IngestAppend { set, entries }
            }
            REQ_INGEST_END => Self::IngestEnd {
                set: r.read_record()?,
            },
            REQ_MGR_REGISTER_WORKER => {
                let addr = r.read_record()?;
                let slot: u64 = r.read_record()?;
                Self::MgrRegisterWorker {
                    addr,
                    slot: (slot != u64::MAX).then_some(slot),
                }
            }
            REQ_MGR_HEARTBEAT => Self::MgrHeartbeat {
                node: r.read_record::<u64>()? as u32,
                epoch: r.read_record()?,
            },
            REQ_MGR_DEREGISTER_WORKER => Self::MgrDeregisterWorker {
                node: r.read_record::<u64>()? as u32,
                epoch: r.read_record()?,
            },
            REQ_MGR_LIST_WORKERS => Self::MgrListWorkers,
            REQ_MGR_REGISTER_SET => Self::MgrRegisterSet {
                name: r.read_record()?,
                scheme: SchemeSpec::get(r)?,
            },
            REQ_MGR_DEREGISTER_SET => Self::MgrDeregisterSet {
                name: r.read_record()?,
            },
            REQ_MGR_ENTRY => Self::MgrEntry {
                name: r.read_record()?,
            },
            REQ_MGR_SET_NAMES => Self::MgrSetNames,
            REQ_MGR_ADD_STATS => Self::MgrAddStats {
                name: r.read_record()?,
                objects: r.read_record()?,
                bytes: r.read_record()?,
            },
            REQ_MGR_LINK_REPLICAS => Self::MgrLinkReplicas {
                a: r.read_record()?,
                b: r.read_record()?,
            },
            REQ_MGR_GROUP_MEMBERS => Self::MgrGroupMembers {
                group: r.read_record()?,
            },
            REQ_MGR_GROUPS => Self::MgrGroups,
            REQ_MGR_BEST_REPLICA => Self::MgrBestReplica {
                set: r.read_record()?,
                key: r.read_record()?,
            },
            REQ_METRICS_DUMP => Self::MetricsDump {
                metrics_start: r.read_record()?,
                spans_start: r.read_record()?,
            },
            REQ_TRACE_QUERY => Self::TraceQuery {
                job: r.read_record()?,
                start: r.read_record()?,
            },
            REQ_TRACE_PUSH => {
                let node = r.read_record()?;
                let n: u64 = r.read_record()?;
                let mut spans = Vec::with_capacity(n.min(1 << 20) as usize);
                for _ in 0..n {
                    spans.push(crate::wire::WireSpan::get(r)?);
                }
                Self::TracePush { node, spans }
            }
            other => return Err(bad_opcode("request", other)),
        })
    }

    /// This request's opcode name — the per-opcode label the metrics
    /// registry and span records key on (`rpc.count.TaskRun`, ...).
    pub fn name(&self) -> &'static str {
        match self {
            Self::Ping => "Ping",
            Self::CreateSet { .. } => "CreateSet",
            Self::Append { .. } => "Append",
            Self::PageNumbers { .. } => "PageNumbers",
            Self::FetchPage { .. } => "FetchPage",
            Self::Scan { .. } => "Scan",
            Self::ShuffleCreate { .. } => "ShuffleCreate",
            Self::ShuffleSend { .. } => "ShuffleSend",
            Self::ShuffleFinish { .. } => "ShuffleFinish",
            Self::Deliver { .. } => "Deliver",
            Self::Stats => "Stats",
            Self::Hello { .. } => "Hello",
            Self::DropSet { .. } => "DropSet",
            Self::Count { .. } => "Count",
            Self::HashList { .. } => "HashList",
            Self::RecoverBegin { .. } => "RecoverBegin",
            Self::RecoverAppend { .. } => "RecoverAppend",
            Self::RecoverEnd { .. } => "RecoverEnd",
            Self::RepairLedger { .. } => "RepairLedger",
            Self::RecoverPush { .. } => "RecoverPush",
            Self::TaskRun { .. } => "TaskRun",
            Self::IngestBegin { .. } => "IngestBegin",
            Self::IngestAppend { .. } => "IngestAppend",
            Self::IngestEnd { .. } => "IngestEnd",
            Self::MgrRegisterWorker { .. } => "MgrRegisterWorker",
            Self::MgrHeartbeat { .. } => "MgrHeartbeat",
            Self::MgrDeregisterWorker { .. } => "MgrDeregisterWorker",
            Self::MgrListWorkers => "MgrListWorkers",
            Self::MgrRegisterSet { .. } => "MgrRegisterSet",
            Self::MgrDeregisterSet { .. } => "MgrDeregisterSet",
            Self::MgrEntry { .. } => "MgrEntry",
            Self::MgrSetNames => "MgrSetNames",
            Self::MgrAddStats { .. } => "MgrAddStats",
            Self::MgrLinkReplicas { .. } => "MgrLinkReplicas",
            Self::MgrGroupMembers { .. } => "MgrGroupMembers",
            Self::MgrGroups => "MgrGroups",
            Self::MgrBestReplica { .. } => "MgrBestReplica",
            Self::MetricsDump { .. } => "MetricsDump",
            Self::TraceQuery { .. } => "TraceQuery",
            Self::TracePush { .. } => "TracePush",
        }
    }
}

/// Attempts to read a trailing trace envelope; anything short of a
/// complete, marked `(TRACE_MARK, job, span)` triple is `None`.
fn read_trace(r: &mut ByteReader<'_>) -> Option<TraceCtx> {
    if r.is_exhausted() {
        return None;
    }
    let mark: u64 = r.read_record().ok()?;
    if mark != TRACE_MARK {
        return None;
    }
    let job = r.read_record().ok()?;
    let span = r.read_record().ok()?;
    Some(TraceCtx { job, span })
}

impl Response {
    /// Encodes this response into one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Self::Ok => w.write_record(&RESP_OK),
            Self::Created { set } => {
                w.write_record(&RESP_CREATED);
                w.write_record(set);
            }
            Self::Appended { records } => {
                w.write_record(&RESP_APPENDED);
                w.write_record(records);
            }
            Self::Pages { nums } => {
                w.write_record(&RESP_PAGES);
                w.write_record(&(nums.len() as u64));
                for n in nums {
                    w.write_record(n);
                }
            }
            Self::Page { bytes } => {
                w.write_record(&RESP_PAGE);
                w.write_bytes(bytes);
            }
            Self::Records { records } => {
                w.write_record(&RESP_RECORDS);
                put_list(&mut w, records);
            }
            Self::Delivered { len, checksum } => {
                w.write_record(&RESP_DELIVERED);
                w.write_record(len);
                w.write_record(checksum);
            }
            Self::Stats {
                net_bytes,
                net_messages,
                disk_read_bytes,
                disk_write_bytes,
                repair_bytes,
                shuffle_bytes,
                paging_hits,
                paging_misses,
                paging_evictions,
                paging_spill_bytes,
                pool_used_bytes,
                pool_capacity_bytes,
            } => {
                w.write_record(&RESP_STATS);
                w.write_record(net_bytes);
                w.write_record(net_messages);
                w.write_record(disk_read_bytes);
                w.write_record(disk_write_bytes);
                w.write_record(repair_bytes);
                w.write_record(shuffle_bytes);
                w.write_record(paging_hits);
                w.write_record(paging_misses);
                w.write_record(paging_evictions);
                w.write_record(paging_spill_bytes);
                w.write_record(pool_used_bytes);
                w.write_record(pool_capacity_bytes);
            }
            Self::Err { message } => {
                w.write_record(&RESP_ERR);
                w.write_record(message);
            }
            Self::Denied { message } => {
                w.write_record(&RESP_DENIED);
                w.write_record(message);
            }
            Self::Busy { message } => {
                w.write_record(&RESP_BUSY);
                w.write_record(message);
            }
            Self::WorkerRegistered { node, epoch } => {
                w.write_record(&RESP_WORKER_REGISTERED);
                w.write_record(&(*node as u64));
                w.write_record(epoch);
            }
            Self::Workers { workers } => {
                w.write_record(&RESP_WORKERS);
                w.write_record(&(workers.len() as u64));
                for wk in workers {
                    wk.put(&mut w);
                }
            }
            Self::CatalogEntry { entry } => {
                w.write_record(&RESP_CATALOG_ENTRY);
                w.write_record(&(entry.is_some() as u64));
                if let Some(e) = entry {
                    e.put(&mut w);
                }
            }
            Self::Names { names } => {
                w.write_record(&RESP_NAMES);
                w.write_record(&(names.len() as u64));
                for n in names {
                    w.write_record(n);
                }
            }
            Self::Group { group } => {
                w.write_record(&RESP_GROUP);
                w.write_record(group);
            }
            Self::Groups { groups } => {
                w.write_record(&RESP_GROUPS);
                w.write_record(&(groups.len() as u64));
                for g in groups {
                    w.write_record(g);
                }
            }
            Self::MaybeName { name } => {
                w.write_record(&RESP_MAYBE_NAME);
                w.write_record(&(name.is_some() as u64));
                if let Some(n) = name {
                    w.write_record(n);
                }
            }
            Self::Stale {
                node,
                held,
                current,
            } => {
                w.write_record(&RESP_STALE);
                w.write_record(&(*node as u64));
                w.write_record(held);
                w.write_record(current);
            }
            Self::ScanTooLarge { set, budget } => {
                w.write_record(&RESP_SCAN_TOO_LARGE);
                w.write_record(set);
                w.write_record(budget);
            }
            Self::Count { records } => {
                w.write_record(&RESP_COUNT);
                w.write_record(records);
            }
            Self::Hashes { hashes, next } => {
                w.write_record(&RESP_HASHES);
                w.write_record(&(next.is_some() as u64));
                if let Some((page, record)) = next {
                    w.write_record(page);
                    w.write_record(record);
                }
                w.write_record(&(hashes.len() as u64));
                for h in hashes {
                    w.write_record(h);
                }
            }
            Self::RepairAck {
                appended,
                bytes,
                credit,
            } => {
                w.write_record(&RESP_REPAIR_ACK);
                w.write_record(appended);
                w.write_record(bytes);
                // Trailing field: pre-credit decoders never read past
                // `bytes` (the protocol has always ignored trailing
                // bytes), and a pre-credit *encoder*'s reply decodes as
                // credit 0 ("no information").
                w.write_record(credit);
            }
            Self::Pushed {
                scanned,
                pushed,
                pushed_bytes,
                appended,
                appended_bytes,
            } => {
                w.write_record(&RESP_PUSHED);
                w.write_record(scanned);
                w.write_record(pushed);
                w.write_record(pushed_bytes);
                w.write_record(appended);
                w.write_record(appended_bytes);
            }
            Self::TaskDone {
                scanned,
                emitted,
                emitted_bytes,
                appended,
                appended_bytes,
            } => {
                w.write_record(&RESP_TASK_DONE);
                w.write_record(scanned);
                w.write_record(emitted);
                w.write_record(emitted_bytes);
                w.write_record(appended);
                w.write_record(appended_bytes);
            }
            Self::IngestAck {
                appended,
                bytes,
                credit,
            } => {
                w.write_record(&RESP_INGEST_ACK);
                w.write_record(appended);
                w.write_record(bytes);
                w.write_record(credit);
            }
            Self::Metrics {
                metrics,
                spans,
                next,
            } => {
                w.write_record(&RESP_METRICS);
                w.write_record(&u64::from(next.is_some()));
                if let Some((m, s)) = next {
                    w.write_record(m);
                    w.write_record(s);
                }
                w.write_record(&(metrics.len() as u64));
                for m in metrics {
                    m.put(&mut w);
                }
                w.write_record(&(spans.len() as u64));
                for s in spans {
                    s.put(&mut w);
                }
            }
            Self::Trace {
                spans,
                dropped,
                next,
            } => {
                w.write_record(&RESP_TRACE);
                w.write_record(dropped);
                w.write_record(&u64::from(next.is_some()));
                if let Some(n) = next {
                    w.write_record(n);
                }
                w.write_record(&(spans.len() as u64));
                for (node, s) in spans {
                    w.write_record(node);
                    s.put(&mut w);
                }
            }
        }
        w.into_bytes()
    }

    /// Decodes a response from one frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let op: u64 = r.read_record()?;
        Ok(match op {
            RESP_OK => Self::Ok,
            RESP_CREATED => Self::Created {
                set: r.read_record()?,
            },
            RESP_APPENDED => Self::Appended {
                records: r.read_record()?,
            },
            RESP_PAGES => {
                let n: u64 = r.read_record()?;
                let mut nums = Vec::with_capacity(n.min(1 << 20) as usize);
                for _ in 0..n {
                    nums.push(r.read_record()?);
                }
                Self::Pages { nums }
            }
            RESP_PAGE => Self::Page {
                bytes: r.read_bytes()?.to_vec(),
            },
            RESP_RECORDS => Self::Records {
                records: get_list(&mut r)?,
            },
            RESP_DELIVERED => Self::Delivered {
                len: r.read_record()?,
                checksum: r.read_record()?,
            },
            RESP_STATS => Self::Stats {
                net_bytes: r.read_record()?,
                net_messages: r.read_record()?,
                disk_read_bytes: r.read_record()?,
                disk_write_bytes: r.read_record()?,
                repair_bytes: r.read_record()?,
                shuffle_bytes: r.read_record()?,
                paging_hits: r.read_record()?,
                paging_misses: r.read_record()?,
                paging_evictions: r.read_record()?,
                paging_spill_bytes: r.read_record()?,
                pool_used_bytes: r.read_record()?,
                pool_capacity_bytes: r.read_record()?,
            },
            RESP_ERR => Self::Err {
                message: r.read_record()?,
            },
            RESP_DENIED => Self::Denied {
                message: r.read_record()?,
            },
            RESP_BUSY => Self::Busy {
                message: r.read_record()?,
            },
            RESP_WORKER_REGISTERED => Self::WorkerRegistered {
                node: r.read_record::<u64>()? as u32,
                epoch: r.read_record()?,
            },
            RESP_WORKERS => {
                let n: u64 = r.read_record()?;
                let mut workers = Vec::with_capacity(n.min(1 << 20) as usize);
                for _ in 0..n {
                    workers.push(WireWorker::get(&mut r)?);
                }
                Self::Workers { workers }
            }
            RESP_CATALOG_ENTRY => {
                let present: u64 = r.read_record()?;
                Self::CatalogEntry {
                    entry: if present != 0 {
                        Some(WireCatalogEntry::get(&mut r)?)
                    } else {
                        None
                    },
                }
            }
            RESP_NAMES => {
                let n: u64 = r.read_record()?;
                let mut names = Vec::with_capacity(n.min(1 << 20) as usize);
                for _ in 0..n {
                    names.push(r.read_record()?);
                }
                Self::Names { names }
            }
            RESP_GROUP => Self::Group {
                group: r.read_record()?,
            },
            RESP_GROUPS => {
                let n: u64 = r.read_record()?;
                let mut groups = Vec::with_capacity(n.min(1 << 20) as usize);
                for _ in 0..n {
                    groups.push(r.read_record()?);
                }
                Self::Groups { groups }
            }
            RESP_MAYBE_NAME => {
                let present: u64 = r.read_record()?;
                Self::MaybeName {
                    name: if present != 0 {
                        Some(r.read_record()?)
                    } else {
                        None
                    },
                }
            }
            RESP_STALE => Self::Stale {
                node: r.read_record::<u64>()? as u32,
                held: r.read_record()?,
                current: r.read_record()?,
            },
            RESP_SCAN_TOO_LARGE => Self::ScanTooLarge {
                set: r.read_record()?,
                budget: r.read_record()?,
            },
            RESP_COUNT => Self::Count {
                records: r.read_record()?,
            },
            RESP_HASHES => {
                let has_next: u64 = r.read_record()?;
                let next = if has_next != 0 {
                    Some((r.read_record()?, r.read_record()?))
                } else {
                    None
                };
                let n: u64 = r.read_record()?;
                let mut hashes = Vec::with_capacity(n.min(1 << 20) as usize);
                for _ in 0..n {
                    hashes.push(r.read_record()?);
                }
                Self::Hashes { hashes, next }
            }
            RESP_REPAIR_ACK => Self::RepairAck {
                appended: r.read_record()?,
                bytes: r.read_record()?,
                credit: if r.is_exhausted() {
                    0
                } else {
                    r.read_record()?
                },
            },
            RESP_PUSHED => Self::Pushed {
                scanned: r.read_record()?,
                pushed: r.read_record()?,
                pushed_bytes: r.read_record()?,
                appended: r.read_record()?,
                appended_bytes: r.read_record()?,
            },
            RESP_TASK_DONE => Self::TaskDone {
                scanned: r.read_record()?,
                emitted: r.read_record()?,
                emitted_bytes: r.read_record()?,
                appended: r.read_record()?,
                appended_bytes: r.read_record()?,
            },
            RESP_INGEST_ACK => Self::IngestAck {
                appended: r.read_record()?,
                bytes: r.read_record()?,
                credit: if r.is_exhausted() {
                    0
                } else {
                    r.read_record()?
                },
            },
            RESP_METRICS => {
                let has_next: u64 = r.read_record()?;
                let next = if has_next != 0 {
                    Some((r.read_record()?, r.read_record()?))
                } else {
                    None
                };
                let n: u64 = r.read_record()?;
                let mut metrics = Vec::with_capacity(n.min(1 << 20) as usize);
                for _ in 0..n {
                    metrics.push(crate::wire::WireMetric::get(&mut r)?);
                }
                let n: u64 = r.read_record()?;
                let mut spans = Vec::with_capacity(n.min(1 << 20) as usize);
                for _ in 0..n {
                    spans.push(crate::wire::WireSpan::get(&mut r)?);
                }
                Self::Metrics {
                    metrics,
                    spans,
                    next,
                }
            }
            RESP_TRACE => {
                let dropped = r.read_record()?;
                let has_next: u64 = r.read_record()?;
                let next = if has_next != 0 {
                    Some(r.read_record()?)
                } else {
                    None
                };
                let n: u64 = r.read_record()?;
                let mut spans = Vec::with_capacity(n.min(1 << 20) as usize);
                for _ in 0..n {
                    let node = r.read_record()?;
                    spans.push((node, crate::wire::WireSpan::get(&mut r)?));
                }
                Self::Trace {
                    spans,
                    dropped,
                    next,
                }
            }
            other => return Err(bad_opcode("response", other)),
        })
    }

    /// Converts an error response into `Err`, passing others through.
    /// Errors with a wire opcode of their own come back as their typed
    /// [`PangeaError`] variant; everything else collapses to `Remote`.
    pub fn into_result(self) -> Result<Response> {
        match self {
            Self::Err { message } => Err(PangeaError::Remote(message)),
            Self::Denied { message } => Err(PangeaError::Unauthenticated(message)),
            Self::Busy { message } => Err(PangeaError::Busy(message)),
            Self::Stale {
                node,
                held,
                current,
            } => Err(PangeaError::StaleEpoch {
                node: pangea_common::NodeId(node),
                held: pangea_common::Epoch(held),
                current: pangea_common::Epoch(current),
            }),
            Self::ScanTooLarge { set, budget } => Err(PangeaError::ScanTooLarge { set, budget }),
            other => Ok(other),
        }
    }
}

/// Encodes a [`PangeaError`] as the wire error response. Kinds clients
/// dispatch on (authentication, epoch staleness, scan overflow) keep
/// their own opcodes so the client-side error stays typed.
pub fn error_response(e: &PangeaError) -> Response {
    match e {
        PangeaError::Unauthenticated(m) => Response::Denied { message: m.clone() },
        PangeaError::Busy(m) => Response::Busy { message: m.clone() },
        PangeaError::StaleEpoch {
            node,
            held,
            current,
        } => Response::Stale {
            node: node.raw(),
            held: held.raw(),
            current: current.raw(),
        },
        PangeaError::ScanTooLarge { set, budget } => Response::ScanTooLarge {
            set: set.clone(),
            budget: *budget,
        },
        other => Response::Err {
            message: other.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{WireMetric, WireSpan};

    fn roundtrip_req(r: Request) {
        assert_eq!(Request::decode(&r.encode()).unwrap(), r);
    }

    fn roundtrip_resp(r: Response) {
        assert_eq!(Response::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::CreateSet {
            name: "events".into(),
            durability: "write-back".into(),
            page_size: Some(4096),
        });
        roundtrip_req(Request::CreateSet {
            name: "u".into(),
            durability: "write-through".into(),
            page_size: None,
        });
        roundtrip_req(Request::Append {
            set: "events".into(),
            records: vec![b"a".to_vec(), vec![], b"ccc".to_vec()],
        });
        roundtrip_req(Request::PageNumbers { set: "s".into() });
        roundtrip_req(Request::FetchPage {
            set: "s".into(),
            num: 17,
        });
        roundtrip_req(Request::Scan { set: "s".into() });
        roundtrip_req(Request::ShuffleCreate {
            name: "wc".into(),
            partitions: 8,
            page_size: None,
        });
        roundtrip_req(Request::ShuffleSend {
            name: "wc".into(),
            partition: 3,
            records: vec![b"k|1".to_vec()],
        });
        roundtrip_req(Request::ShuffleFinish { name: "wc".into() });
        roundtrip_req(Request::Deliver {
            from: u32::MAX,
            payload: vec![0, 1, 2, 255],
        });
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Hello {
            secret: "deployment-secret".into(),
        });
        roundtrip_req(Request::DropSet { set: "gone".into() });
        roundtrip_req(Request::Count { set: "s".into() });
        roundtrip_resp(Response::Count { records: 12345 });
    }

    #[test]
    fn recovery_messages_roundtrip() {
        roundtrip_req(Request::HashList {
            set: "users".into(),
            start_page: 0,
            start_record: 0,
        });
        roundtrip_req(Request::HashList {
            set: "users".into(),
            start_page: 17,
            start_record: 1 << 20,
        });
        roundtrip_req(Request::RecoverBegin {
            set: "users".into(),
            present_from: vec![],
        });
        roundtrip_req(Request::RecoverBegin {
            set: "users".into(),
            present_from: vec!["127.0.0.1:7781".into(), "127.0.0.1:7782".into()],
        });
        roundtrip_req(Request::RecoverAppend {
            set: "users".into(),
            records: vec![b"a|1".to_vec(), vec![], b"b|2".to_vec()],
        });
        roundtrip_req(Request::RecoverEnd {
            set: "users".into(),
        });
        roundtrip_req(Request::RecoverPush {
            source_set: "users_f1".into(),
            target_set: "users".into(),
            target_addr: "127.0.0.1:7783".into(),
            filter: crate::wire::RepairFilter::All,
        });
        roundtrip_req(Request::RecoverPush {
            source_set: "users_f1".into(),
            target_set: "users".into(),
            target_addr: "127.0.0.1:7783".into(),
            filter: crate::wire::RepairFilter::Lost {
                scheme: crate::wire::SchemeSpec::Hash {
                    key_name: "uid".into(),
                    partitions: 6,
                    key: crate::wire::KeySpec::WholeRecord,
                },
                failed: 2,
                nodes: 4,
            },
        });
        roundtrip_resp(Response::Hashes {
            hashes: vec![],
            next: None,
        });
        roundtrip_resp(Response::Hashes {
            hashes: vec![1, u64::MAX, 42],
            next: Some((9, 123)),
        });
        roundtrip_resp(Response::RepairAck {
            appended: 10,
            bytes: 1000,
            credit: 0,
        });
        roundtrip_resp(Response::RepairAck {
            appended: 10,
            bytes: 1000,
            credit: 8,
        });
        roundtrip_resp(Response::Pushed {
            scanned: 100,
            pushed: 40,
            pushed_bytes: 4000,
            appended: 38,
            appended_bytes: 3800,
        });
    }

    #[test]
    fn map_shuffle_messages_roundtrip() {
        use crate::wire::{EmitSpec, FilterSpec, KeySpec, MapSpec, SchemeSpec};
        let spec = crate::wire::TaskSpec {
            input: "lines".into(),
            output: "words".into(),
            map: MapSpec {
                filter: Some(FilterSpec::KeyEquals {
                    key: KeySpec::Field {
                        delim: b'|',
                        index: 0,
                    },
                    value: b"7".to_vec(),
                }),
                emit: EmitSpec::Fields {
                    delim: b'|',
                    indices: vec![1, 2],
                },
            },
            reduce: Some(crate::wire::ReduceSpec::sum(KeySpec::WholeRecord, b'|', 1)),
            scheme: SchemeSpec::Hash {
                key_name: "word".into(),
                partitions: 8,
                key: KeySpec::WholeRecord,
            },
            nodes: 4,
            source: 1,
            dests: vec![(0, "127.0.0.1:7781".into()), (2, "127.0.0.1:7783".into())],
            window: 8,
        };
        roundtrip_req(Request::TaskRun { spec });
        roundtrip_req(Request::IngestBegin {
            set: "words".into(),
            reduce: None,
        });
        roundtrip_req(Request::IngestBegin {
            set: "counts".into(),
            reduce: Some(crate::wire::ReduceSpec::count(KeySpec::WholeRecord, b'|')),
        });
        roundtrip_req(Request::RepairLedger {
            set: "users".into(),
            start: 1 << 20,
        });
        roundtrip_req(Request::IngestAppend {
            set: "words".into(),
            entries: vec![(7, b"the".to_vec()), (9, vec![]), (7, b"the".to_vec())],
        });
        roundtrip_req(Request::IngestEnd {
            set: "words".into(),
        });
        roundtrip_resp(Response::TaskDone {
            scanned: 100,
            emitted: 60,
            emitted_bytes: 600,
            appended: 60,
            appended_bytes: 600,
        });
        roundtrip_resp(Response::IngestAck {
            appended: 12,
            bytes: 340,
            credit: 0,
        });
        roundtrip_resp(Response::IngestAck {
            appended: 12,
            bytes: 340,
            credit: 3,
        });
    }

    #[test]
    fn creditless_acks_decode_as_credit_zero() {
        // A pre-credit peer stops writing after `bytes`; the tolerant
        // decoder reads that as "no information".
        for (op, resp) in [
            (
                RESP_REPAIR_ACK,
                Response::RepairAck {
                    appended: 4,
                    bytes: 77,
                    credit: 0,
                },
            ),
            (
                RESP_INGEST_ACK,
                Response::IngestAck {
                    appended: 4,
                    bytes: 77,
                    credit: 0,
                },
            ),
        ] {
            let mut w = pangea_common::codec::ByteWriter::new();
            w.write_record(&op);
            w.write_record(&4u64);
            w.write_record(&77u64);
            assert_eq!(Response::decode(w.as_bytes()).unwrap(), resp);
        }
    }

    #[test]
    fn busy_roundtrips_and_is_typed() {
        roundtrip_resp(Response::Busy {
            message: "at connection cap".into(),
        });
        let err = Response::Busy {
            message: "at connection cap".into(),
        }
        .into_result()
        .unwrap_err();
        assert!(matches!(err, PangeaError::Busy(_)));
        assert!(matches!(
            error_response(&PangeaError::Busy("full".into())),
            Response::Busy { .. }
        ));
    }

    #[test]
    fn truncated_task_run_is_an_error() {
        use crate::wire::{KeySpec, MapSpec, SchemeSpec};
        let enc = Request::TaskRun {
            spec: crate::wire::TaskSpec {
                input: "in".into(),
                output: "out".into(),
                map: MapSpec::extract(KeySpec::Field {
                    delim: b'|',
                    index: 1,
                }),
                reduce: None,
                scheme: SchemeSpec::RoundRobin { partitions: 3 },
                nodes: 3,
                source: 0,
                dests: vec![(0, "127.0.0.1:1".into()), (1, "127.0.0.1:2".into())],
                window: 0,
            },
        }
        .encode();
        for cut in 1..enc.len() {
            assert!(
                Request::decode(&enc[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn truncated_recovery_messages_are_errors() {
        let enc = Request::RecoverPush {
            source_set: "src".into(),
            target_set: "tgt".into(),
            target_addr: "127.0.0.1:7783".into(),
            filter: crate::wire::RepairFilter::Lost {
                scheme: crate::wire::SchemeSpec::Hash {
                    key_name: "k".into(),
                    partitions: 3,
                    key: crate::wire::KeySpec::Field {
                        delim: b'|',
                        index: 1,
                    },
                },
                failed: 1,
                nodes: 3,
            },
        }
        .encode();
        for cut in 1..enc.len() {
            assert!(
                Request::decode(&enc[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn manager_requests_roundtrip() {
        roundtrip_req(Request::MgrRegisterWorker {
            addr: "127.0.0.1:7781".into(),
            slot: None,
        });
        roundtrip_req(Request::MgrRegisterWorker {
            addr: "127.0.0.1:7782".into(),
            slot: Some(2),
        });
        roundtrip_req(Request::MgrHeartbeat { node: 1, epoch: 4 });
        roundtrip_req(Request::MgrDeregisterWorker { node: 1, epoch: 4 });
        roundtrip_req(Request::MgrListWorkers);
        roundtrip_req(Request::MgrRegisterSet {
            name: "lineitem".into(),
            scheme: crate::wire::SchemeSpec::Hash {
                key_name: "l_orderkey".into(),
                partitions: 8,
                key: crate::wire::KeySpec::Field {
                    delim: b'|',
                    index: 0,
                },
            },
        });
        roundtrip_req(Request::MgrDeregisterSet {
            name: "lineitem".into(),
        });
        roundtrip_req(Request::MgrEntry {
            name: "lineitem".into(),
        });
        roundtrip_req(Request::MgrSetNames);
        roundtrip_req(Request::MgrAddStats {
            name: "lineitem".into(),
            objects: 10,
            bytes: 1000,
        });
        roundtrip_req(Request::MgrLinkReplicas {
            a: "x".into(),
            b: "y".into(),
        });
        roundtrip_req(Request::MgrGroupMembers { group: 3 });
        roundtrip_req(Request::MgrGroups);
        roundtrip_req(Request::MgrBestReplica {
            set: "lineitem".into(),
            key: "l_partkey".into(),
        });
    }

    #[test]
    fn manager_responses_roundtrip() {
        roundtrip_resp(Response::Denied {
            message: "bad secret".into(),
        });
        roundtrip_resp(Response::WorkerRegistered { node: 2, epoch: 5 });
        roundtrip_resp(Response::Workers {
            workers: vec![crate::wire::WireWorker {
                node: 0,
                addr: "127.0.0.1:9000".into(),
                epoch: 1,
                state: crate::wire::WorkerState::Alive,
            }],
        });
        roundtrip_resp(Response::CatalogEntry { entry: None });
        roundtrip_resp(Response::CatalogEntry {
            entry: Some(crate::wire::WireCatalogEntry {
                name: "s".into(),
                scheme: crate::wire::SchemeSpec::RoundRobin { partitions: 3 },
                group: Some(1),
                objects: 7,
                bytes: 70,
            }),
        });
        roundtrip_resp(Response::Names {
            names: vec!["a".into(), "b".into()],
        });
        roundtrip_resp(Response::Group { group: 9 });
        roundtrip_resp(Response::Groups { groups: vec![1, 2] });
        roundtrip_resp(Response::MaybeName { name: None });
        roundtrip_resp(Response::MaybeName {
            name: Some("replica".into()),
        });
        roundtrip_resp(Response::Stale {
            node: 1,
            held: 3,
            current: 7,
        });
        roundtrip_resp(Response::ScanTooLarge {
            set: "big".into(),
            budget: 1 << 25,
        });
    }

    #[test]
    fn typed_errors_survive_the_wire() {
        use pangea_common::{Epoch, NodeId};
        let stale = PangeaError::StaleEpoch {
            node: NodeId(2),
            held: Epoch(4),
            current: Epoch(9),
        };
        match error_response(&stale).into_result() {
            Err(PangeaError::StaleEpoch {
                node,
                held,
                current,
            }) => assert_eq!((node, held, current), (NodeId(2), Epoch(4), Epoch(9))),
            other => panic!("{other:?}"),
        }
        let too_large = PangeaError::ScanTooLarge {
            set: "events".into(),
            budget: 42,
        };
        match error_response(&too_large).into_result() {
            Err(PangeaError::ScanTooLarge { set, budget }) => {
                assert_eq!((set.as_str(), budget), ("events", 42));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn denied_converts_to_unauthenticated() {
        let resp = error_response(&PangeaError::Unauthenticated("no hello".into()));
        match resp.into_result() {
            Err(PangeaError::Unauthenticated(m)) => assert!(m.contains("no hello")),
            other => panic!("expected Unauthenticated, got {other:?}"),
        }
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::Created { set: 9 });
        roundtrip_resp(Response::Appended { records: 1000 });
        roundtrip_resp(Response::Pages {
            nums: vec![0, 1, 2, 9],
        });
        roundtrip_resp(Response::Page {
            bytes: vec![7; 4096],
        });
        roundtrip_resp(Response::Records {
            records: vec![b"x".to_vec(), b"yy".to_vec()],
        });
        roundtrip_resp(Response::Delivered {
            len: 3,
            checksum: 0x1234_5678_9abc_def0,
        });
        roundtrip_resp(Response::Stats {
            net_bytes: 1,
            net_messages: 2,
            disk_read_bytes: 3,
            disk_write_bytes: 4,
            repair_bytes: 5,
            shuffle_bytes: 6,
            paging_hits: 7,
            paging_misses: 8,
            paging_evictions: 9,
            paging_spill_bytes: 10,
            pool_used_bytes: 11,
            pool_capacity_bytes: 12,
        });
        roundtrip_resp(Response::Err {
            message: "set 'x' missing".into(),
        });
    }

    #[test]
    fn unknown_opcodes_are_corruption() {
        let mut w = pangea_common::ByteWriter::new();
        w.write_record(&999u64);
        assert!(matches!(
            Request::decode(w.as_bytes()),
            Err(PangeaError::Corruption(_))
        ));
        assert!(matches!(
            Response::decode(w.as_bytes()),
            Err(PangeaError::Corruption(_))
        ));
    }

    #[test]
    fn truncated_message_is_an_error() {
        let enc = Request::Append {
            set: "s".into(),
            records: vec![b"abc".to_vec()],
        }
        .encode();
        for cut in 1..enc.len() {
            assert!(
                Request::decode(&enc[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn metrics_dump_and_metrics_roundtrip() {
        roundtrip_req(Request::MetricsDump {
            metrics_start: 0,
            spans_start: 0,
        });
        roundtrip_req(Request::MetricsDump {
            metrics_start: 512,
            spans_start: u64::MAX,
        });
        roundtrip_resp(Response::Metrics {
            metrics: vec![],
            spans: vec![],
            next: None,
        });
        roundtrip_resp(Response::Metrics {
            metrics: vec![
                WireMetric::Counter {
                    name: "rpc.count.Ping".into(),
                    value: 42,
                },
                WireMetric::Gauge {
                    name: "sessions.ingest.live".into(),
                    value: 0,
                },
                WireMetric::Histogram {
                    name: "rpc.latency_ns.Ping".into(),
                    count: 3,
                    sum: 999,
                    buckets: vec![0, 1, 2, 0],
                },
            ],
            spans: vec![WireSpan {
                seq: 9,
                job: (7 << 32) | 1,
                span: 11,
                parent: 10,
                op: "TaskRun".into(),
                peer: "127.0.0.1:7781".into(),
                start_ns: 100,
                end_ns: 250,
                bytes: 64,
                outcome: "ok".into(),
            }],
            next: Some((512, 10)),
        });
    }

    #[test]
    fn trace_query_push_and_trace_roundtrip() {
        let sample = WireSpan {
            seq: 3,
            job: (7 << 32) | 2,
            span: (7 << 32) | 8,
            parent: 0,
            op: "DriverRpc".into(),
            peer: "mgr:127.0.0.1:7700".into(),
            start_ns: 10,
            end_ns: 9_000,
            bytes: 128,
            outcome: "ok".into(),
        };
        roundtrip_req(Request::TraceQuery { job: 0, start: 0 });
        roundtrip_req(Request::TraceQuery {
            job: u64::MAX,
            start: 4096,
        });
        roundtrip_req(Request::TracePush {
            node: "driver".into(),
            spans: vec![],
        });
        roundtrip_req(Request::TracePush {
            node: "driver".into(),
            spans: vec![sample.clone(), sample.clone()],
        });
        roundtrip_resp(Response::Trace {
            spans: vec![],
            dropped: 0,
            next: None,
        });
        roundtrip_resp(Response::Trace {
            spans: vec![("w0".into(), sample.clone()), ("driver".into(), sample)],
            dropped: 4097,
            next: Some(2048),
        });
    }

    #[test]
    fn trace_ctx_roundtrips_on_the_wire() {
        let req = Request::Scan { set: "s".into() };
        let ctx = TraceCtx { job: 7, span: 3 };
        let enc = req.encode_traced(Some(&ctx));
        let (back, got) = Request::decode_traced(&enc).unwrap();
        assert_eq!(back, req);
        assert_eq!(got, Some(ctx));
        // Untraced encode is byte-identical to the legacy frame and
        // decodes with no context.
        let plain = req.encode_traced(None);
        assert_eq!(plain, req.encode());
        let (back, got) = Request::decode_traced(&plain).unwrap();
        assert_eq!(back, req);
        assert_eq!(got, None);
    }

    #[test]
    fn truncated_or_garbled_trace_trailer_degrades_to_none() {
        let req = Request::Ping;
        let traced = req.encode_traced(Some(&TraceCtx { job: 1, span: 2 }));
        let plain_len = req.encode().len();
        // Any truncation strictly inside the trailer keeps the request
        // decodable and yields no context (a peer speaking a newer
        // envelope than ours must still be understood).
        for cut in plain_len..traced.len() {
            let (back, got) = Request::decode_traced(&traced[..cut]).unwrap();
            assert_eq!(back, req);
            assert_eq!(got, None, "cut at {cut}");
        }
        // Trailing bytes that are not a marked triple are ignored too.
        let mut garbled = req.encode();
        garbled.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
        let (back, got) = Request::decode_traced(&garbled).unwrap();
        assert_eq!(back, req);
        assert_eq!(got, None);
        // Truncating the *body* stays a hard error even via the traced
        // decoder.
        assert!(Request::decode_traced(&req.encode()[..4]).is_err());
    }

    #[test]
    fn err_response_converts_to_remote_error() {
        let r = error_response(&PangeaError::usage("nope"));
        match r.into_result() {
            Err(PangeaError::Remote(m)) => assert!(m.contains("nope")),
            other => panic!("expected Remote error, got {other:?}"),
        }
    }
}
