//! `pangead` — the Pangea node daemon.
//!
//! Wraps one [`StorageNode`] behind the [`crate::proto`] protocol: a
//! blocking accept loop hands each connection to a handler thread that
//! reads framed requests until the peer hangs up. The request dispatch
//! itself ([`Pangead::handle`]) is pure request → response and does not
//! know about sockets, so it is testable (and reusable) without any
//! networking.

use crate::frame::{read_frame, write_frame};
use crate::proto::{error_response, Request, Response};
use pangea_common::{FxHashMap, IoStats, PangeaError, PartitionId, Result};
use pangea_core::{ObjectIter, SetOptions, ShuffleConfig, ShuffleService, StorageNode};
use parking_lot::Mutex;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// The protocol brain of a Pangea node daemon: dispatches decoded
/// requests against the wrapped [`StorageNode`].
#[derive(Debug)]
pub struct Pangead {
    node: StorageNode,
    /// Shuffle services created over the wire, by name.
    shuffles: Mutex<FxHashMap<String, ShuffleService>>,
    /// Payload bytes and messages received by this daemon.
    stats: Arc<IoStats>,
}

impl Pangead {
    /// Wraps a storage node.
    pub fn new(node: StorageNode) -> Self {
        Self {
            node,
            shuffles: Mutex::new(FxHashMap::default()),
            stats: Arc::new(IoStats::new()),
        }
    }

    /// The wrapped storage node.
    pub fn node(&self) -> &StorageNode {
        &self.node
    }

    /// Payload bytes received by this daemon (the server-side view of
    /// the transport's `record_net` accounting).
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Handles one request, turning node errors into [`Response::Err`].
    pub fn handle(&self, req: Request) -> Response {
        match self.dispatch(req) {
            Ok(resp) => resp,
            Err(e) => error_response(&e),
        }
    }

    fn dispatch(&self, req: Request) -> Result<Response> {
        match req {
            Request::Ping => Ok(Response::Ok),
            Request::CreateSet {
                name,
                durability,
                page_size,
            } => {
                let mut options = SetOptions::from_durability_str(&durability)?;
                if let Some(ps) = page_size {
                    options = options.with_page_size(ps as usize);
                }
                let set = self.node.create_set(&name, options)?;
                Ok(Response::Created {
                    set: set.id().raw(),
                })
            }
            Request::Append { set, records } => {
                let set = self.get_set(&set)?;
                let mut writer = set.writer();
                for rec in &records {
                    self.stats.record_net(rec.len());
                    writer.add_object(rec)?;
                }
                writer.finish()?;
                Ok(Response::Appended {
                    records: records.len() as u64,
                })
            }
            Request::PageNumbers { set } => Ok(Response::Pages {
                nums: self.get_set(&set)?.page_numbers(),
            }),
            Request::FetchPage { set, num } => {
                let set = self.get_set(&set)?;
                let pin = set.pin_page(num)?;
                let bytes = pin.read().to_vec();
                Ok(Response::Page { bytes })
            }
            Request::Scan { set } => {
                let set = self.get_set(&set)?;
                let mut records = Vec::new();
                // Refuse (with a protocol error, not a dead socket) once
                // the reply could no longer fit one frame; large sets are
                // read page-by-page through FetchPage instead.
                let budget = crate::frame::MAX_FRAME / 2;
                let mut bytes = 0usize;
                for num in set.page_numbers() {
                    let pin = set.pin_page(num)?;
                    let mut it = ObjectIter::new(&pin);
                    while let Some(rec) = it.next() {
                        bytes += rec.len() + 4;
                        if bytes > budget {
                            return Err(PangeaError::usage(format!(
                                "scan of '{}' exceeds {budget} B in one reply; \
                                 page through FetchPage instead",
                                set.name()
                            )));
                        }
                        records.push(rec.to_vec());
                    }
                }
                Ok(Response::Records { records })
            }
            Request::ShuffleCreate {
                name,
                partitions,
                page_size,
            } => {
                let mut shuffles = self.shuffles.lock();
                if shuffles.contains_key(&name) {
                    return Err(PangeaError::usage(format!(
                        "shuffle '{name}' already exists"
                    )));
                }
                let mut config = ShuffleConfig::new(partitions);
                if let Some(ps) = page_size {
                    config = config.with_page_size(ps as usize);
                }
                let service = ShuffleService::create(&self.node, &name, config)?;
                shuffles.insert(name, service);
                Ok(Response::Ok)
            }
            Request::ShuffleSend {
                name,
                partition,
                records,
            } => {
                let service = self.get_shuffle(&name)?;
                let mut buffer = service.virtual_buffer(PartitionId(partition))?;
                for rec in &records {
                    self.stats.record_net(rec.len());
                    buffer.add_object(rec)?;
                }
                buffer.flush()?;
                Ok(Response::Appended {
                    records: records.len() as u64,
                })
            }
            Request::ShuffleFinish { name } => {
                self.get_shuffle(&name)?.finish_writes()?;
                Ok(Response::Ok)
            }
            Request::Deliver { from: _, payload } => {
                self.stats.record_net(payload.len());
                self.stats.record_copy(payload.len());
                Ok(Response::Delivered {
                    len: payload.len() as u64,
                    checksum: pangea_common::fx_hash64(&payload),
                })
            }
            Request::Stats => {
                let net = self.stats.snapshot();
                let disk = self.node.disk_stats().snapshot();
                Ok(Response::Stats {
                    net_bytes: net.net_bytes,
                    net_messages: net.net_messages,
                    disk_read_bytes: disk.disk_read_bytes,
                    disk_write_bytes: disk.disk_write_bytes,
                })
            }
        }
    }

    fn get_set(&self, name: &str) -> Result<pangea_core::LocalitySet> {
        self.node
            .get_set(name)
            .ok_or_else(|| PangeaError::usage(format!("locality set '{name}' not found")))
    }

    fn get_shuffle(&self, name: &str) -> Result<ShuffleService> {
        self.shuffles
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| PangeaError::usage(format!("shuffle '{name}' not found")))
    }
}

/// A running `pangead` server: accept loop plus per-connection handler
/// threads. Dropping the server shuts the accept loop down.
#[derive(Debug)]
pub struct PangeadServer {
    daemon: Arc<Pangead>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    /// Clone of the accept socket, used to unblock the accept loop at
    /// shutdown (switching it to non-blocking) without relying on a
    /// self-connect that may be firewalled on wildcard binds.
    listener: TcpListener,
    accept: Option<JoinHandle<()>>,
}

impl PangeadServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `node`.
    pub fn bind(node: StorageNode, addr: impl ToSocketAddrs) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let wake_handle = listener.try_clone()?;
        let daemon = Arc::new(Pangead::new(node));
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept = {
            let daemon = Arc::clone(&daemon);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name(format!("pangead-accept-{local_addr}"))
                .spawn(move || accept_loop(listener, daemon, shutdown))?
        };
        Ok(Self {
            daemon,
            local_addr,
            shutdown,
            listener: wake_handle,
            accept: Some(accept),
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The protocol daemon (for inspecting the node or its counters).
    pub fn daemon(&self) -> &Arc<Pangead> {
        &self.daemon
    }

    /// Stops accepting connections and joins the accept loop. Connection
    /// handler threads finish when their peers hang up.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop: flip the shared socket non-blocking so
        // the pending accept returns WouldBlock and the loop sees the
        // flag. The throwaway self-connect is a second wake-up path for
        // platforms where the mode switch does not interrupt an accept
        // already in progress.
        let _ = self.listener.set_nonblocking(true);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for PangeadServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, daemon: Arc<Pangead>, shutdown: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Only reachable once shutdown() flips the socket
                // non-blocking; re-check the flag at the top of the loop.
                std::thread::yield_now();
                continue;
            }
            Err(_) => continue,
        };
        stream.set_nodelay(true).ok();
        let daemon = Arc::clone(&daemon);
        let _ = std::thread::Builder::new()
            .name("pangead-conn".into())
            .spawn(move || serve_connection(stream, &daemon));
    }
}

/// Serves one connection until EOF or a fatal stream error.
fn serve_connection(mut stream: TcpStream, daemon: &Pangead) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return, // peer hung up cleanly
            Err(e) => {
                // Desynchronized stream: report once, then give up.
                let _ = write_frame(&mut stream, &error_response(&e).encode());
                return;
            }
        };
        let response = match Request::decode(&payload) {
            Ok(req) => daemon.handle(req),
            Err(e) => error_response(&e),
        };
        if write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pangea_core::NodeConfig;

    fn node(tag: &str) -> StorageNode {
        let dir = std::env::temp_dir().join(format!(
            "pangea-pangead-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        StorageNode::new(
            NodeConfig::new(dir)
                .with_pool_capacity(256 * pangea_common::KB)
                .with_page_size(4 * pangea_common::KB),
        )
        .unwrap()
    }

    #[test]
    fn dispatch_covers_the_set_lifecycle() {
        let d = Pangead::new(node("lifecycle"));
        let resp = d.handle(Request::CreateSet {
            name: "events".into(),
            durability: "write-back".into(),
            page_size: None,
        });
        assert!(matches!(resp, Response::Created { .. }), "{resp:?}");
        let resp = d.handle(Request::Append {
            set: "events".into(),
            records: vec![b"a".to_vec(), b"bb".to_vec()],
        });
        assert_eq!(resp, Response::Appended { records: 2 });
        match d.handle(Request::Scan {
            set: "events".into(),
        }) {
            Response::Records { records } => {
                assert_eq!(records, vec![b"a".to_vec(), b"bb".to_vec()]);
            }
            other => panic!("{other:?}"),
        }
        match d.handle(Request::PageNumbers {
            set: "events".into(),
        }) {
            Response::Pages { nums } => assert_eq!(nums, vec![0]),
            other => panic!("{other:?}"),
        }
        match d.handle(Request::FetchPage {
            set: "events".into(),
            num: 0,
        }) {
            Response::Page { bytes } => assert_eq!(bytes.len(), 4 * pangea_common::KB),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn missing_set_is_a_wire_error() {
        let d = Pangead::new(node("missing"));
        match d.handle(Request::Scan { set: "nope".into() }) {
            Response::Err { message } => assert!(message.contains("nope")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shuffle_over_dispatch() {
        let d = Pangead::new(node("shuffle"));
        assert_eq!(
            d.handle(Request::ShuffleCreate {
                name: "wc".into(),
                partitions: 2,
                page_size: None,
            }),
            Response::Ok
        );
        d.handle(Request::ShuffleSend {
            name: "wc".into(),
            partition: 0,
            records: vec![b"alpha".to_vec()],
        });
        d.handle(Request::ShuffleSend {
            name: "wc".into(),
            partition: 1,
            records: vec![b"beta".to_vec(), b"gamma".to_vec()],
        });
        assert_eq!(
            d.handle(Request::ShuffleFinish { name: "wc".into() }),
            Response::Ok
        );
        match d.handle(Request::Scan {
            set: "wc.part1".into(),
        }) {
            Response::Records { records } => {
                assert_eq!(records, vec![b"beta".to_vec(), b"gamma".to_vec()]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn deliver_counts_payload_bytes() {
        let d = Pangead::new(node("deliver"));
        let resp = d.handle(Request::Deliver {
            from: 0,
            payload: vec![9; 128],
        });
        assert_eq!(
            resp,
            Response::Delivered {
                len: 128,
                checksum: pangea_common::fx_hash64(&[9; 128]),
            }
        );
        assert_eq!(d.stats().snapshot().net_bytes, 128);
    }

    #[test]
    fn server_binds_and_shuts_down() {
        let mut server = PangeadServer::bind(node("bind"), "127.0.0.1:0").unwrap();
        assert_ne!(server.local_addr().port(), 0);
        server.shutdown();
        server.shutdown(); // idempotent
    }
}
