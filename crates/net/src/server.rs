//! Framed TCP serving, and `pangead` — the Pangea node daemon.
//!
//! Two layers:
//!
//! * [`FramedServer`] — a reusable accept loop for any [`FramedService`]:
//!   per-connection handler threads, an optional shared-secret handshake
//!   (unauthenticated peers are rejected with a typed [`Response::Denied`]
//!   before any request is served), and graceful shutdown that stops
//!   accepting, drains in-flight requests, closes the remaining
//!   connections, and joins every handler thread. `pangead` and
//!   `pangea-mgr` (the `pangea-coord` manager daemon) both serve through
//!   it.
//! * [`Pangead`] — the protocol brain of a node daemon: wraps one
//!   [`StorageNode`] and dispatches decoded requests against it. The
//!   dispatch is pure request → response and does not know about sockets,
//!   so it is testable (and reusable) without any networking.

use crate::frame::{read_frame, write_frame};
use crate::proto::{error_response, Request, Response};
use pangea_common::{FxHashMap, IoStats, PangeaError, PartitionId, Result};
use pangea_core::{ObjectIter, SetOptions, ShuffleConfig, ShuffleService, StorageNode};
use parking_lot::Mutex;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long [`FramedServer::shutdown`] waits for in-flight requests
/// before closing their connections anyway.
pub const DEFAULT_DRAIN: Duration = Duration::from_secs(5);

/// Anything that can answer one decoded request. Implementations must
/// not block indefinitely: a handler thread holds its connection for the
/// duration of a call.
pub trait FramedService: std::fmt::Debug + Send + Sync + 'static {
    /// Handles one request, mapping internal errors to error responses.
    fn handle(&self, req: Request) -> Response;
}

/// Shared per-server connection state: the live-connection registry used
/// to unblock readers at shutdown, the handler-thread handles joined at
/// shutdown, and the in-flight request count the drain waits on.
#[derive(Debug, Default)]
struct ConnShared {
    streams: Mutex<FxHashMap<u64, TcpStream>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    next_conn: AtomicU64,
    in_flight: AtomicUsize,
    secret: Option<String>,
}

/// A running framed server: accept loop plus per-connection handler
/// threads over one [`FramedService`]. Dropping the server shuts it
/// down gracefully.
#[derive(Debug)]
pub struct FramedServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    /// Clone of the accept socket, used to unblock the accept loop at
    /// shutdown (switching it to non-blocking) without relying on a
    /// self-connect that may be firewalled on wildcard binds.
    listener: TcpListener,
    accept: Option<JoinHandle<()>>,
    shared: Arc<ConnShared>,
}

impl FramedServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and serves
    /// `service`. When `secret` is set, every connection must open with
    /// a matching [`Request::Hello`] before any other request.
    pub fn bind(
        service: Arc<dyn FramedService>,
        addr: impl ToSocketAddrs,
        secret: Option<String>,
    ) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let wake_handle = listener.try_clone()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(ConnShared {
            secret,
            ..ConnShared::default()
        });
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("framed-accept-{local_addr}"))
                .spawn(move || accept_loop(listener, service, shutdown, shared))?
        };
        Ok(Self {
            local_addr,
            shutdown,
            listener: wake_handle,
            accept: Some(accept),
            shared,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently registered (diagnostics).
    pub fn open_connections(&self) -> usize {
        self.shared.streams.lock().len()
    }

    /// Gracefully stops the server: no new connections are accepted,
    /// in-flight requests get up to `drain` to finish (their responses
    /// are written), remaining connections are closed, and every handler
    /// thread is joined. Idempotent.
    pub fn shutdown(&mut self, drain: Duration) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop: flip the shared socket non-blocking so
        // the pending accept returns WouldBlock and the loop sees the
        // flag. The throwaway self-connect is a second wake-up path for
        // platforms where the mode switch does not interrupt an accept
        // already in progress.
        let _ = self.listener.set_nonblocking(true);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Drain: wait for requests already being handled. Connections
        // idle between requests are not in flight and close immediately.
        let deadline = Instant::now() + drain;
        while self.shared.in_flight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Unblock readers waiting for their peer's next request.
        for (_, stream) in self.shared.streams.lock().drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for handle in self.shared.handles.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for FramedServer {
    fn drop(&mut self) {
        self.shutdown(DEFAULT_DRAIN);
    }
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<dyn FramedService>,
    shutdown: Arc<AtomicBool>,
    shared: Arc<ConnShared>,
) {
    for conn in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Only reachable once shutdown() flips the socket
                // non-blocking; re-check the flag at the top of the loop.
                std::thread::yield_now();
                continue;
            }
            Err(_) => {
                // Persistent accept errors (e.g. fd exhaustion) must not
                // busy-spin a core; back off briefly before retrying.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        stream.set_nodelay(true).ok();
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        let registered = match stream.try_clone() {
            Ok(clone) => {
                shared.streams.lock().insert(conn_id, clone);
                true
            }
            Err(_) => false,
        };
        let service = Arc::clone(&service);
        let conn_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("framed-conn".into())
            .spawn(move || {
                serve_connection(stream, service.as_ref(), &conn_shared);
                conn_shared.streams.lock().remove(&conn_id);
            });
        match spawned {
            Ok(handle) => {
                let mut handles = shared.handles.lock();
                handles.retain(|h| !h.is_finished());
                handles.push(handle);
            }
            Err(_) => {
                if registered {
                    shared.streams.lock().remove(&conn_id);
                }
            }
        }
    }
}

/// Serves one connection until EOF or a fatal stream error, enforcing
/// the handshake when the server carries a secret.
fn serve_connection(mut stream: TcpStream, service: &dyn FramedService, shared: &ConnShared) {
    let mut authenticated = shared.secret.is_none();
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return, // peer hung up cleanly
            Err(e) => {
                // Desynchronized stream: report once, then give up.
                let _ = write_frame(&mut stream, &error_response(&e).encode());
                return;
            }
        };
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let (response, close) = match Request::decode(&payload) {
            Ok(Request::Hello { secret }) => match &shared.secret {
                Some(expected) if *expected == secret => {
                    authenticated = true;
                    (Response::Ok, false)
                }
                Some(_) => (
                    error_response(&PangeaError::Unauthenticated(
                        "handshake secret does not match".into(),
                    )),
                    true,
                ),
                // No secret configured: a Hello is a harmless no-op.
                None => (Response::Ok, false),
            },
            Ok(req) if !authenticated => (
                error_response(&PangeaError::Unauthenticated(format!(
                    "this daemon requires a Hello handshake before {req:?}"
                ))),
                true,
            ),
            Ok(req) => (service.handle(req), false),
            Err(e) => (error_response(&e), false),
        };
        let write_ok = write_frame(&mut stream, &response.encode()).is_ok();
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        if !write_ok || close {
            return;
        }
    }
}

/// The protocol brain of a Pangea node daemon: dispatches decoded
/// requests against the wrapped [`StorageNode`].
#[derive(Debug)]
pub struct Pangead {
    node: StorageNode,
    /// Shuffle services created over the wire, by name.
    shuffles: Mutex<FxHashMap<String, ShuffleService>>,
    /// Payload bytes and messages received by this daemon.
    stats: Arc<IoStats>,
}

impl Pangead {
    /// Wraps a storage node.
    pub fn new(node: StorageNode) -> Self {
        Self {
            node,
            shuffles: Mutex::new(FxHashMap::default()),
            stats: Arc::new(IoStats::new()),
        }
    }

    /// The wrapped storage node.
    pub fn node(&self) -> &StorageNode {
        &self.node
    }

    /// Payload bytes received by this daemon (the server-side view of
    /// the transport's `record_net` accounting).
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Handles one request, turning node errors into [`Response::Err`].
    pub fn handle(&self, req: Request) -> Response {
        match self.dispatch(req) {
            Ok(resp) => resp,
            Err(e) => error_response(&e),
        }
    }

    fn dispatch(&self, req: Request) -> Result<Response> {
        match req {
            Request::Ping => Ok(Response::Ok),
            // The server layer handles handshakes; reaching here means no
            // secret is required on this daemon.
            Request::Hello { .. } => Ok(Response::Ok),
            Request::CreateSet {
                name,
                durability,
                page_size,
            } => {
                let mut options = SetOptions::from_durability_str(&durability)?;
                if let Some(ps) = page_size {
                    options = options.with_page_size(ps as usize);
                }
                let set = self.node.create_set(&name, options)?;
                Ok(Response::Created {
                    set: set.id().raw(),
                })
            }
            Request::Append { set, records } => {
                let set = self.get_set(&set)?;
                let mut writer = set.writer();
                for rec in &records {
                    self.stats.record_net(rec.len());
                    writer.add_object(rec)?;
                }
                writer.finish()?;
                Ok(Response::Appended {
                    records: records.len() as u64,
                })
            }
            Request::PageNumbers { set } => Ok(Response::Pages {
                nums: self.get_set(&set)?.page_numbers(),
            }),
            Request::FetchPage { set, num } => {
                let set = self.get_set(&set)?;
                let pin = set.pin_page(num)?;
                let bytes = pin.read().to_vec();
                Ok(Response::Page { bytes })
            }
            Request::Scan { set } => {
                let set = self.get_set(&set)?;
                let mut records = Vec::new();
                // Refuse (with a protocol error, not a dead socket) once
                // the reply could no longer fit one frame; large sets are
                // read page-by-page through FetchPage instead.
                let budget = crate::frame::MAX_FRAME / 2;
                let mut bytes = 0usize;
                for num in set.page_numbers() {
                    let pin = set.pin_page(num)?;
                    let mut it = ObjectIter::new(&pin);
                    while let Some(rec) = it.next() {
                        bytes += rec.len() + 4;
                        if bytes > budget {
                            return Err(PangeaError::ScanTooLarge {
                                set: set.name().to_string(),
                                budget: budget as u64,
                            });
                        }
                        records.push(rec.to_vec());
                    }
                }
                Ok(Response::Records { records })
            }
            Request::Count { set } => {
                let set = self.get_set(&set)?;
                let mut records = 0u64;
                for num in set.page_numbers() {
                    let pin = set.pin_page(num)?;
                    records += ObjectIter::new(&pin).count() as u64;
                }
                Ok(Response::Count { records })
            }
            Request::DropSet { set } => {
                // Idempotent: dropping a set the node never held is a
                // no-op, so distributed teardown needs no error parsing.
                if let Some(set) = self.node.get_set(&set) {
                    self.node.drop_set(set.id())?;
                }
                Ok(Response::Ok)
            }
            Request::ShuffleCreate {
                name,
                partitions,
                page_size,
            } => {
                let mut shuffles = self.shuffles.lock();
                if shuffles.contains_key(&name) {
                    return Err(PangeaError::usage(format!(
                        "shuffle '{name}' already exists"
                    )));
                }
                let mut config = ShuffleConfig::new(partitions);
                if let Some(ps) = page_size {
                    config = config.with_page_size(ps as usize);
                }
                let service = ShuffleService::create(&self.node, &name, config)?;
                shuffles.insert(name, service);
                Ok(Response::Ok)
            }
            Request::ShuffleSend {
                name,
                partition,
                records,
            } => {
                let service = self.get_shuffle(&name)?;
                let mut buffer = service.virtual_buffer(PartitionId(partition))?;
                for rec in &records {
                    self.stats.record_net(rec.len());
                    buffer.add_object(rec)?;
                }
                buffer.flush()?;
                Ok(Response::Appended {
                    records: records.len() as u64,
                })
            }
            Request::ShuffleFinish { name } => {
                self.get_shuffle(&name)?.finish_writes()?;
                Ok(Response::Ok)
            }
            Request::Deliver { from: _, payload } => {
                self.stats.record_net(payload.len());
                self.stats.record_copy(payload.len());
                Ok(Response::Delivered {
                    len: payload.len() as u64,
                    checksum: pangea_common::fx_hash64(&payload),
                })
            }
            Request::Stats => {
                let net = self.stats.snapshot();
                let disk = self.node.disk_stats().snapshot();
                Ok(Response::Stats {
                    net_bytes: net.net_bytes,
                    net_messages: net.net_messages,
                    disk_read_bytes: disk.disk_read_bytes,
                    disk_write_bytes: disk.disk_write_bytes,
                })
            }
            Request::MgrRegisterWorker { .. }
            | Request::MgrHeartbeat { .. }
            | Request::MgrDeregisterWorker { .. }
            | Request::MgrListWorkers
            | Request::MgrRegisterSet { .. }
            | Request::MgrDeregisterSet { .. }
            | Request::MgrEntry { .. }
            | Request::MgrSetNames
            | Request::MgrAddStats { .. }
            | Request::MgrLinkReplicas { .. }
            | Request::MgrGroupMembers { .. }
            | Request::MgrGroups
            | Request::MgrBestReplica { .. } => Err(PangeaError::usage(
                "manager request sent to a storage node; connect to pangea-mgr instead",
            )),
        }
    }

    fn get_set(&self, name: &str) -> Result<pangea_core::LocalitySet> {
        self.node
            .get_set(name)
            .ok_or_else(|| PangeaError::usage(format!("locality set '{name}' not found")))
    }

    fn get_shuffle(&self, name: &str) -> Result<ShuffleService> {
        self.shuffles
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| PangeaError::usage(format!("shuffle '{name}' not found")))
    }
}

impl FramedService for Pangead {
    fn handle(&self, req: Request) -> Response {
        Pangead::handle(self, req)
    }
}

/// A running `pangead` server: one [`Pangead`] behind a [`FramedServer`].
#[derive(Debug)]
pub struct PangeadServer {
    daemon: Arc<Pangead>,
    server: FramedServer,
}

impl PangeadServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `node` without a handshake secret.
    pub fn bind(node: StorageNode, addr: impl ToSocketAddrs) -> Result<Self> {
        Self::bind_with_secret(node, addr, None)
    }

    /// Binds `addr` and serves `node`, requiring every connection to
    /// open with [`Request::Hello`] carrying `secret` when one is given.
    pub fn bind_with_secret(
        node: StorageNode,
        addr: impl ToSocketAddrs,
        secret: Option<String>,
    ) -> Result<Self> {
        let daemon = Arc::new(Pangead::new(node));
        let server =
            FramedServer::bind(Arc::clone(&daemon) as Arc<dyn FramedService>, addr, secret)?;
        Ok(Self { daemon, server })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The protocol daemon (for inspecting the node or its counters).
    pub fn daemon(&self) -> &Arc<Pangead> {
        &self.daemon
    }

    /// Gracefully stops the server with the default drain window: stops
    /// accepting, lets in-flight requests finish, closes connections,
    /// and joins every handler thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.server.shutdown(DEFAULT_DRAIN);
    }

    /// [`PangeadServer::shutdown`] with an explicit drain window.
    pub fn shutdown_with_drain(&mut self, drain: Duration) {
        self.server.shutdown(drain);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::PangeaClient;
    use pangea_core::NodeConfig;

    fn node(tag: &str) -> StorageNode {
        let dir = std::env::temp_dir().join(format!(
            "pangea-pangead-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        StorageNode::new(
            NodeConfig::new(dir)
                .with_pool_capacity(256 * pangea_common::KB)
                .with_page_size(4 * pangea_common::KB),
        )
        .unwrap()
    }

    #[test]
    fn dispatch_covers_the_set_lifecycle() {
        let d = Pangead::new(node("lifecycle"));
        let resp = d.handle(Request::CreateSet {
            name: "events".into(),
            durability: "write-back".into(),
            page_size: None,
        });
        assert!(matches!(resp, Response::Created { .. }), "{resp:?}");
        let resp = d.handle(Request::Append {
            set: "events".into(),
            records: vec![b"a".to_vec(), b"bb".to_vec()],
        });
        assert_eq!(resp, Response::Appended { records: 2 });
        match d.handle(Request::Scan {
            set: "events".into(),
        }) {
            Response::Records { records } => {
                assert_eq!(records, vec![b"a".to_vec(), b"bb".to_vec()]);
            }
            other => panic!("{other:?}"),
        }
        match d.handle(Request::PageNumbers {
            set: "events".into(),
        }) {
            Response::Pages { nums } => assert_eq!(nums, vec![0]),
            other => panic!("{other:?}"),
        }
        match d.handle(Request::FetchPage {
            set: "events".into(),
            num: 0,
        }) {
            Response::Page { bytes } => assert_eq!(bytes.len(), 4 * pangea_common::KB),
            other => panic!("{other:?}"),
        }
        // Dropping the set makes it unknown.
        assert_eq!(
            d.handle(Request::DropSet {
                set: "events".into()
            }),
            Response::Ok
        );
        assert!(matches!(
            d.handle(Request::Scan {
                set: "events".into()
            }),
            Response::Err { .. }
        ));
    }

    #[test]
    fn missing_set_is_a_wire_error() {
        let d = Pangead::new(node("missing"));
        match d.handle(Request::Scan { set: "nope".into() }) {
            Response::Err { message } => assert!(message.contains("nope")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn manager_requests_are_rejected_by_storage_nodes() {
        let d = Pangead::new(node("mgr-reject"));
        match d.handle(Request::MgrListWorkers) {
            Response::Err { message } => assert!(message.contains("pangea-mgr")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shuffle_over_dispatch() {
        let d = Pangead::new(node("shuffle"));
        assert_eq!(
            d.handle(Request::ShuffleCreate {
                name: "wc".into(),
                partitions: 2,
                page_size: None,
            }),
            Response::Ok
        );
        d.handle(Request::ShuffleSend {
            name: "wc".into(),
            partition: 0,
            records: vec![b"alpha".to_vec()],
        });
        d.handle(Request::ShuffleSend {
            name: "wc".into(),
            partition: 1,
            records: vec![b"beta".to_vec(), b"gamma".to_vec()],
        });
        assert_eq!(
            d.handle(Request::ShuffleFinish { name: "wc".into() }),
            Response::Ok
        );
        match d.handle(Request::Scan {
            set: "wc.part1".into(),
        }) {
            Response::Records { records } => {
                assert_eq!(records, vec![b"beta".to_vec(), b"gamma".to_vec()]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn deliver_counts_payload_bytes() {
        let d = Pangead::new(node("deliver"));
        let resp = d.handle(Request::Deliver {
            from: 0,
            payload: vec![9; 128],
        });
        assert_eq!(
            resp,
            Response::Delivered {
                len: 128,
                checksum: pangea_common::fx_hash64(&[9; 128]),
            }
        );
        assert_eq!(d.stats().snapshot().net_bytes, 128);
    }

    #[test]
    fn server_binds_and_shuts_down() {
        let mut server = PangeadServer::bind(node("bind"), "127.0.0.1:0").unwrap();
        assert_ne!(server.local_addr().port(), 0);
        server.shutdown();
        server.shutdown(); // idempotent
    }

    #[test]
    fn shutdown_drains_open_connections() {
        let mut server = PangeadServer::bind(node("drain"), "127.0.0.1:0").unwrap();
        let mut client = PangeaClient::connect(server.local_addr()).unwrap();
        client.ping().unwrap();
        // The connection is idle (registered, not in flight): shutdown
        // closes it and joins the handler instead of hanging forever.
        server.shutdown_with_drain(Duration::from_millis(200));
        assert!(client.ping().is_err(), "connection closed by drain");
    }

    #[test]
    fn handshake_gates_every_request_when_secret_is_set() {
        let server = PangeadServer::bind_with_secret(
            node("secret"),
            "127.0.0.1:0",
            Some("letmein".to_string()),
        )
        .unwrap();

        // No Hello: first real request is rejected with a typed error.
        let mut bare = PangeaClient::connect(server.local_addr()).unwrap();
        match bare.ping() {
            Err(PangeaError::Unauthenticated(m)) => assert!(m.contains("Hello"), "{m}"),
            other => panic!("expected Unauthenticated, got {other:?}"),
        }

        // Wrong secret: rejected.
        match PangeaClient::connect_with_secret(server.local_addr(), Some("wrong")) {
            Err(PangeaError::Unauthenticated(_)) => {}
            other => panic!("expected Unauthenticated, got {other:?}"),
        }

        // Right secret: full service.
        let mut authed =
            PangeaClient::connect_with_secret(server.local_addr(), Some("letmein")).unwrap();
        authed.ping().unwrap();
        authed.create_set("ok", "write-through", None).unwrap();
        assert_eq!(authed.append("ok", &["x"]).unwrap(), 1);
    }

    #[test]
    fn hello_is_harmless_without_a_secret() {
        let server = PangeadServer::bind(node("nosecret"), "127.0.0.1:0").unwrap();
        let mut client =
            PangeaClient::connect_with_secret(server.local_addr(), Some("anything")).unwrap();
        client.ping().unwrap();
    }
}
