//! Framed TCP serving, and `pangead` — the Pangea node daemon.
//!
//! Two layers:
//!
//! * [`FramedServer`] — a reusable io-pool server core for any
//!   [`FramedService`]: one reader thread per accepted connection demuxes
//!   correlated frames into a per-connection FIFO queue, a bounded worker
//!   pool ([`ServerConfig::io_threads`]) executes handlers, and responses
//!   are re-serialized per connection under a write lock — so one
//!   connection can carry many in-flight requests while execution stays
//!   strictly in submission order per connection (which is what the
//!   begin/append/end session protocols require). Connections beyond
//!   [`ServerConfig::max_conns`] are refused with a typed
//!   [`Response::Busy`] instead of an unbounded thread spawn; an optional
//!   shared-secret handshake rejects unauthenticated peers with a typed
//!   [`Response::Denied`]; graceful shutdown stops accepting, drains
//!   in-flight requests, closes the remaining connections, and joins
//!   every thread. `pangead` and `pangea-mgr` (the `pangea-coord`
//!   manager daemon) both serve through it.
//! * [`Pangead`] — the protocol brain of a node daemon: wraps one
//!   [`StorageNode`] and dispatches decoded requests against it. The
//!   dispatch is pure request → response and does not know about sockets,
//!   so it is testable (and reusable) without any networking.

use crate::client::PangeaClient;
use crate::frame::{read_frame_corr, write_frame, write_frame_corr};
use crate::proto::{error_response, Request, Response};
use crate::wire::{
    ingest_tag, ReduceSpec, RepairFilter, SchemeSpec, TaskReport, TaskSpec, WireMetric, WireSpan,
};
use pangea_common::{fx_hash64, FxHashMap, IoStats, PangeaError, PartitionId, Result};
use pangea_core::{
    HashConfig, ObjectIter, ReduceBuffer, SetOptions, ShuffleConfig, ShuffleService, SpillLedger,
    StorageNode,
};
use pangea_obs::{names, Counter, Gauge, MetricValue, Obs, Registry, SpanRecord, TraceCtx};
use parking_lot::Mutex;
use std::collections::hash_map::Entry;
use std::collections::VecDeque;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long [`FramedServer::shutdown`] waits for in-flight requests
/// before closing their connections anyway.
pub const DEFAULT_DRAIN: Duration = Duration::from_secs(5);

/// Worker threads in the io pool when [`ServerConfig`] does not say.
pub const DEFAULT_IO_THREADS: usize = 4;

/// Live-connection cap when [`ServerConfig`] does not say.
pub const DEFAULT_MAX_CONNS: usize = 256;

/// Tuning for the [`FramedServer`] io-pool core.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Worker threads executing handlers (`0` = [`DEFAULT_IO_THREADS`]).
    /// Heavyweight requests that themselves fan out over the wire
    /// (task runs, repair pushes) are offloaded to dedicated threads so
    /// they can never occupy the whole pool and deadlock a fleet of
    /// daemons all waiting on each other.
    pub io_threads: usize,
    /// Live-connection cap (`0` = [`DEFAULT_MAX_CONNS`]). Connections
    /// beyond it are refused with a typed [`Response::Busy`].
    pub max_conns: usize,
    /// When set, the server publishes `net.conns_open` (gauge) and
    /// `net.busy_rejects` (counter) here.
    pub registry: Option<Arc<Registry>>,
    /// Outbound push-pipelining window for the daemon's own fan-out
    /// (task ingest, repair streaming): batches in flight per peer
    /// before awaiting the oldest ack. `0` keeps
    /// [`DEFAULT_PIPELINE_WINDOW`]; `1` is strict-serial. Receiver
    /// credit can shrink the effective window below this, never above
    /// [`MAX_PIPELINE_WINDOW`]. Ignored by [`FramedServer`] itself
    /// (which has no outbound pushes); [`PangeadServer`] applies it to
    /// its [`Pangead`].
    pub pipeline_window: u32,
}

/// Anything that can answer one decoded request. Implementations must
/// not block indefinitely: a pool worker (or offload thread) holds its
/// connection's execution slot for the duration of a call.
pub trait FramedService: std::fmt::Debug + Send + Sync + 'static {
    /// Handles one request, mapping internal errors to error responses.
    fn handle(&self, req: Request) -> Response;

    /// Handles one request with its wire-decoded [`TraceCtx`] (when the
    /// frame carried one) and the request payload size in bytes.
    /// Observability-aware services override this to record per-opcode
    /// metrics and span records; the default simply forwards to
    /// [`FramedService::handle`], so plain services need no change.
    fn handle_traced(&self, req: Request, _ctx: Option<TraceCtx>, _req_bytes: usize) -> Response {
        self.handle(req)
    }
}

/// One accepted connection as the io pool sees it: its demuxed request
/// queue, the write half responses are serialized onto, and the claim
/// flag that guarantees at most one executor drains the queue at a time
/// (per-connection FIFO ⇒ per-(connection, session) ordering).
#[derive(Debug)]
struct ConnState {
    id: u64,
    /// Clone of the socket used only to `shutdown(2)` it — unblocking
    /// the reader — at server shutdown or on a fatal write error.
    stream: TcpStream,
    /// The write half. Responses are one `write_frame_corr` under this
    /// lock, so frames from pool workers and offload threads never
    /// interleave.
    writer: Mutex<TcpStream>,
    /// Demuxed `(correlation, payload)` requests, submission order.
    queue: Mutex<VecDeque<(u64, Vec<u8>)>>,
    /// True while an executor owns the queue (it is either on the run
    /// queue or being drained). The claim moves with the work: a worker
    /// that offloads a heavyweight request keeps the connection claimed
    /// until the offload thread releases it.
    claimed: AtomicBool,
    /// Flipped by a successful `Hello`; checked at execution time (the
    /// per-connection FIFO makes a pipelined Hello-then-requests safe).
    authenticated: AtomicBool,
    /// Poisoned: drop queued work and stop executing (auth rejection or
    /// a failed response write).
    close: AtomicBool,
}

/// State shared by the accept loop, readers, and the worker pool.
#[derive(Debug)]
struct ServerShared {
    conns: Mutex<FxHashMap<u64, Arc<ConnState>>>,
    /// Connections with queued work, awaiting a pool worker. A
    /// connection appears at most once (the `claimed` flag gates entry).
    /// `std::sync` rather than the parking_lot shim: the condvar must
    /// pair with its own mutex's guard type.
    run_queue: std::sync::Mutex<VecDeque<Arc<ConnState>>>,
    work_ready: std::sync::Condvar,
    readers: Mutex<Vec<JoinHandle<()>>>,
    offloads: Mutex<Vec<JoinHandle<()>>>,
    next_conn: AtomicU64,
    in_flight: AtomicUsize,
    stop_workers: AtomicBool,
    secret: Option<String>,
    max_conns: usize,
    conns_open: Gauge,
    busy_rejects: Counter,
}

impl ServerShared {
    fn deregister(&self, id: u64) {
        let mut conns = self.conns.lock();
        conns.remove(&id);
        self.conns_open.set(conns.len() as u64);
    }
}

/// Puts `conn` on the run queue if no executor owns it yet. Called by
/// readers after enqueueing work and by executors when they release a
/// non-empty connection.
fn schedule_conn(shared: &ServerShared, conn: &Arc<ConnState>) {
    if conn
        .claimed
        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
        .is_ok()
    {
        shared
            .run_queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(Arc::clone(conn));
        shared.work_ready.notify_one();
    }
}

/// Releases an executor's claim, re-scheduling the connection if work
/// arrived between the last queue pop and the release (the standard
/// lost-wakeup handoff: release first, then re-check).
fn release_conn(shared: &ServerShared, conn: &Arc<ConnState>) {
    conn.claimed.store(false, Ordering::SeqCst);
    if !conn.queue.lock().is_empty() {
        schedule_conn(shared, conn);
    }
}

/// A running framed server: accept loop, per-connection readers, and a
/// bounded worker pool over one [`FramedService`]. Dropping the server
/// shuts it down gracefully.
#[derive(Debug)]
pub struct FramedServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    /// Clone of the accept socket, used to unblock the accept loop at
    /// shutdown (switching it to non-blocking) without relying on a
    /// self-connect that may be firewalled on wildcard binds. Dropped
    /// (closing the listening socket) once the accept loop is joined:
    /// while any clone lives, the kernel keeps completing handshakes
    /// into the dead server's backlog, and a client that "connects"
    /// there would block forever awaiting a response no one serves.
    listener: Option<TcpListener>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<ServerShared>,
}

impl FramedServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and serves
    /// `service` with default [`ServerConfig`]. When `secret` is set,
    /// every connection must open with a matching [`Request::Hello`]
    /// before any other request.
    pub fn bind(
        service: Arc<dyn FramedService>,
        addr: impl ToSocketAddrs,
        secret: Option<String>,
    ) -> Result<Self> {
        Self::bind_with_config(service, addr, secret, ServerConfig::default())
    }

    /// [`FramedServer::bind`] with explicit io-pool tuning.
    pub fn bind_with_config(
        service: Arc<dyn FramedService>,
        addr: impl ToSocketAddrs,
        secret: Option<String>,
        config: ServerConfig,
    ) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let wake_handle = listener.try_clone()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let io_threads = match config.io_threads {
            0 => DEFAULT_IO_THREADS,
            n => n,
        };
        let max_conns = match config.max_conns {
            0 => DEFAULT_MAX_CONNS,
            n => n,
        };
        let (conns_open, busy_rejects) = match &config.registry {
            Some(reg) => (
                reg.gauge(names::NET_CONNS_OPEN),
                reg.counter(names::NET_BUSY_REJECTS),
            ),
            None => (Gauge::new(), Counter::new()),
        };
        let shared = Arc::new(ServerShared {
            conns: Mutex::new(FxHashMap::default()),
            run_queue: std::sync::Mutex::new(VecDeque::new()),
            work_ready: std::sync::Condvar::new(),
            readers: Mutex::new(Vec::new()),
            offloads: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            stop_workers: AtomicBool::new(false),
            secret,
            max_conns,
            conns_open,
            busy_rejects,
        });
        let mut workers = Vec::with_capacity(io_threads);
        for i in 0..io_threads {
            let service = Arc::clone(&service);
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("framed-io-{i}"))
                    .spawn(move || worker_loop(service, shared))?,
            );
        }
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("framed-accept-{local_addr}"))
                .spawn(move || accept_loop(listener, shutdown, shared))?
        };
        Ok(Self {
            local_addr,
            shutdown,
            listener: Some(wake_handle),
            accept: Some(accept),
            workers,
            shared,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently registered (diagnostics).
    pub fn open_connections(&self) -> usize {
        self.shared.conns.lock().len()
    }

    /// Gracefully stops the server: no new connections are accepted,
    /// in-flight requests (queued or executing) get up to `drain` to
    /// finish (their responses are written), remaining connections are
    /// closed, and every reader, pool worker, and offload thread is
    /// joined. Idempotent.
    pub fn shutdown(&mut self, drain: Duration) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop: flip the shared socket non-blocking so
        // the pending accept returns WouldBlock and the loop sees the
        // flag. The throwaway self-connect is a second wake-up path for
        // platforms where the mode switch does not interrupt an accept
        // already in progress.
        if let Some(listener) = &self.listener {
            let _ = listener.set_nonblocking(true);
        }
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Close the listening socket for real: new connection attempts
        // must be refused (a typed, prompt failure at the client), not
        // parked in the backlog of a server that will never answer.
        drop(self.listener.take());
        // Drain: wait for requests already demuxed (queued or being
        // handled). Connections idle between requests are not in flight
        // and close immediately.
        let deadline = Instant::now() + drain;
        while self.shared.in_flight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Unblock readers waiting for their peer's next request, then
        // join them.
        for (_, conn) in self.shared.conns.lock().drain() {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        self.shared.conns_open.set(0);
        for handle in self.shared.readers.lock().drain(..) {
            let _ = handle.join();
        }
        // Stop the pool (workers re-check the flag on a short wait
        // timeout, so a missed notify cannot hang the join).
        self.shared.stop_workers.store(true, Ordering::SeqCst);
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        for handle in self.shared.offloads.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for FramedServer {
    fn drop(&mut self) {
        self.shutdown(DEFAULT_DRAIN);
    }
}

fn accept_loop(listener: TcpListener, shutdown: Arc<AtomicBool>, shared: Arc<ServerShared>) {
    for conn in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Only reachable once shutdown() flips the socket
                // non-blocking; re-check the flag at the top of the loop.
                std::thread::yield_now();
                continue;
            }
            Err(_) => {
                // Persistent accept errors (e.g. fd exhaustion) must not
                // busy-spin a core; back off briefly before retrying.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        stream.set_nodelay(true).ok();
        // The connection cap replaces the old unbounded handler spawn:
        // beyond it, refuse with a typed Busy the client can dispatch on
        // (back off, redial) instead of parking in a thread pile-up.
        if shared.conns.lock().len() >= shared.max_conns {
            shared.busy_rejects.inc();
            let mut stream = stream;
            let busy = error_response(&PangeaError::Busy(format!(
                "at the {}-connection cap",
                shared.max_conns
            )));
            let _ = write_frame(&mut stream, &busy.encode());
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        let (writer, shutdown_handle) = match (stream.try_clone(), stream.try_clone()) {
            (Ok(w), Ok(s)) => (w, s),
            _ => continue,
        };
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        let conn = Arc::new(ConnState {
            id: conn_id,
            stream: shutdown_handle,
            writer: Mutex::new(writer),
            queue: Mutex::new(VecDeque::new()),
            claimed: AtomicBool::new(false),
            authenticated: AtomicBool::new(shared.secret.is_none()),
            close: AtomicBool::new(false),
        });
        {
            let mut conns = shared.conns.lock();
            conns.insert(conn_id, Arc::clone(&conn));
            shared.conns_open.set(conns.len() as u64);
        }
        let reader_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("framed-read".into())
            .spawn(move || reader_loop(stream, conn, reader_shared));
        match spawned {
            Ok(handle) => {
                let mut readers = shared.readers.lock();
                readers.retain(|h| !h.is_finished());
                readers.push(handle);
            }
            Err(_) => shared.deregister(conn_id),
        }
    }
}

/// Reads frames off one connection until EOF or a fatal stream error,
/// demuxing each into the connection's work queue.
fn reader_loop(mut stream: TcpStream, conn: Arc<ConnState>, shared: Arc<ServerShared>) {
    loop {
        match read_frame_corr(&mut stream) {
            Ok(Some((corr, payload))) => {
                shared.in_flight.fetch_add(1, Ordering::SeqCst);
                conn.queue.lock().push_back((corr, payload));
                schedule_conn(&shared, &conn);
            }
            Ok(None) => break, // peer hung up cleanly
            Err(e) => {
                // Desynchronized stream: report once (uncorrelated — the
                // reader no longer knows which request is which), then
                // give up.
                let mut w = conn.writer.lock();
                let _ = write_frame(&mut *w, &error_response(&e).encode());
                break;
            }
        }
    }
    // Queued requests keep executing; their responses land in the OS
    // buffer of a half-closed socket (or fail, poisoning the conn).
    shared.deregister(conn.id);
}

/// One io-pool worker: pop a runnable connection, drain its queue.
fn worker_loop(service: Arc<dyn FramedService>, shared: Arc<ServerShared>) {
    loop {
        let conn = {
            let mut rq = shared.run_queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if shared.stop_workers.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(c) = rq.pop_front() {
                    break c;
                }
                // The timeout re-checks `stop_workers`, so a notify lost
                // to a race can never hang the shutdown join.
                rq = shared
                    .work_ready
                    .wait_timeout(rq, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        };
        drain_conn(&service, &shared, conn);
    }
}

/// True for requests that themselves issue nested outbound RPCs (mapper
/// fan-out, repair pushes, peer ledger seeding). These run on dedicated
/// offload threads: if they could occupy every pool worker, a ring of
/// daemons pushing to each other would deadlock — every pool full of
/// senders, no worker left to serve the matching appends.
fn is_heavyweight(req: &Request) -> bool {
    matches!(
        req,
        Request::TaskRun { .. } | Request::RecoverPush { .. } | Request::RecoverBegin { .. }
    )
}

/// Executes one connection's queued requests in FIFO order until the
/// queue is empty (release), a heavyweight request is offloaded (the
/// claim moves with it), or the connection is poisoned.
fn drain_conn(service: &Arc<dyn FramedService>, shared: &Arc<ServerShared>, conn: Arc<ConnState>) {
    loop {
        if conn.close.load(Ordering::SeqCst) {
            let dropped = {
                let mut q = conn.queue.lock();
                let n = q.len();
                q.clear();
                n
            };
            if dropped > 0 {
                shared.in_flight.fetch_sub(dropped, Ordering::SeqCst);
            }
            release_conn(shared, &conn);
            return;
        }
        let Some((corr, payload)) = conn.queue.lock().pop_front() else {
            release_conn(shared, &conn);
            return;
        };
        match Request::decode_traced(&payload) {
            Ok((Request::Hello { secret }, _)) => {
                let response = match &shared.secret {
                    Some(expected) if *expected == secret => {
                        conn.authenticated.store(true, Ordering::SeqCst);
                        Response::Ok
                    }
                    Some(_) => {
                        conn.close.store(true, Ordering::SeqCst);
                        error_response(&PangeaError::Unauthenticated(
                            "handshake secret does not match".into(),
                        ))
                    }
                    // No secret configured: a Hello is a harmless no-op.
                    None => Response::Ok,
                };
                let rejected = conn.close.load(Ordering::SeqCst);
                finish_request(shared, &conn, corr, response);
                if rejected {
                    let _ = conn.stream.shutdown(Shutdown::Both);
                }
            }
            Ok((req, _)) if !conn.authenticated.load(Ordering::SeqCst) => {
                conn.close.store(true, Ordering::SeqCst);
                finish_request(
                    shared,
                    &conn,
                    corr,
                    error_response(&PangeaError::Unauthenticated(format!(
                        "this daemon requires a Hello handshake before {req:?}"
                    ))),
                );
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
            Ok((req, ctx)) if is_heavyweight(&req) => {
                let service2 = Arc::clone(service);
                let shared2 = Arc::clone(shared);
                let conn2 = Arc::clone(&conn);
                let bytes = payload.len();
                let spawned = std::thread::Builder::new()
                    .name("framed-offload".into())
                    .spawn(move || {
                        let response = service2.handle_traced(req, ctx, bytes);
                        finish_request(&shared2, &conn2, corr, response);
                        // Hand the still-claimed connection back to the
                        // pool (later queued requests stayed parked, so
                        // FIFO order held across the offload).
                        release_conn(&shared2, &conn2);
                    });
                match spawned {
                    Ok(handle) => {
                        let mut offloads = shared.offloads.lock();
                        offloads.retain(|h| !h.is_finished());
                        offloads.push(handle);
                        return;
                    }
                    Err(_) => {
                        // Could not spawn (the request moved into the
                        // failed closure): answer typed-Busy so the
                        // caller retries instead of hanging.
                        finish_request(
                            shared,
                            &conn,
                            corr,
                            error_response(&PangeaError::Busy(
                                "no thread available for a task/push request".into(),
                            )),
                        );
                    }
                }
            }
            Ok((req, ctx)) => {
                let response = service.handle_traced(req, ctx, payload.len());
                finish_request(shared, &conn, corr, response);
            }
            Err(e) => finish_request(shared, &conn, corr, error_response(&e)),
        }
    }
}

/// Writes one response frame (mirroring the request's correlation) and
/// retires its in-flight slot. A failed write poisons the connection.
fn finish_request(shared: &ServerShared, conn: &ConnState, corr: u64, response: Response) {
    let write_ok = {
        let mut w = conn.writer.lock();
        write_frame_corr(&mut *w, corr, &response.encode()).is_ok()
    };
    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    if !write_ok {
        conn.close.store(true, Ordering::SeqCst);
        let _ = conn.stream.shutdown(Shutdown::Both);
    }
}

/// Maximum metrics in one [`Response::Metrics`] chunk.
pub const METRICS_CHUNK: usize = 512;
/// Maximum spans in one [`Response::Metrics`] chunk.
pub const SPANS_CHUNK: usize = 1024;

/// Builds one [`Response::Metrics`] chunk from an [`Obs`] bundle: the
/// registry snapshot paged by metric index, the span ring paged by ring
/// sequence number, and a resume cursor while either list has more.
/// Shared by `pangead` and `pangea-mgr` — both daemons serve the
/// identical `MetricsDump` wire shape.
pub fn metrics_dump_response(obs: &Obs, metrics_start: u64, spans_start: u64) -> Response {
    // Freshen the span-loss ledger BEFORE snapshotting so the very dump
    // that lost history also reports it: a ring that wrapped past a
    // reader's cursor must never present a complete-looking trace.
    obs.registry()
        .counter(names::TRACE_DROPPED_SPANS)
        .set(obs.ring().dropped_total());
    let snapshot = obs.registry().snapshot();
    let total_metrics = snapshot.len() as u64;
    let metrics: Vec<WireMetric> = snapshot
        .into_iter()
        .skip(metrics_start as usize)
        .take(METRICS_CHUNK)
        .map(|m| match m.value {
            MetricValue::Counter(value) => WireMetric::Counter {
                name: m.name,
                value,
            },
            MetricValue::Gauge(value) => WireMetric::Gauge {
                name: m.name,
                value,
            },
            MetricValue::Histogram {
                count,
                sum,
                buckets,
            } => WireMetric::Histogram {
                name: m.name,
                count,
                sum,
                buckets,
            },
        })
        .collect();
    let metrics_next = metrics_start.saturating_add(metrics.len() as u64);
    let retained = obs.ring().since(spans_start);
    let more_spans = retained.len() > SPANS_CHUNK;
    let spans: Vec<WireSpan> = retained
        .into_iter()
        .take(SPANS_CHUNK)
        .map(|(seq, s)| WireSpan {
            seq,
            job: s.job,
            span: s.span,
            parent: s.parent,
            op: s.op,
            peer: s.peer,
            start_ns: s.start_ns,
            end_ns: s.end_ns,
            bytes: s.bytes,
            outcome: s.outcome,
        })
        .collect();
    // Advance the span cursor past what this chunk shipped; when the
    // ring was drained, park it at the ring's next sequence number so a
    // resumed dump does not re-fetch these spans.
    let spans_next = spans
        .last()
        .map(|s| s.seq + 1)
        .unwrap_or_else(|| obs.ring().next_seq().max(spans_start));
    let next = (metrics_next < total_metrics || more_spans).then_some((metrics_next, spans_next));
    Response::Metrics {
        metrics,
        spans,
        next,
    }
}

/// A span outcome label for one response: `"ok"`, or the error's wire
/// message truncated to keep ring records bounded.
fn outcome_of(resp: &Response) -> String {
    let text = match resp {
        Response::Err { message } => message.as_str(),
        Response::Denied { message } => message.as_str(),
        Response::Stale { .. } => "stale epoch",
        Response::ScanTooLarge { .. } => "scan too large",
        _ => return "ok".to_string(),
    };
    let mut out = String::with_capacity(96);
    for c in text.chars().take(96) {
        out.push(c);
    }
    out
}

/// One open repair session on a replacement node: the dedup ledger plus
/// running totals, keyed by target set in [`Pangead::repairs`].
#[derive(Debug)]
struct RepairSession {
    /// `fx_hash64` of every record either present in the surviving share
    /// (seeded at `RecoverBegin`) or appended by this session — each
    /// lost record is restored exactly once, however many survivors
    /// push it and however often a push is retried. A [`SpillLedger`],
    /// so a huge share's ledger pages through the pool instead of
    /// growing unbounded heap; its frozen snapshot (taken after
    /// seeding) is what the paginated `RepairLedger` RPC serves —
    /// index-stable while concurrent pushes keep growing the live
    /// membership.
    seen: SpillLedger,
    appended: u64,
    bytes: u64,
}

/// One open shuffle-ingest session on a destination node: the
/// provenance-tag dedup ledger plus running totals, keyed by target set
/// in [`Pangead::ingests`]. Unlike a [`RepairSession`], the ledger
/// tracks [`ingest_tag`]s — `(source, ordinal, bytes)` provenance — not
/// record content: a shuffle output may contain honest duplicates, and
/// only *re-pushed* records (task retries, lost-ack replays) dedup away.
#[derive(Debug)]
struct IngestSession {
    seen: SpillLedger,
    appended: u64,
    bytes: u64,
    /// Reducing mode: incoming records are `key|value` partials folded
    /// into this keyed accumulator (after the usual tag dedup) instead
    /// of being appended; `IngestEnd` materializes the accumulator into
    /// the set in sorted-key order. The accumulator is a [`ReduceBuffer`]
    /// over pool pages (the paper's §8 hash service), so a fold larger
    /// than memory spills partial aggregates instead of killing the
    /// worker. The per-batch totals then count partials *accepted into
    /// the fold*, and the sealed totals count what was materialized.
    reduce: Option<(ReduceSpec, ReduceBuffer)>,
}

/// Per-push batching thresholds for the survivor's streaming loop
/// (mirrors the engine's default `DispatchConfig`).
const PUSH_BATCH_RECORDS: usize = 256;
const PUSH_BATCH_BYTES: usize = 128 * 1024;

/// Most distinct peer addresses the outbound pool caches idle
/// connections for (see [`Pangead::checkin_peer`]).
const PEER_POOL_CAP: usize = 64;

/// Default pipeline window for this daemon's *outbound* pushes (mapper
/// ingest fan-out, repair streaming): how many batches may be in flight
/// on one peer connection before the sender awaits the oldest ack.
/// Tasks can override it per-run via `TaskSpec::window`.
pub const DEFAULT_PIPELINE_WINDOW: u32 = 8;

/// Ceiling on any pipeline window — configured or credit-granted. Caps
/// the unacked bytes one sender can park in a receiver's socket and
/// session state (`MAX_PIPELINE_WINDOW * PUSH_BATCH_BYTES` ≈ 8 MB).
pub const MAX_PIPELINE_WINDOW: u32 = 64;

/// In-memory entries a session dedup ledger holds before spilling
/// sorted runs through the pool (≈512 KB of heap per session).
const LEDGER_SPILL_ENTRIES: usize = 64 * 1024;

/// Root partitions for per-session reduce accumulators. Small: a
/// session accumulator grows by page splits under memory headroom, so
/// roots only set the floor of pinned pages per open session.
const ACC_ROOT_PARTITIONS: u32 = 2;

/// A checked-out peer connection plus its pipelined-push state: the
/// correlation ids of unacked submits (oldest first, each with the
/// payload bytes it carried, for ack-time net accounting) and the
/// receiver's latest credit grant.
#[derive(Debug)]
struct PipelinedPeer {
    client: PangeaClient,
    /// `(correlation, payload_bytes)` of unacked submits, oldest first.
    inflight: VecDeque<(u64, usize)>,
    /// Latest credit grant from the receiver; `0` = no information yet
    /// (nothing acked, or a legacy peer), treated as unconstrained.
    credit: u64,
}

impl PipelinedPeer {
    fn new(client: PangeaClient) -> Self {
        Self {
            client,
            inflight: VecDeque::new(),
            credit: 0,
        }
    }

    /// The window that gates the next submit: the configured window,
    /// shrunk by the receiver's latest credit grant. Never below 1 — a
    /// memory-pressured receiver throttles senders to strict-serial,
    /// it does not starve them (its spill machinery needs batches to
    /// keep arriving one at a time to make progress against).
    fn effective_window(&self, configured: u32) -> usize {
        let configured = configured.max(1) as usize;
        if self.credit == 0 {
            configured
        } else {
            configured.min(self.credit as usize).max(1)
        }
    }
}

/// The protocol brain of a Pangea node daemon: dispatches decoded
/// requests against the wrapped [`StorageNode`].
#[derive(Debug)]
pub struct Pangead {
    node: StorageNode,
    /// Shuffle services created over the wire, by name.
    shuffles: Mutex<FxHashMap<String, ShuffleService>>,
    /// Open peer-repair sessions, by recovery target set. Each session
    /// carries its own lock so appends into one target never block
    /// sessions of unrelated sets behind disk I/O; the outer map lock
    /// is only ever held for a lookup.
    repairs: Mutex<FxHashMap<String, Arc<Mutex<RepairSession>>>>,
    /// Totals of sessions already sealed, by target set — the tombstone
    /// that makes `RecoverEnd` idempotent: a retry whose first ack was
    /// lost to a connection failure re-reads the same totals instead of
    /// failing on a session that no longer exists. Cleared by the next
    /// `RecoverBegin` for the set. Two `u64`s per recovered set.
    ended: Mutex<FxHashMap<String, (u64, u64)>>,
    /// Open shuffle-ingest sessions, by destination set. Same locking
    /// shape as [`Pangead::repairs`]: per-session locks, the outer map
    /// lock held only for lookups.
    ingests: Mutex<FxHashMap<String, Arc<Mutex<IngestSession>>>>,
    /// Sealed ingest totals, the `IngestEnd` idempotency tombstone
    /// (mirrors [`Pangead::ended`]).
    ingests_ended: Mutex<FxHashMap<String, (u64, u64)>>,
    /// Pooled *idle* outbound connections to sibling daemons, keyed by
    /// the advertised address they were opened against. A client is
    /// checked out for the duration of one RPC — the pool lock is never
    /// held across socket I/O — so repair pushes and shuffle pushes
    /// reuse one dial per peer instead of reconnecting per push.
    peers: Mutex<FxHashMap<String, PangeaClient>>,
    /// The deployment secret this daemon presents when it dials *other*
    /// daemons (repair peers). Independent of the inbound secret the
    /// surrounding [`FramedServer`] enforces, though deployments
    /// conventionally share one.
    peer_secret: Option<String>,
    /// Default outbound pipeline window (batches in flight per peer
    /// connection) for tasks that don't specify one; see
    /// [`DEFAULT_PIPELINE_WINDOW`].
    pipeline_window: u32,
    /// Payload bytes and messages received by this daemon.
    stats: Arc<IoStats>,
    /// This daemon's observability bundle: the metrics registry (shared
    /// with [`Pangead::stats`], so `io.*` volumes and `rpc.*` metrics
    /// land in one `MetricsDump`) plus the span ring.
    obs: Obs,
    /// Monotonic id appended to session backing-set names (ledger runs,
    /// reduce accumulators, combine accumulators, Absent-diff ledgers),
    /// so a replaced session's not-yet-released set never collides with
    /// its successor's.
    session_seq: AtomicU64,
}

impl Pangead {
    /// Wraps a storage node.
    pub fn new(node: StorageNode) -> Self {
        let stats = Arc::new(IoStats::new());
        let obs = Obs::with_registry(stats.registry().clone());
        Self {
            node,
            shuffles: Mutex::new(FxHashMap::default()),
            repairs: Mutex::new(FxHashMap::default()),
            ended: Mutex::new(FxHashMap::default()),
            ingests: Mutex::new(FxHashMap::default()),
            ingests_ended: Mutex::new(FxHashMap::default()),
            peers: Mutex::new(FxHashMap::default()),
            peer_secret: None,
            pipeline_window: DEFAULT_PIPELINE_WINDOW,
            stats,
            obs,
            session_seq: AtomicU64::new(0),
        }
    }

    /// A fresh, collision-free backing-set name for per-session state.
    fn session_set_name(&self, set: &str, kind: &str) -> String {
        let seq = self.session_seq.fetch_add(1, Ordering::Relaxed);
        format!("{set}::{kind}.{seq}")
    }

    /// Sets the secret this daemon presents when dialing repair peers.
    pub fn with_peer_secret(mut self, secret: Option<String>) -> Self {
        self.peer_secret = secret;
        self
    }

    /// Sets the default outbound pipeline window (`0` keeps the
    /// built-in [`DEFAULT_PIPELINE_WINDOW`]; values are clamped to
    /// [`MAX_PIPELINE_WINDOW`]). `1` makes every push strict-serial —
    /// the pre-pipelining behavior.
    pub fn with_pipeline_window(mut self, window: u32) -> Self {
        if window != 0 {
            self.pipeline_window = window.min(MAX_PIPELINE_WINDOW);
        }
        self
    }

    /// The credit grant stamped on every `IngestAck`/`RepairAck`: how
    /// many more in-flight push batches this daemon's pool residency
    /// can absorb. Free pool bytes divided by the batch ceiling,
    /// clamped to `[1, MAX_PIPELINE_WINDOW]` — never 0, because 0 is
    /// the wire's "no information" value (legacy peers) and because a
    /// full pool must still admit one batch at a time for the spill
    /// machinery to make progress against.
    fn flow_credit(&self) -> u64 {
        let p = self.node.paging_stats();
        let free = p.pool_capacity.saturating_sub(p.pool_used);
        (free / PUSH_BATCH_BYTES as u64).clamp(1, MAX_PIPELINE_WINDOW as u64)
    }

    /// The wrapped storage node.
    pub fn node(&self) -> &StorageNode {
        &self.node
    }

    /// Payload bytes received by this daemon (the server-side view of
    /// the transport's `record_net` accounting).
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// This daemon's observability bundle (metrics + span ring) — what
    /// its `MetricsDump` RPC serves.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Freshens the resource gauges every `MetricsDump` serves — the
    /// signals the tiered-memory arc will assert bounded-RSS claims
    /// against: `mem.share_bytes` (page-aligned on-disk footprint of
    /// every local share), `mem.session_bytes` (payload accumulated in
    /// still-open repair/ingest sessions), and `pool.peers` (pooled
    /// idle daemon connections). Computed on demand: a scrape interval
    /// is orders of magnitude longer than a walk over the catalog.
    fn freshen_resource_gauges(&self) {
        let reg = self.obs.registry();
        let share_bytes: u64 = self
            .node
            .set_ids()
            .into_iter()
            .filter_map(|id| self.node.get_set_by_id(id))
            .map(|set| set.bytes_on_disk())
            .sum();
        reg.gauge(names::MEM_SHARE_BYTES).set(share_bytes);
        // Clone the session handles out first: the outer map locks are
        // never held while a session lock (which appends hold across
        // disk I/O) is taken.
        let repairs: Vec<_> = self.repairs.lock().values().cloned().collect();
        let ingests: Vec<_> = self.ingests.lock().values().cloned().collect();
        let session_bytes: u64 = repairs
            .iter()
            .map(|s| s.lock().bytes)
            .chain(ingests.iter().map(|s| s.lock().bytes))
            .sum();
        reg.gauge(names::MEM_SESSION_BYTES).set(session_bytes);
        reg.gauge(names::POOL_PEERS)
            .set(self.peers.lock().len() as u64);
        // The tiered-memory signals: pin hits/misses and spill volume as
        // counters (the scrape loop computes rates), pool residency as
        // gauges — `paging.pool_used_bytes ≤ paging.pool_capacity_bytes`
        // is the bounded-memory claim in one comparison.
        let p = self.node.paging_stats();
        reg.counter(names::PAGING_HITS).set(p.hits);
        reg.counter(names::PAGING_MISSES).set(p.misses);
        reg.counter(names::PAGING_EVICTIONS).set(p.evictions);
        reg.counter(names::PAGING_SPILL_BYTES).set(p.spill_bytes);
        reg.gauge(names::PAGING_POOL_USED_BYTES).set(p.pool_used);
        reg.gauge(names::PAGING_POOL_CAPACITY_BYTES)
            .set(p.pool_capacity);
        reg.gauge(names::PAGING_RESIDENT_PAGES)
            .set(p.resident_pages);
        reg.gauge(names::PAGING_PINNED_PAGES).set(p.pinned_pages);
    }

    /// Handles one request, turning node errors into [`Response::Err`].
    pub fn handle(&self, req: Request) -> Response {
        self.handle_full(req, None, 0)
    }

    /// The instrumented handler behind both [`Pangead::handle`] and the
    /// [`FramedService::handle_traced`] seam: per-opcode count/bytes/
    /// latency metrics always; a [`SpanRecord`] when the frame carried
    /// a [`TraceCtx`]. The span id is allocated *before* dispatch so
    /// any fan-out this request performs (a `TaskRun`'s ingest pushes,
    /// a `RecoverPush`'s appends) propagates `(job, this span)` and the
    /// job's span tree stitches together across nodes.
    fn handle_full(&self, req: Request, ctx: Option<TraceCtx>, req_bytes: usize) -> Response {
        let op = req.name();
        let reg = self.obs.registry();
        reg.counter(&names::rpc_count(op)).inc();
        reg.counter(&names::rpc_bytes(op)).add(req_bytes as u64);
        let child = ctx.map(|c| TraceCtx {
            job: c.job,
            span: pangea_obs::next_span_id(),
        });
        let start = self.obs.now_ns();
        let resp = match self.dispatch(req, child) {
            Ok(resp) => resp,
            Err(e) => error_response(&e),
        };
        let end = self.obs.now_ns();
        reg.histogram(&names::rpc_latency_ns(op))
            .observe(end.saturating_sub(start));
        if let (Some(ctx), Some(child)) = (ctx, child) {
            self.obs.ring().record(SpanRecord {
                job: ctx.job,
                span: child.span,
                parent: ctx.span,
                op: op.to_string(),
                peer: String::new(),
                start_ns: start,
                end_ns: end,
                bytes: req_bytes as u64,
                outcome: outcome_of(&resp),
            });
        }
        resp
    }

    /// Dispatches one decoded request. `ctx`, when present, is the
    /// *child* context minted by [`Pangead::handle_full`] — `(job, this
    /// request's own span)` — which fan-out arms forward to peers.
    fn dispatch(&self, req: Request, ctx: Option<TraceCtx>) -> Result<Response> {
        match req {
            Request::Ping => Ok(Response::Ok),
            // The server layer handles handshakes; reaching here means no
            // secret is required on this daemon.
            Request::Hello { .. } => Ok(Response::Ok),
            Request::CreateSet {
                name,
                durability,
                page_size,
            } => {
                let mut options = SetOptions::from_durability_str(&durability)?;
                if let Some(ps) = page_size {
                    options = options.with_page_size(ps as usize);
                }
                // Idempotent, like DropSet — but only for a *matching*
                // request: a set that already exists with the same
                // options answers with its id, so distributed
                // (re-)provisioning — e.g. retrying a failed recovery —
                // needs no error parsing, while conflicting options
                // still fail loudly instead of being silently ignored.
                // A request without a page-size override expresses no
                // preference and matches any existing page size; only an
                // *explicit* mismatch conflicts. The catalog, not the
                // node, rejects duplicate distributed-set creation.
                if let Some(existing) = self.node.get_set(&name) {
                    let same = existing.durability() == options.durability
                        && page_size.is_none_or(|ps| existing.page_size() == ps as usize);
                    if same {
                        return Ok(Response::Created {
                            set: existing.id().raw(),
                        });
                    }
                    return Err(PangeaError::usage(format!(
                        "set '{name}' already exists with different options"
                    )));
                }
                let set = self.node.create_set(&name, options)?;
                Ok(Response::Created {
                    set: set.id().raw(),
                })
            }
            Request::Append { set, records } => {
                let set = self.get_set(&set)?;
                let mut writer = set.writer();
                for rec in &records {
                    self.stats.record_net(rec.len());
                    writer.add_object(rec)?;
                }
                writer.finish()?;
                Ok(Response::Appended {
                    records: records.len() as u64,
                })
            }
            Request::PageNumbers { set } => Ok(Response::Pages {
                nums: self.get_set(&set)?.page_numbers(),
            }),
            Request::FetchPage { set, num } => {
                let set = self.get_set(&set)?;
                let pin = set.pin_page(num)?;
                let bytes = pin.read().to_vec();
                Ok(Response::Page { bytes })
            }
            Request::Scan { set } => {
                let set = self.get_set(&set)?;
                let mut records = Vec::new();
                // Refuse (with a protocol error, not a dead socket) once
                // the reply could no longer fit one frame; large sets are
                // read page-by-page through FetchPage instead.
                let budget = crate::frame::MAX_FRAME / 2;
                let mut bytes = 0usize;
                for num in set.page_numbers() {
                    let pin = set.pin_page(num)?;
                    let mut it = ObjectIter::new(&pin);
                    while let Some(rec) = it.next() {
                        bytes += rec.len() + 4;
                        if bytes > budget {
                            return Err(PangeaError::ScanTooLarge {
                                set: set.name().to_string(),
                                budget: budget as u64,
                            });
                        }
                        records.push(rec.to_vec());
                    }
                }
                Ok(Response::Records { records })
            }
            Request::Count { set } => {
                let set = self.get_set(&set)?;
                let mut records = 0u64;
                for num in set.page_numbers() {
                    let pin = set.pin_page(num)?;
                    records += ObjectIter::new(&pin).count() as u64;
                }
                Ok(Response::Count { records })
            }
            Request::DropSet { set } => {
                // Idempotent: dropping a set the node never held is a
                // no-op, so distributed teardown needs no error parsing.
                //
                // Session state keyed by this set dies with it. Open
                // repair/ingest sessions and — crucially — sealed-totals
                // tombstones must not survive the drop: a set recreated
                // under the same name would otherwise answer a
                // `RecoverEnd`/`IngestEnd` retry with a *previous
                // life's* totals, and tombstones would accumulate
                // forever across jobs. Dropping a session's `Arc` also
                // releases its spill ledger and accumulator backing
                // sets.
                self.repairs.lock().remove(&set);
                self.ended.lock().remove(&set);
                self.ingests.lock().remove(&set);
                self.ingests_ended.lock().remove(&set);
                let reg = self.obs.registry();
                reg.gauge(names::SESSIONS_REPAIR_LIVE)
                    .set(self.repairs.lock().len() as u64);
                reg.gauge(names::SESSIONS_INGEST_LIVE)
                    .set(self.ingests.lock().len() as u64);
                if let Some(set) = self.node.get_set(&set) {
                    self.node.drop_set(set.id())?;
                }
                Ok(Response::Ok)
            }
            Request::ShuffleCreate {
                name,
                partitions,
                page_size,
            } => {
                let mut shuffles = self.shuffles.lock();
                if shuffles.contains_key(&name) {
                    return Err(PangeaError::usage(format!(
                        "shuffle '{name}' already exists"
                    )));
                }
                let mut config = ShuffleConfig::new(partitions);
                if let Some(ps) = page_size {
                    config = config.with_page_size(ps as usize);
                }
                let service = ShuffleService::create(&self.node, &name, config)?;
                shuffles.insert(name, service);
                Ok(Response::Ok)
            }
            Request::ShuffleSend {
                name,
                partition,
                records,
            } => {
                let service = self.get_shuffle(&name)?;
                let mut buffer = service.virtual_buffer(PartitionId(partition))?;
                for rec in &records {
                    self.stats.record_net(rec.len());
                    buffer.add_object(rec)?;
                }
                buffer.flush()?;
                Ok(Response::Appended {
                    records: records.len() as u64,
                })
            }
            Request::ShuffleFinish { name } => {
                self.get_shuffle(&name)?.finish_writes()?;
                Ok(Response::Ok)
            }
            Request::Deliver { from: _, payload } => {
                self.stats.record_net(payload.len());
                self.stats.record_copy(payload.len());
                Ok(Response::Delivered {
                    len: payload.len() as u64,
                    checksum: pangea_common::fx_hash64(&payload),
                })
            }
            Request::Stats => {
                let net = self.stats.snapshot();
                let disk = self.node.disk_stats().snapshot();
                let paging = self.node.paging_stats();
                Ok(Response::Stats {
                    net_bytes: net.net_bytes,
                    net_messages: net.net_messages,
                    disk_read_bytes: disk.disk_read_bytes,
                    disk_write_bytes: disk.disk_write_bytes,
                    repair_bytes: net.repair_bytes,
                    shuffle_bytes: net.shuffle_bytes,
                    paging_hits: paging.hits,
                    paging_misses: paging.misses,
                    paging_evictions: paging.evictions,
                    paging_spill_bytes: paging.spill_bytes,
                    pool_used_bytes: paging.pool_used,
                    pool_capacity_bytes: paging.pool_capacity,
                })
            }
            Request::HashList {
                set,
                start_page,
                start_record,
            } => {
                let set = self.get_set(&set)?;
                let mut hashes = Vec::new();
                let mut next = None;
                // The cursor names the page to resume at, so a chunk
                // costs only its own scan — pages before it are never
                // pinned again, whatever the set's size.
                'pages: for num in set.page_numbers() {
                    if num < start_page {
                        continue;
                    }
                    let pin = set.pin_page(num)?;
                    let mut it = ObjectIter::new(&pin);
                    let mut idx = 0u64;
                    while let Some(rec) = it.next() {
                        let skip = num == start_page && idx < start_record;
                        if !skip {
                            if hashes.len() >= crate::proto::HASH_CHUNK {
                                next = Some((num, idx));
                                break 'pages;
                            }
                            hashes.push(fx_hash64(rec));
                        }
                        idx += 1;
                    }
                }
                Ok(Response::Hashes { hashes, next })
            }
            Request::RecoverBegin { set, present_from } => {
                let target = self.get_set(&set)?;
                let mut session = RepairSession {
                    seen: SpillLedger::new(
                        &self.node,
                        self.session_set_name(&set, "repair-ledger"),
                        LEDGER_SPILL_ENTRIES,
                    ),
                    appended: 0,
                    bytes: 0,
                };
                // Seed with what this node already holds: a retried
                // repair (some batches of a failed attempt committed
                // durably) must not append those records again.
                for num in target.page_numbers() {
                    let pin = target.pin_page(num)?;
                    let mut it = ObjectIter::new(&pin);
                    while let Some(rec) = it.next() {
                        session.seen.insert_if_absent(fx_hash64(rec))?;
                    }
                }
                for addr in &present_from {
                    let mut peer = self.checkout_peer(addr)?;
                    match peer.hash_list(&set) {
                        Ok(hashes) => {
                            self.checkin_peer(addr, peer);
                            for h in hashes {
                                session.seen.insert_if_absent(h)?;
                            }
                        }
                        Err(e) => {
                            // A failed RPC leaves the stream state
                            // unknown; account for the drop so the
                            // checkout counters stay truthful.
                            self.discard_peer(peer);
                            return Err(e);
                        }
                    }
                }
                // Freeze the seeded ledger for `RepairLedger` paging:
                // Absent-filtered survivors diff against exactly what
                // was present when the session opened (the snapshot is
                // index-stable while concurrent pushes grow the live
                // ledger).
                session.seen.freeze_snapshot();
                // Replace any stale session (and any sealed-totals
                // tombstone): `RecoverBegin` is the idempotent open of a
                // fresh repair attempt.
                self.ended.lock().remove(&set);
                let live = {
                    let mut repairs = self.repairs.lock();
                    repairs.insert(set, Arc::new(Mutex::new(session)));
                    repairs.len()
                };
                let reg = self.obs.registry();
                reg.counter(names::SESSIONS_REPAIR_BEGUN).inc();
                reg.gauge(names::SESSIONS_REPAIR_LIVE).set(live as u64);
                Ok(Response::Ok)
            }
            Request::RecoverAppend { set, records } => {
                let target = self.get_set(&set)?;
                let session = self
                    .repairs
                    .lock()
                    .get(target.name())
                    .cloned()
                    .ok_or_else(|| {
                        PangeaError::usage(format!(
                            "no repair session for '{}'; RecoverBegin first",
                            target.name()
                        ))
                    })?;
                // The session lock serializes concurrent survivor pushes
                // into one target: the dedup check and the append must be
                // atomic per record, and the storage writer gets batches
                // in a single writer's order. Unrelated sets' sessions
                // proceed in parallel.
                let mut session = session.lock();
                let mut writer = target.writer();
                let replays = self.obs.registry().counter(names::REPAIR_DEDUP_HITS);
                let (mut appended, mut bytes) = (0u64, 0u64);
                for rec in &records {
                    self.stats.record_net(rec.len());
                    let h = fx_hash64(rec);
                    if session.seen.contains(h)? {
                        replays.inc();
                        continue;
                    }
                    // Ledger only after the record is stored: a failed
                    // append must leave the hash unseen, or the
                    // contractually-idempotent retry would dedup the
                    // record away and lose it forever.
                    writer.add_object(rec)?;
                    session.seen.insert(h)?;
                    appended += 1;
                    bytes += rec.len() as u64;
                }
                writer.finish()?;
                session.appended += appended;
                session.bytes += bytes;
                self.stats.record_repair(bytes as usize);
                Ok(Response::RepairAck {
                    appended,
                    bytes,
                    credit: self.flow_credit(),
                })
            }
            Request::RecoverEnd { set } => {
                // The orchestrator only ends a session after its pushes
                // return, so no appender still holds the session here.
                let Some(session) = self.repairs.lock().remove(&set) else {
                    // Retried seal (the first ack was lost): answer the
                    // recorded totals again.
                    if let Some(&(appended, bytes)) = self.ended.lock().get(&set) {
                        return Ok(Response::RepairAck {
                            appended,
                            bytes,
                            credit: self.flow_credit(),
                        });
                    }
                    return Err(PangeaError::usage(format!(
                        "no repair session for '{set}' to end"
                    )));
                };
                let session = session.lock();
                self.ended
                    .lock()
                    .insert(set, (session.appended, session.bytes));
                let reg = self.obs.registry();
                reg.counter(names::SESSIONS_REPAIR_ENDED).inc();
                reg.gauge(names::SESSIONS_REPAIR_LIVE)
                    .set(self.repairs.lock().len() as u64);
                Ok(Response::RepairAck {
                    appended: session.appended,
                    bytes: session.bytes,
                    credit: self.flow_credit(),
                })
            }
            Request::RepairLedger { set, start } => {
                let session = self.repairs.lock().get(&set).cloned().ok_or_else(|| {
                    PangeaError::usage(format!("no repair session for '{set}'; RecoverBegin first"))
                })?;
                let session = session.lock();
                let hashes = session
                    .seen
                    .snapshot_chunk(start, crate::proto::HASH_CHUNK)?;
                let end = start.saturating_add(hashes.len() as u64);
                let next = (end < session.seen.snapshot_len()).then_some((0, end));
                Ok(Response::Hashes { hashes, next })
            }
            Request::RecoverPush {
                source_set,
                target_set,
                target_addr,
                filter,
            } => self.recover_push(&source_set, &target_set, &target_addr, &filter, ctx),
            Request::TaskRun { spec } => self.run_task(&spec, ctx),
            Request::MetricsDump {
                metrics_start,
                spans_start,
            } => {
                self.freshen_resource_gauges();
                Ok(metrics_dump_response(&self.obs, metrics_start, spans_start))
            }
            Request::IngestBegin { set, reduce } => {
                // Truncate the local share: a begin is the idempotent
                // open of a *fresh* attempt, so partial output from a
                // failed prior attempt never survives into the retry
                // (provenance tags cannot be recovered from disk the way
                // repair sessions reseed from record content).
                let existing = self.get_set(&set)?;
                let options = SetOptions {
                    durability: existing.durability(),
                    page_size: Some(existing.page_size()),
                    estimated_pages: None,
                };
                self.node.drop_set(existing.id())?;
                self.node.create_set(&set, options)?;
                self.ingests_ended.lock().remove(&set);
                let reduce = match reduce {
                    Some(spec) => {
                        // The session's keyed accumulator lives on pool
                        // pages (paper §8 hash service): a fold larger
                        // than the memory budget spills partial
                        // aggregates instead of growing unbounded heap.
                        let acc = ReduceBuffer::create(
                            &self.node,
                            &self.session_set_name(&set, "reduce-acc"),
                            HashConfig::new(ACC_ROOT_PARTITIONS),
                            spec.merge_fn(),
                        )?;
                        Some((spec, acc))
                    }
                    None => None,
                };
                let session = IngestSession {
                    seen: SpillLedger::new(
                        &self.node,
                        self.session_set_name(&set, "ingest-ledger"),
                        LEDGER_SPILL_ENTRIES,
                    ),
                    appended: 0,
                    bytes: 0,
                    reduce,
                };
                let live = {
                    let mut ingests = self.ingests.lock();
                    ingests.insert(set, Arc::new(Mutex::new(session)));
                    ingests.len()
                };
                let reg = self.obs.registry();
                reg.counter(names::SESSIONS_INGEST_BEGUN).inc();
                reg.gauge(names::SESSIONS_INGEST_LIVE).set(live as u64);
                Ok(Response::Ok)
            }
            Request::IngestAppend { set, entries } => {
                let (appended, bytes) = self.ingest_append_session(&set, &entries, true)?;
                Ok(Response::IngestAck {
                    appended,
                    bytes,
                    credit: self.flow_credit(),
                })
            }
            Request::IngestEnd { set } => {
                let Some(session) = self.ingests.lock().remove(&set) else {
                    // Retried seal (the first ack was lost): answer the
                    // recorded totals again.
                    if let Some(&(appended, bytes)) = self.ingests_ended.lock().get(&set) {
                        return Ok(Response::IngestAck {
                            appended,
                            bytes,
                            credit: self.flow_credit(),
                        });
                    }
                    return Err(PangeaError::usage(format!(
                        "no ingest session for '{set}' to end"
                    )));
                };
                let mut session = session.lock();
                let (appended, bytes) = match session.reduce.take() {
                    // Reducing seal: re-aggregate the accumulator's
                    // in-memory pages with its spilled partials, then
                    // materialize into the (begin-truncated) set in
                    // sorted-key order so the stored order stays
                    // deterministic. The sealed totals are what was
                    // *materialized*; a failed write leaves no
                    // tombstone, so a retried seal fails loudly and the
                    // job-level retry's begin truncates and starts
                    // clean.
                    Some((spec, acc)) => {
                        let mut pairs = acc.finalize()?;
                        pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                        let target = self.get_set(&set)?;
                        let mut writer = target.writer();
                        let (mut n, mut b) = (0u64, 0u64);
                        for (key, value) in &pairs {
                            let rec = spec.encode_record(key, *value);
                            writer.add_object(&rec)?;
                            n += 1;
                            b += rec.len() as u64;
                        }
                        writer.finish()?;
                        (n, b)
                    }
                    None => (session.appended, session.bytes),
                };
                self.ingests_ended.lock().insert(set, (appended, bytes));
                let reg = self.obs.registry();
                reg.counter(names::SESSIONS_INGEST_ENDED).inc();
                reg.gauge(names::SESSIONS_INGEST_LIVE)
                    .set(self.ingests.lock().len() as u64);
                Ok(Response::IngestAck {
                    appended,
                    bytes,
                    credit: self.flow_credit(),
                })
            }
            Request::MgrRegisterWorker { .. }
            | Request::MgrHeartbeat { .. }
            | Request::MgrDeregisterWorker { .. }
            | Request::MgrListWorkers
            | Request::MgrRegisterSet { .. }
            | Request::MgrDeregisterSet { .. }
            | Request::MgrEntry { .. }
            | Request::MgrSetNames
            | Request::MgrAddStats { .. }
            | Request::MgrLinkReplicas { .. }
            | Request::MgrGroupMembers { .. }
            | Request::MgrGroups
            | Request::MgrBestReplica { .. }
            | Request::TraceQuery { .. }
            | Request::TracePush { .. } => Err(PangeaError::usage(
                "manager request sent to a storage node; connect to pangea-mgr instead",
            )),
        }
    }

    /// Connects to a sibling `pangead` with this daemon's peer secret.
    fn dial_peer(&self, addr: &str) -> Result<PangeaClient> {
        PangeaClient::connect_with_secret(addr, self.peer_secret.as_deref())
            .map_err(|e| PangeaError::Remote(format!("dialing peer {addr}: {e}")))
    }

    /// Checks the pooled idle connection to `addr` out of the peer pool,
    /// or dials afresh. A pooled connection may have gone stale while
    /// idle (peer restarted at the same address) — that is detected on
    /// the first submit over it, not probed for here: a validation ping
    /// would cost a full round trip per checkout *and* serialize the
    /// connection right before the pipelined pushers try to fill a
    /// window, and every push path already retries through
    /// [`Pangead::discard_peer`] + redial on RPC failure anyway.
    /// Callers return the connection with [`Pangead::checkin_peer`] on
    /// success and hand it to [`Pangead::discard_peer`] when an RPC on
    /// it failed (its stream state is unknown). Every successful
    /// checkout ends in exactly one of the two, so
    /// `pool.checkouts == pool.checkins + pool.drops` holds at every
    /// idle instant — the invariant the accounting unit test pins.
    fn checkout_peer(&self, addr: &str) -> Result<PangeaClient> {
        if let Some(client) = self.peers.lock().remove(addr) {
            let reg = self.obs.registry();
            reg.counter(names::POOL_CHECKOUTS).inc();
            reg.counter(names::POOL_HITS).inc();
            return Ok(client);
        }
        self.obs.registry().counter(names::POOL_DIALS).inc();
        let client = self.dial_peer(addr)?;
        // Counted only once the connection exists: a failed dial hands
        // the caller nothing, so it must not look like a checkout that
        // never came back.
        self.obs.registry().counter(names::POOL_CHECKOUTS).inc();
        Ok(client)
    }

    /// Returns an idle peer connection to the pool. Concurrent pushers
    /// may race one in; last one in wins the single idle slot, the
    /// loser just closes. The pool is bounded at [`PEER_POOL_CAP`]
    /// distinct addresses, evicting an arbitrary idle entry when full:
    /// entries for replaced or dead peers are never checked out again,
    /// so an unbounded map would pin one dead socket per churned worker
    /// address forever — and refusing inserts instead would stop
    /// pooling new peers for the daemon's lifetime.
    fn checkin_peer(&self, addr: &str, mut client: PangeaClient) {
        // A connection with pipelined requests still outstanding is not
        // idle — its stream carries unread responses that would poison
        // whatever checks it out next. Callers are supposed to drain
        // before checkin; treat a violation as a drop, not a landmine.
        if client.pipelined() != 0 {
            self.discard_peer(client);
            return;
        }
        self.obs.registry().counter(names::POOL_CHECKINS).inc();
        // An idle pooled connection must never carry a stale job's
        // trace context into whatever checks it out next.
        client.set_trace(None);
        let mut peers = self.peers.lock();
        if peers.len() >= PEER_POOL_CAP && !peers.contains_key(addr) {
            if let Some(victim) = peers.keys().next().cloned() {
                peers.remove(&victim);
            }
            self.obs.registry().counter(names::POOL_EVICTIONS).inc();
        }
        peers.insert(addr.to_string(), client);
    }

    /// Closes a checked-out connection whose RPC failed. Taking the
    /// client by value makes the accounting structural: an error path
    /// cannot forget the counter without also forgetting to close.
    fn discard_peer(&self, client: PangeaClient) {
        drop(client);
        self.obs.registry().counter(names::POOL_DROPS).inc();
    }

    /// The mapper half of the distributed map-shuffle: scan the local
    /// share of the task's input, apply the declarative map (possibly
    /// multi-emit), route each output record by the task's scheme, and
    /// stream batches straight to each destination worker's ingest
    /// session — one pooled connection per destination for the task's
    /// lifetime. With a [`ReduceSpec`] the mapper *combines* first:
    /// the whole share folds into a keyed accumulator and only the
    /// encoded per-key partials ship, so the shuffle pays for distinct
    /// keys instead of raw emissions. The orchestrating driver only
    /// ever sees the outcome counters.
    ///
    /// Round-robin output striping is **per source**: mapper `s`'s
    /// `i`-th emission lands on partition `(s + i) % partitions` (the
    /// `s` offset decorrelates the mappers' first records). The serial
    /// engine reference applies the identical rule per scanned node,
    /// so per-node parity holds for round-robin outputs too.
    fn run_task(&self, spec: &TaskSpec, ctx: Option<TraceCtx>) -> Result<Response> {
        let input = self.get_set(&spec.input)?;
        let nodes = spec.nodes.max(1);
        if spec.reduce.is_some() && matches!(spec.scheme, SchemeSpec::RoundRobin { .. }) {
            return Err(PangeaError::usage(
                "a reduce needs key-determined placement; round-robin output \
                 schemes cannot host one",
            ));
        }
        let mut addr_of: FxHashMap<u32, &str> = FxHashMap::default();
        for (node, addr) in &spec.dests {
            addr_of.insert(*node, addr.as_str());
        }
        // Per-destination pipeline window: the task's override, else
        // this daemon's default. Either way capped so one mapper can
        // never park more than `MAX_PIPELINE_WINDOW` unacked batches in
        // a receiver.
        let window = if spec.window == 0 {
            self.pipeline_window
        } else {
            spec.window.min(MAX_PIPELINE_WINDOW)
        };
        let mut conns: FxHashMap<String, PipelinedPeer> = FxHashMap::default();
        let mut batches: FxHashMap<u32, (Vec<(u64, Vec<u8>)>, usize)> = FxHashMap::default();
        let mut report = TaskReport::default();
        let outcome = (|| -> Result<()> {
            match &spec.reduce {
                // Source-side combine: fold the whole local share, then
                // ship one encoded partial per key. Tags derive from
                // the key (a retried task re-derives the same fold, so
                // its partials dedup away at the destinations). The
                // fold runs through a pool-paged [`ReduceBuffer`], so a
                // share whose distinct keys exceed the memory budget
                // spills partial aggregates instead of OOMing the
                // worker; sorting the finalized pairs keeps the shipped
                // order deterministic across retries.
                Some(reduce) => {
                    let mut acc = ReduceBuffer::create(
                        &self.node,
                        &self.session_set_name(&spec.output, "combine"),
                        HashConfig::new(ACC_ROOT_PARTITIONS),
                        reduce.merge_fn(),
                    )?;
                    for num in input.page_numbers() {
                        let pin = input.pin_page(num)?;
                        let mut it = ObjectIter::new(&pin);
                        while let Some(rec) = it.next() {
                            report.scanned += 1;
                            spec.map.for_each_emit(rec, &mut |out| {
                                if let Some((key, value)) = reduce.accumulate(out) {
                                    acc.insert_merge(&key, value)?;
                                }
                                Ok(())
                            })?;
                        }
                    }
                    let mut pairs = acc.finalize()?;
                    pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                    for (key, value) in &pairs {
                        let out = reduce.encode_record(key, *value);
                        let dest = spec.scheme.node_of(&out, 0, nodes);
                        let tag = ingest_tag(spec.source, fx_hash64(key), &out);
                        self.route_output(
                            spec,
                            &addr_of,
                            &mut conns,
                            &mut batches,
                            &mut report,
                            dest,
                            tag,
                            out,
                            window,
                            ctx,
                        )?;
                    }
                }
                None => {
                    // The emission sequence number doubles as the
                    // round-robin stripe position and the provenance-tag
                    // ordinal: stable across retries (storage order is
                    // deterministic), and distinct per emission so a
                    // flat-map record emitting the same token twice
                    // keeps both honest duplicates.
                    for num in input.page_numbers() {
                        let pin = input.pin_page(num)?;
                        let mut it = ObjectIter::new(&pin);
                        while let Some(rec) = it.next() {
                            report.scanned += 1;
                            spec.map.for_each_emit(rec, &mut |out| {
                                let seq = report.emitted;
                                let dest =
                                    spec.scheme.node_of(out, spec.source as u64 + seq, nodes);
                                let tag = ingest_tag(spec.source, seq, out);
                                self.route_output(
                                    spec,
                                    &addr_of,
                                    &mut conns,
                                    &mut batches,
                                    &mut report,
                                    dest,
                                    tag,
                                    out.to_vec(),
                                    window,
                                    ctx,
                                )
                            })?;
                        }
                    }
                }
            }
            for (dest, (entries, _)) in std::mem::take(&mut batches) {
                if entries.is_empty() {
                    continue;
                }
                let (a, b) =
                    self.deliver_entries(spec, &addr_of, &mut conns, dest, entries, window, ctx)?;
                report.appended += a;
                report.appended_bytes += b;
            }
            // Drain every destination's outstanding acks: the task's
            // totals only count what the receivers acknowledged, and a
            // connection may only go back to the pool once nothing is
            // in flight on it.
            let addrs: Vec<String> = conns.keys().cloned().collect();
            for addr in addrs {
                let mut failed = None;
                if let Some(peer) = conns.get_mut(&addr) {
                    while !peer.inflight.is_empty() {
                        match self.await_ingest_ack(peer) {
                            Ok((a, b)) => {
                                report.appended += a;
                                report.appended_bytes += b;
                            }
                            Err(e) => {
                                failed = Some(e);
                                break;
                            }
                        }
                    }
                }
                if let Some(e) = failed {
                    if let Some(peer) = conns.remove(&addr) {
                        self.discard_peer(peer.client);
                    }
                    return Err(e);
                }
            }
            Ok(())
        })();
        // Healthy (drained) connections go back to the pool even when
        // the task failed on another destination; the failed connection
        // was already dropped by `ingest_into`, and any connection the
        // failure left with acks still in flight is discarded by
        // `checkin_peer`'s pipelined guard.
        for (addr, peer) in conns.drain() {
            self.checkin_peer(&addr, peer.client);
        }
        outcome?;
        // Mapper-side attribution: this node shipped `emitted_bytes` of
        // shuffle payload to its peers without touching the driver —
        // labeled by mode, so combine/reduce traffic is distinguishable
        // from map-only traffic in a dump.
        if spec.reduce.is_some() {
            self.stats
                .record_shuffle_reduce(report.emitted_bytes as usize);
        } else {
            self.stats.record_shuffle(report.emitted_bytes as usize);
        }
        Ok(Response::TaskDone {
            scanned: report.scanned,
            emitted: report.emitted,
            emitted_bytes: report.emitted_bytes,
            appended: report.appended,
            appended_bytes: report.appended_bytes,
        })
    }

    /// Queues one routed output record for its destination, flushing
    /// the destination's batch once a size threshold trips.
    #[allow(clippy::too_many_arguments)]
    fn route_output(
        &self,
        spec: &TaskSpec,
        addr_of: &FxHashMap<u32, &str>,
        conns: &mut FxHashMap<String, PipelinedPeer>,
        batches: &mut FxHashMap<u32, (Vec<(u64, Vec<u8>)>, usize)>,
        report: &mut TaskReport,
        dest: u32,
        tag: u64,
        out: Vec<u8>,
        window: u32,
        ctx: Option<TraceCtx>,
    ) -> Result<()> {
        report.emitted += 1;
        report.emitted_bytes += out.len() as u64;
        let (batch, batch_bytes) = batches.entry(dest).or_default();
        *batch_bytes += out.len();
        batch.push((tag, out));
        if batch.len() >= PUSH_BATCH_RECORDS || *batch_bytes >= PUSH_BATCH_BYTES {
            let entries = std::mem::take(batch);
            *batch_bytes = 0;
            let (a, b) = self.deliver_entries(spec, addr_of, conns, dest, entries, window, ctx)?;
            report.appended += a;
            report.appended_bytes += b;
        }
        Ok(())
    }

    /// Delivers one tagged batch to its destination: the self-destined
    /// share never touches a socket (appended straight into this
    /// daemon's own ingest session — the sim's free local delivery,
    /// remotely); every other slot goes through its pooled connection.
    ///
    /// For a remote destination the returned totals are *not* this
    /// batch's: they are whatever older in-flight batches got acked
    /// while making window room (possibly nothing). This batch's own
    /// totals surface from some later call or the task's final drain —
    /// the task-level sums come out identical to the serial protocol.
    #[allow(clippy::too_many_arguments)]
    fn deliver_entries(
        &self,
        spec: &TaskSpec,
        addr_of: &FxHashMap<u32, &str>,
        conns: &mut FxHashMap<String, PipelinedPeer>,
        dest: u32,
        entries: Vec<(u64, Vec<u8>)>,
        window: u32,
        ctx: Option<TraceCtx>,
    ) -> Result<(u64, u64)> {
        if dest == spec.source {
            self.ingest_append_session(&spec.output, &entries, false)
        } else {
            let addr = *addr_of.get(&dest).ok_or_else(|| {
                PangeaError::usage(format!("task has no destination address for slot {dest}"))
            })?;
            self.ingest_into(conns, addr, &spec.output, entries, window, ctx)
        }
    }

    /// The shared `IngestAppend` implementation: dedup-appends one
    /// tagged batch into the open ingest session for `set`.
    ///
    /// `over_wire` decides whether the batch's payload is charged to
    /// this daemon's inbound net counters — `false` for a mapper's
    /// self-destined shortcut, which never touches a socket (mirroring
    /// the simulation's free local delivery).
    ///
    /// The session lock serializes concurrent mapper pushes into one
    /// destination set: tag check and append are atomic per record, and
    /// the storage writer sees one writer's order. Unrelated sets
    /// proceed in parallel. Any failure mid-batch (a record append or
    /// the final seal) leaves "what was durably stored" unknowable
    /// while some tags may already sit in the ledger — a retried append
    /// would dedup those records away — so the session is poisoned:
    /// retries of this attempt fail loudly, and the job-level retry's
    /// `IngestBegin` truncates and starts clean.
    fn ingest_append_session(
        &self,
        set: &str,
        entries: &[(u64, Vec<u8>)],
        over_wire: bool,
    ) -> Result<(u64, u64)> {
        let target = self.get_set(set)?;
        let session = self.ingests.lock().get(set).cloned().ok_or_else(|| {
            PangeaError::usage(format!("no ingest session for '{set}'; IngestBegin first"))
        })?;
        let mut session = session.lock();
        let dedup = self.obs.registry().counter(names::INGEST_DEDUP_HITS);
        let outcome = (|| -> Result<(u64, u64)> {
            let IngestSession { seen, reduce, .. } = &mut *session;
            let (mut appended, mut bytes) = (0u64, 0u64);
            match reduce {
                // Reducing session: fold accepted partials into the
                // keyed accumulator; nothing touches storage until the
                // seal materializes it. Tag dedup is unchanged, so
                // lost-ack replays of a combine batch stay idempotent.
                Some((spec, acc)) => {
                    for (tag, rec) in entries {
                        if over_wire {
                            self.stats.record_net(rec.len());
                        }
                        if seen.contains(*tag)? {
                            dedup.inc();
                            continue;
                        }
                        let (key, value) = spec.decode_record(rec)?;
                        acc.insert_merge(key, value)?;
                        seen.insert(*tag)?;
                        appended += 1;
                        bytes += rec.len() as u64;
                    }
                }
                None => {
                    let mut writer = target.writer();
                    for (tag, rec) in entries {
                        if over_wire {
                            self.stats.record_net(rec.len());
                        }
                        if seen.contains(*tag)? {
                            dedup.inc();
                            continue;
                        }
                        writer.add_object(rec)?;
                        seen.insert(*tag)?;
                        appended += 1;
                        bytes += rec.len() as u64;
                    }
                    writer.finish()?;
                }
            }
            Ok((appended, bytes))
        })();
        match outcome {
            Ok((appended, bytes)) => {
                session.appended += appended;
                session.bytes += bytes;
                // Destination-side attribution, labeled by session mode:
                // bytes folded into a reducing session are reduce-mode
                // shuffle traffic, everything else is map-mode.
                if session.reduce.is_some() {
                    self.stats.record_shuffle_reduce(bytes as usize);
                } else {
                    self.stats.record_shuffle(bytes as usize);
                }
                Ok((appended, bytes))
            }
            Err(e) => {
                drop(session);
                self.ingests.lock().remove(set);
                Err(e)
            }
        }
    }

    /// Pipelines one tagged batch into the ingest session for `output`
    /// on the daemon at `addr`, opening (and caching in `conns`) the
    /// destination connection on first use. A connection whose RPC
    /// failed is dropped, never cached.
    ///
    /// The batch is *submitted*, not round-tripped: up to the effective
    /// window (the configured `window`, shrunk by the receiver's latest
    /// credit grant) of batches ride the wire unacked, so the mapper
    /// keeps scanning while the receiver appends. When the window is
    /// full the oldest ack is awaited first — and when it is the
    /// *credit* that made the window small, the wait is counted as a
    /// credit stall: the receiver's pool residency is throttling this
    /// sender, which is backpressure working as designed.
    fn ingest_into(
        &self,
        conns: &mut FxHashMap<String, PipelinedPeer>,
        addr: &str,
        output: &str,
        entries: Vec<(u64, Vec<u8>)>,
        window: u32,
        ctx: Option<TraceCtx>,
    ) -> Result<(u64, u64)> {
        let peer = match conns.entry(addr.to_string()) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(v) => {
                // Fan-out propagation: every ingest RPC this task sends
                // carries `(job, the TaskRun's span)`, so the
                // destination's span records stitch under the task that
                // produced them.
                let mut conn = self.checkout_peer(addr)?;
                conn.set_trace(ctx);
                v.insert(PipelinedPeer::new(conn))
            }
        };
        match self.pipelined_ingest_step(peer, output, entries, window) {
            Ok(acked) => Ok(acked),
            Err(e) => {
                // Dropped, not returned — and counted, so a failed push
                // doesn't strand the checkout accounting.
                if let Some(peer) = conns.remove(addr) {
                    self.discard_peer(peer.client);
                }
                Err(e)
            }
        }
    }

    /// One pipelined submit against a destination: make window room
    /// (awaiting oldest acks, with credit-stall accounting), then send.
    /// Returns the totals of whatever acks were drained for room.
    fn pipelined_ingest_step(
        &self,
        peer: &mut PipelinedPeer,
        output: &str,
        entries: Vec<(u64, Vec<u8>)>,
        window: u32,
    ) -> Result<(u64, u64)> {
        let reg = self.obs.registry();
        let (mut appended, mut bytes) = (0u64, 0u64);
        while peer.inflight.len() >= peer.effective_window(window) {
            let credit_limited = peer.effective_window(window) < window.max(1) as usize;
            let start = Instant::now();
            let (a, b) = self.await_ingest_ack(peer)?;
            appended += a;
            bytes += b;
            if credit_limited {
                reg.counter(names::NET_CREDIT_STALLS).inc();
                reg.counter(names::NET_CREDIT_STALLS_MS)
                    .add(start.elapsed().as_millis() as u64);
            }
        }
        let (corr, payload_bytes) = peer.client.ingest_append_submit(output, entries)?;
        peer.inflight.push_back((corr, payload_bytes));
        reg.histogram(names::NET_INFLIGHT)
            .observe(peer.inflight.len() as u64);
        Ok((appended, bytes))
    }

    /// Awaits the oldest outstanding ingest ack on `peer`, adopting the
    /// receiver's fresh credit grant. Returns the acked `(appended,
    /// appended_bytes)`.
    fn await_ingest_ack(&self, peer: &mut PipelinedPeer) -> Result<(u64, u64)> {
        // Nothing in flight means nothing to await — a no-op, not a
        // panic, so callers can drain unconditionally.
        let Some((corr, payload_bytes)) = peer.inflight.pop_front() else {
            return Ok((0, 0));
        };
        let (appended, bytes, credit) = peer.client.ingest_append_await(corr, payload_bytes)?;
        peer.credit = credit;
        Ok((appended, bytes))
    }

    /// The survivor half of peer repair: scan the local `source_set`,
    /// keep what `filter` selects, and stream it in batches straight to
    /// `target_set` on the replacement at `target_addr`. The orchestrating
    /// driver only ever sees the outcome counters.
    ///
    /// An [`RepairFilter::Absent`] filter is resolved here: the
    /// survivor first pulls the replacement's seeded present-hash
    /// ledger (paginated `RepairLedger` — hashes only, no payload) and
    /// keeps only records absent from it, so a round-robin repair ships
    /// ~the lost share instead of the survivor's whole share.
    fn recover_push(
        &self,
        source_set: &str,
        target_set: &str,
        target_addr: &str,
        filter: &RepairFilter,
        ctx: Option<TraceCtx>,
    ) -> Result<Response> {
        let source = self.get_set(source_set)?;
        // One pooled connection for the whole push: repeated pushes to
        // the same replacement (per survivor × source × pass) no longer
        // pay a fresh dial + handshake each (the ROADMAP hot-path item).
        let mut peer = self.checkout_peer(target_addr)?;
        peer.set_trace(ctx);
        match self.recover_push_with(&source, target_set, &mut peer, filter) {
            Ok(resp) => {
                self.checkin_peer(target_addr, peer);
                Ok(resp)
            }
            Err(e) => {
                // Any mid-push failure leaves the stream state unknown;
                // close the connection and account for it so the pool
                // counters stay truthful on every error path.
                self.discard_peer(peer);
                Err(e)
            }
        }
    }

    /// The push body, with the peer checked out by [`Pangead::
    /// recover_push`]. An `Absent` filter streams the replacement's
    /// seeded ledger in `HASH_CHUNK` pages into a local [`SpillLedger`]
    /// — the survivor never materializes the whole ledger in heap, so a
    /// huge replacement share costs this node at most the ledger's
    /// in-memory generation plus pool-paged runs.
    fn recover_push_with(
        &self,
        source: &pangea_core::LocalitySet,
        target_set: &str,
        peer: &mut PangeaClient,
        filter: &RepairFilter,
    ) -> Result<Response> {
        enum Keep {
            Compiled(Box<dyn Fn(&[u8]) -> bool + Send + Sync>),
            Absent(SpillLedger),
        }
        let keep = match filter {
            RepairFilter::Absent => {
                let mut present = SpillLedger::new(
                    &self.node,
                    self.session_set_name(target_set, "absent-diff"),
                    LEDGER_SPILL_ENTRIES,
                );
                // The snapshot enumerates each seeded hash exactly
                // once, so a plain insert (no membership probe) is
                // enough.
                peer.repair_ledger_for_each(target_set, |hashes| {
                    for h in hashes {
                        present.insert(h)?;
                    }
                    Ok(())
                })?;
                Keep::Absent(present)
            }
            other => Keep::Compiled(other.compile()?),
        };
        let (mut scanned, mut pushed, mut pushed_bytes) = (0u64, 0u64, 0u64);
        let (mut appended, mut appended_bytes) = (0u64, 0u64);
        let mut batch: Vec<Vec<u8>> = Vec::new();
        let mut batch_bytes = 0usize;
        // The windowed pipeline: batches are *submitted* and their acks
        // collected later, so the scan keeps producing while the
        // replacement appends. The replacement's credit grants shrink
        // the window when its pool runs hot — repair streaming is the
        // heaviest sustained push in the system, exactly the traffic a
        // memory-pressured receiver must be able to slow down.
        let configured = self.pipeline_window;
        let reg = self.obs.registry();
        let mut inflight: VecDeque<(u64, usize)> = VecDeque::new();
        let mut credit = 0u64;
        // Scoped so the closure's borrows of the pipeline state end
        // before the tail drain below walks `inflight` directly.
        {
            let mut flush = |peer: &mut PangeaClient,
                             batch: &mut Vec<Vec<u8>>,
                             batch_bytes: &mut usize|
             -> Result<()> {
                if batch.is_empty() {
                    return Ok(());
                }
                loop {
                    let effective = if credit == 0 {
                        configured as usize
                    } else {
                        (configured as usize).min(credit as usize).max(1)
                    };
                    if inflight.len() < effective {
                        break;
                    }
                    let credit_limited = effective < configured as usize;
                    let start = Instant::now();
                    // `inflight.len() >= effective >= 1` here, but an
                    // empty queue just means the credit wait is over.
                    let Some((corr, payload_bytes)) = inflight.pop_front() else {
                        break;
                    };
                    let (a, b, c) = peer.recover_append_await(corr, payload_bytes)?;
                    appended += a;
                    appended_bytes += b;
                    credit = c;
                    if credit_limited {
                        reg.counter(names::NET_CREDIT_STALLS).inc();
                        reg.counter(names::NET_CREDIT_STALLS_MS)
                            .add(start.elapsed().as_millis() as u64);
                    }
                }
                let (corr, payload_bytes) =
                    peer.recover_append_submit(target_set, std::mem::take(batch))?;
                inflight.push_back((corr, payload_bytes));
                reg.histogram(names::NET_INFLIGHT)
                    .observe(inflight.len() as u64);
                *batch_bytes = 0;
                Ok(())
            };
            for num in source.page_numbers() {
                let pin = source.pin_page(num)?;
                let mut it = ObjectIter::new(&pin);
                while let Some(rec) = it.next() {
                    scanned += 1;
                    let wanted = match &keep {
                        Keep::Compiled(f) => f(rec),
                        Keep::Absent(present) => !present.contains(fx_hash64(rec))?,
                    };
                    if !wanted {
                        continue;
                    }
                    pushed += 1;
                    pushed_bytes += rec.len() as u64;
                    batch_bytes += rec.len();
                    batch.push(rec.to_vec());
                    if batch.len() >= PUSH_BATCH_RECORDS || batch_bytes >= PUSH_BATCH_BYTES {
                        flush(peer, &mut batch, &mut batch_bytes)?;
                    }
                }
            }
            flush(peer, &mut batch, &mut batch_bytes)?;
        }
        // Drain the tail of the pipeline: the push's totals are the sum
        // of every ack, same as the serial protocol's.
        while let Some((corr, payload_bytes)) = inflight.pop_front() {
            let (a, b, _) = peer.recover_append_await(corr, payload_bytes)?;
            appended += a;
            appended_bytes += b;
        }
        // Survivor-side attribution: this node moved `pushed_bytes` of
        // repair payload to a peer without touching the driver.
        self.stats.record_repair(pushed_bytes as usize);
        Ok(Response::Pushed {
            scanned,
            pushed,
            pushed_bytes,
            appended,
            appended_bytes,
        })
    }

    fn get_set(&self, name: &str) -> Result<pangea_core::LocalitySet> {
        self.node
            .get_set(name)
            .ok_or_else(|| PangeaError::usage(format!("locality set '{name}' not found")))
    }

    fn get_shuffle(&self, name: &str) -> Result<ShuffleService> {
        self.shuffles
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| PangeaError::usage(format!("shuffle '{name}' not found")))
    }
}

impl FramedService for Pangead {
    fn handle(&self, req: Request) -> Response {
        Pangead::handle(self, req)
    }

    fn handle_traced(&self, req: Request, ctx: Option<TraceCtx>, req_bytes: usize) -> Response {
        self.handle_full(req, ctx, req_bytes)
    }
}

/// A running `pangead` server: one [`Pangead`] behind a [`FramedServer`].
#[derive(Debug)]
pub struct PangeadServer {
    daemon: Arc<Pangead>,
    server: FramedServer,
}

impl PangeadServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `node` without a handshake secret.
    pub fn bind(node: StorageNode, addr: impl ToSocketAddrs) -> Result<Self> {
        Self::bind_with_secret(node, addr, None)
    }

    /// Binds `addr` and serves `node`, requiring every connection to
    /// open with [`Request::Hello`] carrying `secret` when one is given.
    pub fn bind_with_secret(
        node: StorageNode,
        addr: impl ToSocketAddrs,
        secret: Option<String>,
    ) -> Result<Self> {
        Self::bind_with_config(node, addr, secret, ServerConfig::default())
    }

    /// [`PangeadServer::bind_with_secret`] with explicit io-pool tuning
    /// (`--io-threads` / connection cap). The server's `net.conns_open`
    /// and `net.busy_rejects` land in the daemon's own registry, so one
    /// `MetricsDump` serves storage, session, and wire-core health.
    pub fn bind_with_config(
        node: StorageNode,
        addr: impl ToSocketAddrs,
        secret: Option<String>,
        mut config: ServerConfig,
    ) -> Result<Self> {
        // The deployment shares one secret: what peers must present to
        // this daemon is also what this daemon presents when it dials
        // repair peers.
        let daemon = Arc::new(
            Pangead::new(node)
                .with_peer_secret(secret.clone())
                .with_pipeline_window(config.pipeline_window),
        );
        if config.registry.is_none() {
            config.registry = Some(daemon.obs().registry().clone());
        }
        let server = FramedServer::bind_with_config(
            Arc::clone(&daemon) as Arc<dyn FramedService>,
            addr,
            secret,
            config,
        )?;
        Ok(Self { daemon, server })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The protocol daemon (for inspecting the node or its counters).
    pub fn daemon(&self) -> &Arc<Pangead> {
        &self.daemon
    }

    /// Gracefully stops the server with the default drain window: stops
    /// accepting, lets in-flight requests finish, closes connections,
    /// and joins every handler thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.server.shutdown(DEFAULT_DRAIN);
    }

    /// [`PangeadServer::shutdown`] with an explicit drain window.
    pub fn shutdown_with_drain(&mut self, drain: Duration) {
        self.server.shutdown(drain);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::PangeaClient;
    use pangea_core::NodeConfig;

    fn node(tag: &str) -> StorageNode {
        let dir = std::env::temp_dir().join(format!(
            "pangea-pangead-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        StorageNode::new(
            NodeConfig::new(dir)
                .with_pool_capacity(256 * pangea_common::KB)
                .with_page_size(4 * pangea_common::KB),
        )
        .unwrap()
    }

    #[test]
    fn dispatch_covers_the_set_lifecycle() {
        let d = Pangead::new(node("lifecycle"));
        let resp = d.handle(Request::CreateSet {
            name: "events".into(),
            durability: "write-back".into(),
            page_size: None,
        });
        assert!(matches!(resp, Response::Created { .. }), "{resp:?}");
        let resp = d.handle(Request::Append {
            set: "events".into(),
            records: vec![b"a".to_vec(), b"bb".to_vec()],
        });
        assert_eq!(resp, Response::Appended { records: 2 });
        match d.handle(Request::Scan {
            set: "events".into(),
        }) {
            Response::Records { records } => {
                assert_eq!(records, vec![b"a".to_vec(), b"bb".to_vec()]);
            }
            other => panic!("{other:?}"),
        }
        match d.handle(Request::PageNumbers {
            set: "events".into(),
        }) {
            Response::Pages { nums } => assert_eq!(nums, vec![0]),
            other => panic!("{other:?}"),
        }
        match d.handle(Request::FetchPage {
            set: "events".into(),
            num: 0,
        }) {
            Response::Page { bytes } => assert_eq!(bytes.len(), 4 * pangea_common::KB),
            other => panic!("{other:?}"),
        }
        // Dropping the set makes it unknown.
        assert_eq!(
            d.handle(Request::DropSet {
                set: "events".into()
            }),
            Response::Ok
        );
        assert!(matches!(
            d.handle(Request::Scan {
                set: "events".into()
            }),
            Response::Err { .. }
        ));
    }

    #[test]
    fn missing_set_is_a_wire_error() {
        let d = Pangead::new(node("missing"));
        match d.handle(Request::Scan { set: "nope".into() }) {
            Response::Err { message } => assert!(message.contains("nope")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn manager_requests_are_rejected_by_storage_nodes() {
        let d = Pangead::new(node("mgr-reject"));
        match d.handle(Request::MgrListWorkers) {
            Response::Err { message } => assert!(message.contains("pangea-mgr")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shuffle_over_dispatch() {
        let d = Pangead::new(node("shuffle"));
        assert_eq!(
            d.handle(Request::ShuffleCreate {
                name: "wc".into(),
                partitions: 2,
                page_size: None,
            }),
            Response::Ok
        );
        d.handle(Request::ShuffleSend {
            name: "wc".into(),
            partition: 0,
            records: vec![b"alpha".to_vec()],
        });
        d.handle(Request::ShuffleSend {
            name: "wc".into(),
            partition: 1,
            records: vec![b"beta".to_vec(), b"gamma".to_vec()],
        });
        assert_eq!(
            d.handle(Request::ShuffleFinish { name: "wc".into() }),
            Response::Ok
        );
        match d.handle(Request::Scan {
            set: "wc.part1".into(),
        }) {
            Response::Records { records } => {
                assert_eq!(records, vec![b"beta".to_vec(), b"gamma".to_vec()]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn deliver_counts_payload_bytes() {
        let d = Pangead::new(node("deliver"));
        let resp = d.handle(Request::Deliver {
            from: 0,
            payload: vec![9; 128],
        });
        assert_eq!(
            resp,
            Response::Delivered {
                len: 128,
                checksum: pangea_common::fx_hash64(&[9; 128]),
            }
        );
        assert_eq!(d.stats().snapshot().net_bytes, 128);
    }

    #[test]
    fn server_binds_and_shuts_down() {
        let mut server = PangeadServer::bind(node("bind"), "127.0.0.1:0").unwrap();
        assert_ne!(server.local_addr().port(), 0);
        server.shutdown();
        server.shutdown(); // idempotent
    }

    #[test]
    fn shutdown_drains_open_connections() {
        let mut server = PangeadServer::bind(node("drain"), "127.0.0.1:0").unwrap();
        let mut client = PangeaClient::connect(server.local_addr()).unwrap();
        client.ping().unwrap();
        // The connection is idle (registered, not in flight): shutdown
        // closes it and joins the handler instead of hanging forever.
        server.shutdown_with_drain(Duration::from_millis(200));
        assert!(client.ping().is_err(), "connection closed by drain");
    }

    #[test]
    fn handshake_gates_every_request_when_secret_is_set() {
        let server = PangeadServer::bind_with_secret(
            node("secret"),
            "127.0.0.1:0",
            Some("letmein".to_string()),
        )
        .unwrap();

        // No Hello: first real request is rejected with a typed error.
        let mut bare = PangeaClient::connect(server.local_addr()).unwrap();
        match bare.ping() {
            Err(PangeaError::Unauthenticated(m)) => assert!(m.contains("Hello"), "{m}"),
            other => panic!("expected Unauthenticated, got {other:?}"),
        }

        // Wrong secret: rejected.
        match PangeaClient::connect_with_secret(server.local_addr(), Some("wrong")) {
            Err(PangeaError::Unauthenticated(_)) => {}
            other => panic!("expected Unauthenticated, got {other:?}"),
        }

        // Right secret: full service.
        let mut authed =
            PangeaClient::connect_with_secret(server.local_addr(), Some("letmein")).unwrap();
        authed.ping().unwrap();
        authed.create_set("ok", "write-through", None).unwrap();
        assert_eq!(authed.append("ok", &["x"]).unwrap(), 1);
    }

    #[test]
    fn repair_session_dedups_and_totals() {
        let d = Pangead::new(node("repair-session"));
        d.handle(Request::CreateSet {
            name: "tgt".into(),
            durability: "write-through".into(),
            page_size: None,
        });
        // Appending without a session is a typed protocol error.
        assert!(matches!(
            d.handle(Request::RecoverAppend {
                set: "tgt".into(),
                records: vec![b"x".to_vec()],
            }),
            Response::Err { .. }
        ));
        assert_eq!(
            d.handle(Request::RecoverBegin {
                set: "tgt".into(),
                present_from: vec![],
            }),
            Response::Ok
        );
        // Duplicates are dropped within and across batches. Every ack
        // also carries a live (pool-derived) credit grant, so totals
        // are matched by pattern, never whole-value equality.
        assert!(matches!(
            d.handle(Request::RecoverAppend {
                set: "tgt".into(),
                records: vec![b"a|1".to_vec(), b"b|22".to_vec(), b"a|1".to_vec()],
            }),
            Response::RepairAck {
                appended: 2,
                bytes: 7,
                ..
            }
        ));
        assert!(matches!(
            d.handle(Request::RecoverAppend {
                set: "tgt".into(),
                records: vec![b"b|22".to_vec(), b"c|333".to_vec()],
            }),
            Response::RepairAck {
                appended: 1,
                bytes: 5,
                ..
            }
        ));
        assert!(matches!(
            d.handle(Request::RecoverEnd { set: "tgt".into() }),
            Response::RepairAck {
                appended: 3,
                bytes: 12,
                ..
            }
        ));
        // Sealing is idempotent: a retried RecoverEnd (lost ack) reads
        // the same totals back instead of failing.
        assert!(matches!(
            d.handle(Request::RecoverEnd { set: "tgt".into() }),
            Response::RepairAck {
                appended: 3,
                bytes: 12,
                ..
            }
        ));
        // A set that never had a session is still an error…
        assert!(matches!(
            d.handle(Request::RecoverEnd { set: "nope".into() }),
            Response::Err { .. }
        ));
        // …and a fresh RecoverBegin clears the sealed totals.
        assert_eq!(
            d.handle(Request::RecoverBegin {
                set: "tgt".into(),
                present_from: vec![],
            }),
            Response::Ok
        );
        assert!(matches!(
            d.handle(Request::RecoverEnd { set: "tgt".into() }),
            Response::RepairAck {
                appended: 0,
                bytes: 0,
                ..
            }
        ));
        match d.handle(Request::Scan { set: "tgt".into() }) {
            Response::Records { records } => {
                assert_eq!(
                    records,
                    vec![b"a|1".to_vec(), b"b|22".to_vec(), b"c|333".to_vec()]
                );
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(d.stats().snapshot().repair_bytes, 12);
    }

    #[test]
    fn create_set_is_idempotent_and_begin_seeds_from_local_records() {
        let d = Pangead::new(node("reprovision"));
        let first = match d.handle(Request::CreateSet {
            name: "tgt".into(),
            durability: "write-through".into(),
            page_size: None,
        }) {
            Response::Created { set } => set,
            other => panic!("{other:?}"),
        };
        // Re-provisioning (a recovery retry) answers with the same set.
        assert_eq!(
            d.handle(Request::CreateSet {
                name: "tgt".into(),
                durability: "write-through".into(),
                page_size: None,
            }),
            Response::Created { set: first }
        );
        // Conflicting options still fail loudly — idempotency never
        // silently ignores what the caller asked for.
        assert!(matches!(
            d.handle(Request::CreateSet {
                name: "tgt".into(),
                durability: "write-back".into(),
                page_size: None,
            }),
            Response::Err { .. }
        ));
        // Records surviving a partial earlier repair seed the session:
        // a retried push appends nothing.
        d.handle(Request::Append {
            set: "tgt".into(),
            records: vec![b"kept|1".to_vec()],
        });
        assert_eq!(
            d.handle(Request::RecoverBegin {
                set: "tgt".into(),
                present_from: vec![],
            }),
            Response::Ok
        );
        assert!(matches!(
            d.handle(Request::RecoverAppend {
                set: "tgt".into(),
                records: vec![b"kept|1".to_vec(), b"new|2".to_vec()],
            }),
            Response::RepairAck {
                appended: 1,
                bytes: 5,
                ..
            }
        ));
        assert!(matches!(
            d.handle(Request::RecoverEnd { set: "tgt".into() }),
            Response::RepairAck {
                appended: 1,
                bytes: 5,
                ..
            }
        ));
    }

    #[test]
    fn hash_list_matches_record_hashes() {
        let d = Pangead::new(node("hashes"));
        d.handle(Request::CreateSet {
            name: "s".into(),
            durability: "write-through".into(),
            page_size: None,
        });
        d.handle(Request::Append {
            set: "s".into(),
            records: vec![b"one".to_vec(), b"two".to_vec()],
        });
        match d.handle(Request::HashList {
            set: "s".into(),
            start_page: 0,
            start_record: 0,
        }) {
            Response::Hashes { hashes, next } => {
                assert_eq!(
                    hashes,
                    vec![
                        pangea_common::fx_hash64(b"one"),
                        pangea_common::fx_hash64(b"two")
                    ]
                );
                assert_eq!(next, None);
            }
            other => panic!("{other:?}"),
        }
        // Pagination: the cursor skips records within the start page.
        match d.handle(Request::HashList {
            set: "s".into(),
            start_page: 0,
            start_record: 1,
        }) {
            Response::Hashes { hashes, next } => {
                assert_eq!(hashes, vec![pangea_common::fx_hash64(b"two")]);
                assert_eq!(next, None);
            }
            other => panic!("{other:?}"),
        }
    }

    /// The tentpole flow over real sockets at daemon scope: a survivor
    /// pushes its filtered share straight into a replacement's repair
    /// session, a round-robin-style session is pre-seeded from a peer,
    /// and both sides attribute the payload to their repair counters.
    #[test]
    fn recover_push_streams_survivor_to_replacement() {
        let secret = Some("push-secret".to_string());
        let survivor =
            PangeadServer::bind_with_secret(node("push-survivor"), "127.0.0.1:0", secret.clone())
                .unwrap();
        let replacement = PangeadServer::bind_with_secret(
            node("push-replacement"),
            "127.0.0.1:0",
            secret.clone(),
        )
        .unwrap();
        let mut sc =
            PangeaClient::connect_with_secret(survivor.local_addr(), Some("push-secret")).unwrap();
        let mut rc =
            PangeaClient::connect_with_secret(replacement.local_addr(), Some("push-secret"))
                .unwrap();
        sc.create_set("src", "write-through", None).unwrap();
        rc.create_set("tgt", "write-through", None).unwrap();
        let rows: Vec<String> = (0..60).map(|i| format!("{}|row-{i}", i % 7)).collect();
        sc.append("src", &rows).unwrap();

        // Lost filter: only records placing on slot 1 of a 3-node fleet.
        let filter = crate::wire::RepairFilter::Lost {
            scheme: crate::wire::SchemeSpec::Hash {
                key_name: "k".into(),
                partitions: 6,
                key: crate::wire::KeySpec::Field {
                    delim: b'|',
                    index: 0,
                },
            },
            failed: 1,
            nodes: 3,
        };
        let keep = filter.compile().unwrap();
        let expect: Vec<&String> = rows.iter().filter(|r| keep(r.as_bytes())).collect();
        assert!(!expect.is_empty() && expect.len() < rows.len());

        rc.recover_begin("tgt", &[]).unwrap();
        let push = sc
            .recover_push("src", "tgt", &replacement.local_addr().to_string(), &filter)
            .unwrap();
        assert_eq!(push.scanned, rows.len() as u64);
        assert_eq!(push.pushed, expect.len() as u64);
        assert_eq!(push.appended, push.pushed, "fresh session appends all");
        assert_eq!(push.pushed_bytes, push.appended_bytes);
        // A retried push is idempotent: the session dedups every record.
        let again = sc
            .recover_push("src", "tgt", &replacement.local_addr().to_string(), &filter)
            .unwrap();
        assert_eq!(again.appended, 0);
        let (appended, bytes) = rc.recover_end("tgt").unwrap();
        assert_eq!(appended, expect.len() as u64);
        assert!(bytes > 0);
        let got = rc.scan("tgt").unwrap();
        assert_eq!(
            got,
            expect
                .iter()
                .map(|r| r.as_bytes().to_vec())
                .collect::<Vec<_>>()
        );
        assert!(survivor.daemon().stats().snapshot().repair_bytes > 0);
        assert!(replacement.daemon().stats().snapshot().repair_bytes > 0);

        // Seeding from a peer that already holds the surviving share
        // (the round-robin path): nothing new is appended. The survivor
        // plays the peer, holding the whole "tgt2" surviving share.
        sc.create_set("tgt2", "write-through", None).unwrap();
        sc.append("tgt2", &rows).unwrap();
        rc.create_set("tgt2", "write-through", None).unwrap();
        rc.recover_begin("tgt2", &[survivor.local_addr().to_string()])
            .unwrap();
        let seeded = sc
            .recover_push(
                "src",
                "tgt2",
                &replacement.local_addr().to_string(),
                &crate::wire::RepairFilter::All,
            )
            .unwrap();
        assert_eq!(seeded.pushed, rows.len() as u64, "All ships everything");
        assert_eq!(seeded.appended, 0, "present-on-peer records are skipped");
    }

    /// The Absent filter ships only the lost share: the survivor pulls
    /// the replacement's seeded ledger (`RepairLedger`) and filters at
    /// the source, so present records never cross the wire — unlike
    /// `All`, which ships everything and dedups at the destination.
    #[test]
    fn absent_push_filters_at_the_source_against_the_session_ledger() {
        let secret = Some("absent-secret".to_string());
        let survivor =
            PangeadServer::bind_with_secret(node("absent-survivor"), "127.0.0.1:0", secret.clone())
                .unwrap();
        let replacement = PangeadServer::bind_with_secret(
            node("absent-replacement"),
            "127.0.0.1:0",
            secret.clone(),
        )
        .unwrap();
        let mut sc =
            PangeaClient::connect_with_secret(survivor.local_addr(), Some("absent-secret"))
                .unwrap();
        let mut rc =
            PangeaClient::connect_with_secret(replacement.local_addr(), Some("absent-secret"))
                .unwrap();
        sc.create_set("src", "write-through", None).unwrap();
        rc.create_set("tgt", "write-through", None).unwrap();
        let rows: Vec<String> = (0..60).map(|i| format!("{i}|row-{i}")).collect();
        sc.append("src", &rows).unwrap();
        // The replacement already holds a surviving share of 20 rows;
        // RecoverBegin seeds the session ledger from them.
        rc.append("tgt", &rows[..20]).unwrap();
        rc.recover_begin("tgt", &[]).unwrap();

        // The ledger RPC pages the seeded hashes.
        assert_eq!(sc.call(&Request::Ping).unwrap(), Response::Ok);
        let mut probe =
            PangeaClient::connect_with_secret(replacement.local_addr(), Some("absent-secret"))
                .unwrap();
        let ledger = probe.repair_ledger("tgt").unwrap();
        assert_eq!(ledger.len(), 20);

        let push = sc
            .recover_push(
                "src",
                "tgt",
                &replacement.local_addr().to_string(),
                &crate::wire::RepairFilter::Absent,
            )
            .unwrap();
        assert_eq!(push.scanned, 60);
        assert_eq!(push.pushed, 40, "present records filtered at the source");
        assert_eq!(push.appended, 40, "everything shipped was genuinely lost");
        assert_eq!(push.pushed_bytes, push.appended_bytes);
        let (appended, _) = rc.recover_end("tgt").unwrap();
        assert_eq!(appended, 40);
        assert_eq!(rc.count("tgt").unwrap(), 60, "full set restored");
        // Without an open session the ledger is a typed protocol error.
        assert!(probe.repair_ledger("tgt").is_err());
    }

    #[test]
    fn ingest_session_dedups_tags_not_content() {
        let d = Pangead::new(node("ingest-session"));
        d.handle(Request::CreateSet {
            name: "out".into(),
            durability: "write-through".into(),
            page_size: None,
        });
        // Appending without a session is a typed protocol error.
        assert!(matches!(
            d.handle(Request::IngestAppend {
                set: "out".into(),
                entries: vec![(1, b"x".to_vec())],
            }),
            Response::Err { .. }
        ));
        assert_eq!(
            d.handle(Request::IngestBegin {
                set: "out".into(),
                reduce: None,
            }),
            Response::Ok
        );
        // Identical bytes under distinct tags are honest duplicates and
        // both append; a replayed tag dedups away. (Acks also carry a
        // live credit grant, so totals are matched by pattern.)
        assert!(matches!(
            d.handle(Request::IngestAppend {
                set: "out".into(),
                entries: vec![
                    (crate::wire::ingest_tag(0, 0, b"the"), b"the".to_vec()),
                    (crate::wire::ingest_tag(0, 1, b"the"), b"the".to_vec()),
                    (crate::wire::ingest_tag(0, 0, b"the"), b"the".to_vec()),
                ],
            }),
            Response::IngestAck {
                appended: 2,
                bytes: 6,
                ..
            }
        ));
        // A lost-ack replay of the same batch appends nothing.
        assert!(matches!(
            d.handle(Request::IngestAppend {
                set: "out".into(),
                entries: vec![(crate::wire::ingest_tag(0, 1, b"the"), b"the".to_vec())],
            }),
            Response::IngestAck {
                appended: 0,
                bytes: 0,
                ..
            }
        ));
        assert!(matches!(
            d.handle(Request::IngestEnd { set: "out".into() }),
            Response::IngestAck {
                appended: 2,
                bytes: 6,
                ..
            }
        ));
        // Sealing is idempotent (lost-ack retry reads the tombstone)…
        assert!(matches!(
            d.handle(Request::IngestEnd { set: "out".into() }),
            Response::IngestAck {
                appended: 2,
                bytes: 6,
                ..
            }
        ));
        // …and a fresh begin truncates the partial output of the prior
        // attempt, so a job retry starts from zero records.
        assert_eq!(
            d.handle(Request::IngestBegin {
                set: "out".into(),
                reduce: None,
            }),
            Response::Ok
        );
        match d.handle(Request::Scan { set: "out".into() }) {
            Response::Records { records } => assert!(records.is_empty(), "{records:?}"),
            other => panic!("{other:?}"),
        }
        assert!(d.stats().snapshot().shuffle_bytes > 0);
    }

    /// A reducing ingest session folds incoming `key|value` partials
    /// (tag-deduped) and materializes the accumulator at the seal —
    /// which stays tombstone-idempotent like the plain session.
    #[test]
    fn reducing_ingest_session_folds_partials_and_materializes_at_end() {
        use crate::wire::{KeySpec, ReduceSpec};
        let d = Pangead::new(node("ingest-reduce"));
        d.handle(Request::CreateSet {
            name: "counts".into(),
            durability: "write-through".into(),
            page_size: None,
        });
        let reduce = ReduceSpec::count(KeySpec::WholeRecord, b'|');
        assert_eq!(
            d.handle(Request::IngestBegin {
                set: "counts".into(),
                reduce: Some(reduce.clone()),
            }),
            Response::Ok
        );
        // Two mappers' partials for "the" (3 + 2), one for "fox" (1);
        // a replayed tag dedups away instead of double-counting.
        assert!(matches!(
            d.handle(Request::IngestAppend {
                set: "counts".into(),
                entries: vec![
                    (crate::wire::ingest_tag(0, 7, b"the|3"), b"the|3".to_vec()),
                    (crate::wire::ingest_tag(1, 7, b"the|2"), b"the|2".to_vec()),
                    (crate::wire::ingest_tag(0, 9, b"fox|1"), b"fox|1".to_vec()),
                    (crate::wire::ingest_tag(1, 7, b"the|2"), b"the|2".to_vec()),
                ],
            }),
            Response::IngestAck {
                appended: 3,
                bytes: 15,
                ..
            }
        ));
        // Nothing is stored until the seal…
        match d.handle(Request::Scan {
            set: "counts".into(),
        }) {
            Response::Records { records } => assert!(records.is_empty(), "{records:?}"),
            other => panic!("{other:?}"),
        }
        // …which materializes one record per key, sorted, and is
        // idempotent on retry.
        for _ in 0..2 {
            assert!(matches!(
                d.handle(Request::IngestEnd {
                    set: "counts".into()
                }),
                Response::IngestAck {
                    appended: 2,
                    bytes: 10,
                    ..
                }
            ));
        }
        match d.handle(Request::Scan {
            set: "counts".into(),
        }) {
            Response::Records { records } => {
                assert_eq!(records, vec![b"fox|1".to_vec(), b"the|5".to_vec()]);
            }
            other => panic!("{other:?}"),
        }
    }

    /// The tentpole flow at daemon scope over real sockets: a shipped
    /// map task scans its local input share, applies the declarative
    /// map, and streams routed batches straight into the destination
    /// daemons' ingest sessions — and a re-run task is idempotent.
    #[test]
    fn run_task_maps_and_routes_to_destination_ingests() {
        use crate::wire::{KeySpec, MapSpec, SchemeSpec, TaskSpec};
        let secret = Some("task-secret".to_string());
        let mapper =
            PangeadServer::bind_with_secret(node("task-mapper"), "127.0.0.1:0", secret.clone())
                .unwrap();
        let dest0 =
            PangeadServer::bind_with_secret(node("task-dest0"), "127.0.0.1:0", secret.clone())
                .unwrap();
        let dest1 =
            PangeadServer::bind_with_secret(node("task-dest1"), "127.0.0.1:0", secret.clone())
                .unwrap();
        let mut mc =
            PangeaClient::connect_with_secret(mapper.local_addr(), Some("task-secret")).unwrap();
        let mut c0 =
            PangeaClient::connect_with_secret(dest0.local_addr(), Some("task-secret")).unwrap();
        let mut c1 =
            PangeaClient::connect_with_secret(dest1.local_addr(), Some("task-secret")).unwrap();
        mc.create_set("lines", "write-through", None).unwrap();
        let rows: Vec<String> = (0..80)
            .map(|i| format!("{}|w{}|junk", i % 2, i % 9))
            .collect();
        mc.append("lines", &rows).unwrap();
        for c in [&mut c0, &mut c1] {
            c.create_set("words", "write-through", None).unwrap();
            c.ingest_begin("words", None).unwrap();
        }

        // Keep rows whose first field is "1", emit field 1, route by the
        // whole emitted record over 4 partitions striping 2 nodes.
        let spec = TaskSpec {
            input: "lines".into(),
            output: "words".into(),
            map: MapSpec::extract(KeySpec::Field {
                delim: b'|',
                index: 1,
            })
            .with_filter(crate::wire::FilterSpec::KeyEquals {
                key: KeySpec::Field {
                    delim: b'|',
                    index: 0,
                },
                value: b"1".to_vec(),
            }),
            reduce: None,
            scheme: SchemeSpec::Hash {
                key_name: "word".into(),
                partitions: 4,
                key: KeySpec::WholeRecord,
            },
            // The mapper plays slot 2 — outside the 2-wide destination
            // stripe — so nothing self-routes and every record crosses
            // a real socket to dest0/dest1 (the self-destined shortcut
            // would otherwise expect slot 0 to be this daemon's own
            // ingest session, per the TaskSpec::source contract).
            nodes: 2,
            source: 2,
            dests: vec![
                (0, dest0.local_addr().to_string()),
                (1, dest1.local_addr().to_string()),
            ],
            window: 0,
        };
        let report = mc.run_task(&spec).unwrap();
        assert_eq!(report.scanned, rows.len() as u64);
        assert_eq!(report.emitted, 40, "half the rows pass the filter");
        assert_eq!(report.appended, report.emitted, "fresh sessions append all");
        assert_eq!(report.emitted_bytes, report.appended_bytes);

        // A re-run task (a retry) re-derives the same tags: nothing new.
        let again = mc.run_task(&spec).unwrap();
        assert_eq!(again.emitted, 40);
        assert_eq!(again.appended, 0, "provenance tags dedup the retry");

        // Every emitted record landed on the node its scheme names, and
        // honest duplicates survived (multiple rows share each word).
        let (e0, _) = c0.ingest_end("words").unwrap();
        let (e1, _) = c1.ingest_end("words").unwrap();
        assert_eq!(e0 + e1, 40);
        let scheme = crate::wire::SchemeSpec::Hash {
            key_name: "word".into(),
            partitions: 4,
            key: KeySpec::WholeRecord,
        };
        let mut seen = 0u64;
        for (n, c) in [(0u32, &mut c0), (1u32, &mut c1)] {
            for rec in c.scan("words").unwrap() {
                assert_eq!(scheme.node_of(&rec, 0, 2), n, "{rec:?} misrouted");
                assert!(rec.starts_with(b"w"), "{rec:?} not a projected word");
                seen += 1;
            }
        }
        assert_eq!(seen, 40);
        // Both sides attribute the payload to their shuffle counters.
        assert!(mapper.daemon().stats().snapshot().shuffle_bytes > 0);
        assert!(
            dest0.daemon().stats().snapshot().shuffle_bytes
                + dest1.daemon().stats().snapshot().shuffle_bytes
                > 0
        );
    }

    #[test]
    fn hello_is_harmless_without_a_secret() {
        let server = PangeadServer::bind(node("nosecret"), "127.0.0.1:0").unwrap();
        let mut client =
            PangeaClient::connect_with_secret(server.local_addr(), Some("anything")).unwrap();
        client.ping().unwrap();
    }

    /// Dropping a set must clear its session state: before the fix a
    /// sealed-session tombstone survived `DropSet`, so a retried
    /// `RecoverEnd`/`IngestEnd` against a *recreated* set of the same
    /// name answered the dead set's totals instead of erroring.
    #[test]
    fn drop_set_clears_session_tombstones_and_open_sessions() {
        let d = Pangead::new(node("tombstone"));
        let create = Request::CreateSet {
            name: "s".into(),
            durability: "write-through".into(),
            page_size: None,
        };
        d.handle(create.clone());
        // Seal a repair session and an ingest session on the first life.
        d.handle(Request::RecoverBegin {
            set: "s".into(),
            present_from: vec![],
        });
        d.handle(Request::RecoverAppend {
            set: "s".into(),
            records: vec![b"a|1".to_vec()],
        });
        assert!(matches!(
            d.handle(Request::RecoverEnd { set: "s".into() }),
            Response::RepairAck {
                appended: 1,
                bytes: 3,
                ..
            }
        ));
        d.handle(Request::IngestBegin {
            set: "s".into(),
            reduce: None,
        });
        d.handle(Request::IngestAppend {
            set: "s".into(),
            entries: vec![(crate::wire::ingest_tag(0, 0, b"x"), b"x".to_vec())],
        });
        assert!(matches!(
            d.handle(Request::IngestEnd { set: "s".into() }),
            Response::IngestAck {
                appended: 1,
                bytes: 1,
                ..
            }
        ));

        // Drop and recreate the set under the same name.
        assert_eq!(d.handle(Request::DropSet { set: "s".into() }), Response::Ok);
        assert!(matches!(d.handle(create), Response::Created { .. }));

        // The new life has no sessions: a retried seal is a typed
        // protocol error, not the dead set's totals.
        assert!(matches!(
            d.handle(Request::RecoverEnd { set: "s".into() }),
            Response::Err { .. }
        ));
        assert!(matches!(
            d.handle(Request::IngestEnd { set: "s".into() }),
            Response::Err { .. }
        ));
        // And fresh sessions start from zero, unpolluted by the old
        // ledgers.
        d.handle(Request::RecoverBegin {
            set: "s".into(),
            present_from: vec![],
        });
        assert!(matches!(
            d.handle(Request::RecoverAppend {
                set: "s".into(),
                records: vec![b"a|1".to_vec()],
            }),
            Response::RepairAck {
                appended: 1,
                bytes: 3,
                ..
            }
        ));
        // Dropping with sessions still open clears them too.
        assert_eq!(d.handle(Request::DropSet { set: "s".into() }), Response::Ok);
        assert!(matches!(
            d.handle(Request::RecoverAppend {
                set: "s".into(),
                records: vec![b"a|1".to_vec()],
            }),
            Response::Err { .. }
        ));
    }

    /// Every checked-out peer connection is returned exactly once:
    /// `checkouts == checkins + drops` must hold after successful pushes
    /// AND after a push that fails mid-flight (before the fix the
    /// failure path leaked the checkout without a matching drop).
    #[test]
    fn failed_push_accounts_for_the_checked_out_peer() {
        let secret = Some("acct-secret".to_string());
        let survivor =
            PangeadServer::bind_with_secret(node("acct-survivor"), "127.0.0.1:0", secret.clone())
                .unwrap();
        let replacement = PangeadServer::bind_with_secret(
            node("acct-replacement"),
            "127.0.0.1:0",
            secret.clone(),
        )
        .unwrap();
        let mut sc =
            PangeaClient::connect_with_secret(survivor.local_addr(), Some("acct-secret")).unwrap();
        let mut rc =
            PangeaClient::connect_with_secret(replacement.local_addr(), Some("acct-secret"))
                .unwrap();
        sc.create_set("src", "write-through", None).unwrap();
        sc.append("src", &["a|1", "b|2"]).unwrap();
        rc.create_set("tgt", "write-through", None).unwrap();

        let balanced = |d: &Pangead| {
            let reg = d.obs().registry();
            let (out, back, drops) = (
                reg.counter("pool.checkouts").get(),
                reg.counter("pool.checkins").get(),
                reg.counter("pool.drops").get(),
            );
            assert_eq!(out, back + drops, "checkouts {out} != {back} + {drops}");
            (out, back, drops)
        };

        // No open session on the replacement: the Absent push fails at
        // the ledger RPC, *after* the peer was checked out.
        let err = sc.recover_push(
            "src",
            "tgt",
            &replacement.local_addr().to_string(),
            &crate::wire::RepairFilter::Absent,
        );
        assert!(err.is_err());
        let (out, _, drops) = balanced(survivor.daemon());
        assert_eq!(out, 1, "the failed push did check a peer out");
        assert_eq!(drops, 1, "…and dropped it on the error path");

        // A successful push balances through the checkin path.
        rc.recover_begin("tgt", &[]).unwrap();
        sc.recover_push(
            "src",
            "tgt",
            &replacement.local_addr().to_string(),
            &crate::wire::RepairFilter::Absent,
        )
        .unwrap();
        let (out, back, _) = balanced(survivor.daemon());
        assert_eq!(out, 2);
        assert_eq!(back, 1);
    }

    /// The pipelined session contract over a real socket: several
    /// `IngestAppend` batches in flight on one connection, acks awaited
    /// *out of order* (the client parks responses by correlation id),
    /// and a lost-ack replay of an already-applied batch — identical
    /// provenance tags — dedups away entirely. The sealed totals count
    /// exactly one copy of every record.
    #[test]
    fn pipelined_ingest_acks_out_of_order_and_replays_stay_idempotent() {
        let server = PangeadServer::bind_with_secret(
            node("pipe-dest"),
            "127.0.0.1:0",
            Some("pipe-secret".to_string()),
        )
        .unwrap();
        let mut c =
            PangeaClient::connect_with_secret(server.local_addr(), Some("pipe-secret")).unwrap();
        c.create_set("out", "write-through", None).unwrap();
        c.ingest_begin("out", None).unwrap();
        let batch = |n: u64| -> Vec<(u64, Vec<u8>)> {
            (0..8u64)
                .map(|i| {
                    let rec = format!("b{n}r{i}").into_bytes();
                    (crate::wire::ingest_tag(0, n * 8 + i, &rec), rec)
                })
                .collect()
        };

        // Three batches on the wire before a single response is read.
        let (corr1, p1) = c.ingest_append_submit("out", batch(0)).unwrap();
        let (corr2, p2) = c.ingest_append_submit("out", batch(1)).unwrap();
        let (corr3, p3) = c.ingest_append_submit("out", batch(2)).unwrap();
        assert_eq!(c.pipelined(), 3);
        // A serial RPC cannot interleave with an open pipeline.
        assert!(matches!(c.ping(), Err(PangeaError::InvalidUsage(_))));

        // Await newest-first: earlier responses park until asked for.
        let (a3, _, credit) = c.ingest_append_await(corr3, p3).unwrap();
        assert_eq!(a3, 8);
        assert!(credit >= 1, "a live receiver always grants at least 1");
        let (a1, ..) = c.ingest_append_await(corr1, p1).unwrap();
        let (a2, ..) = c.ingest_append_await(corr2, p2).unwrap();
        assert_eq!((a1, a2), (8, 8));
        assert_eq!(c.pipelined(), 0);

        // Lost-ack replay: batch 1 rides again with identical tags and
        // appends nothing — pipelined retries stay idempotent.
        let (corr_r, p_r) = c.ingest_append_submit("out", batch(1)).unwrap();
        let (ra, rb, _) = c.ingest_append_await(corr_r, p_r).unwrap();
        assert_eq!((ra, rb), (0, 0));

        let (appended, _) = c.ingest_end("out").unwrap();
        assert_eq!(appended, 24, "one copy of each record, replay deduped");
    }

    /// The accept path is capped, not an unbounded thread spawn: the
    /// connection beyond `max_conns` is refused with a typed
    /// [`PangeaError::Busy`] before any request is served, the reject is
    /// counted, and closing a live connection frees its slot (the
    /// `net.conns_open` gauge follows).
    #[test]
    fn connection_cap_rejects_with_typed_busy_and_frees_on_close() {
        let server = PangeadServer::bind_with_config(
            node("conn-cap"),
            "127.0.0.1:0",
            None,
            ServerConfig {
                max_conns: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut held: Vec<PangeaClient> = Vec::new();
        for _ in 0..2 {
            let mut c = PangeaClient::connect(server.local_addr()).unwrap();
            c.ping().unwrap(); // handshake done: the slot is registered
            held.push(c);
        }
        let reg = server.daemon().obs().registry();
        assert_eq!(reg.gauge("net.conns_open").get(), 2);

        // One over the cap: the server answers a typed Busy at accept
        // and hangs up. Read it raw — writing first would race the
        // server's close into a connection reset.
        let mut over = TcpStream::connect(server.local_addr()).unwrap();
        let payload = crate::frame::read_frame(&mut over).unwrap().unwrap();
        match Response::decode(&payload).unwrap().into_result() {
            Err(PangeaError::Busy(m)) => assert!(m.contains("cap"), "{m}"),
            other => panic!("expected Busy, got {other:?}"),
        }
        assert_eq!(reg.counter("net.busy_rejects").get(), 1);

        // Hanging up frees the slot for the next dial.
        drop(held.pop());
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let admitted = PangeaClient::connect(server.local_addr())
                .map(|mut c| c.ping().is_ok())
                .unwrap_or(false);
            if admitted {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "slot was never freed after the peer hung up"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(reg.gauge("net.conns_open").get() <= 2);
    }
}
