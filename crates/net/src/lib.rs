//! # pangea-net
//!
//! The wire layer of the Pangea reproduction: everything between the
//! distributed logic in `pangea-cluster` and actual bytes on a socket.
//!
//! The original repository substituted the paper's cluster interconnect
//! with an in-process simulation (`SimNetwork`; DESIGN.md §2). This crate
//! turns that substitution into a *seam*:
//!
//! * [`Transport`] — the trait capturing what the simulation provided: a
//!   synchronous, `NodeId`-addressed, byte-counted, optionally throttled
//!   transfer. `SimNetwork` is one implementation; [`TcpTransport`] is
//!   the real one. Cluster dispatch, replication, and recovery are
//!   generic over it.
//! * [`frame`] — length-prefixed binary framing over a byte stream (the
//!   page codec's layout lifted onto sockets), with oversized-frame
//!   rejection on both sides.
//! * [`proto`] — the request/response protocol for the core node
//!   operations: create set, append, page enumeration/fetch (recovery),
//!   scan, shuffle send, raw delivery, stats.
//! * [`wire`] — wire forms of control-plane state: declarative key
//!   specs, partitioning schemes, map specs and task specs (the
//!   distributed map-shuffle ships these *to* the data), catalog
//!   entries, and membership records served by the `pangea-coord`
//!   manager daemon.
//! * [`FramedServer`] — a reusable accept loop (handshake enforcement,
//!   graceful drain) shared by `pangead` and `pangea-mgr`.
//! * [`Pangead`] / [`PangeadServer`] — the node daemon: a [`StorageNode`]
//!   served behind the protocol (the `pangead` binary lives in
//!   `pangea-coord`, next to `pangea-mgr`).
//! * [`PangeaClient`] — a thin typed client over one connection.
//!
//! Byte accounting is designed for comparability: every transport counts
//! *payload* bytes in `IoStats::record_net` (framing and protocol headers
//! are charged as serialization), so a workload measured over TCP
//! reports the same net-byte volume as the same workload on the
//! simulation.
//!
//! [`StorageNode`]: pangea_core::StorageNode

pub mod client;
pub mod frame;
pub mod proto;
pub mod server;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use client::{PangeaClient, RemoteStats};
pub use frame::{FRAME_OVERHEAD, MAX_FRAME};
pub use pangea_obs::TraceCtx;
pub use proto::{error_response, Request, Response};
pub use server::{
    metrics_dump_response, FramedServer, FramedService, Pangead, PangeadServer, ServerConfig,
    DEFAULT_DRAIN, DEFAULT_IO_THREADS, DEFAULT_MAX_CONNS, DEFAULT_PIPELINE_WINDOW,
    MAX_PIPELINE_WINDOW, METRICS_CHUNK, SPANS_CHUNK,
};
pub use tcp::TcpTransport;
pub use transport::Transport;
pub use wire::{
    ingest_tag, CmpOp, EmitSpec, FilterSpec, KeySpec, MapSpec, ReduceOp, ReduceSpec, RepairFilter,
    RepairPushReport, SchemeSpec, TaskReport, TaskSpec, WireCatalogEntry, WireMetric, WireSpan,
    WireWorker, WorkerState,
};
