//! Wire representations of control-plane state: partitioning schemes,
//! catalog entries, and cluster membership.
//!
//! The in-process catalog (`pangea-cluster`'s `Manager`) stores a
//! `PartitionScheme` whose key extractor is an arbitrary closure — a UDF
//! in the paper's terms. UDFs do not cross the wire; what does is a
//! *declarative* [`KeySpec`] (whole record, or a delimited field), which
//! every peer can re-materialize into the same extractor. Schemes built
//! from opaque closures therefore cannot be registered in a wire-served
//! catalog; `pangea-cluster` offers `hash_field`/`hash_whole`
//! constructors that carry their spec.
//!
//! Encoding follows the [`crate::proto`] conventions: every field is a
//! length-prefixed record in a `ByteWriter` stream, integers travel as
//! `u64`, and unknown discriminants decode to [`PangeaError::Corruption`].

use pangea_common::{fx_hash64, ByteReader, ByteWriter, PangeaError, Result};

/// A declarative, wire-safe key extractor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySpec {
    /// The whole record is the key.
    WholeRecord,
    /// Field `index` (0-based) after splitting the record on `delim`;
    /// records with fewer fields key on the empty string.
    Field {
        /// The single-byte field delimiter (e.g. `b'|'`).
        delim: u8,
        /// 0-based field index.
        index: u32,
    },
}

const KEY_WHOLE: u64 = 1;
const KEY_FIELD: u64 = 2;

impl KeySpec {
    pub(crate) fn put(&self, w: &mut ByteWriter) {
        match self {
            Self::WholeRecord => w.write_record(&KEY_WHOLE),
            Self::Field { delim, index } => {
                w.write_record(&KEY_FIELD);
                w.write_record(&(*delim as u64));
                w.write_record(&(*index as u64));
            }
        }
    }

    pub(crate) fn get(r: &mut ByteReader<'_>) -> Result<Self> {
        let tag: u64 = r.read_record()?;
        Ok(match tag {
            KEY_WHOLE => Self::WholeRecord,
            KEY_FIELD => Self::Field {
                delim: r.read_record::<u64>()? as u8,
                index: r.read_record::<u64>()? as u32,
            },
            other => {
                return Err(PangeaError::Corruption(format!(
                    "unknown key-spec tag {other}"
                )))
            }
        })
    }

    /// Extracts this spec's key from a record's bytes.
    pub fn key_of(&self, record: &[u8]) -> Vec<u8> {
        self.key_slice(record).to_vec()
    }

    /// Borrowing variant of [`KeySpec::key_of`]: both variants name a
    /// subslice of the record, so routing and filtering hot paths can
    /// hash or compare the key without allocating.
    pub fn key_slice<'a>(&self, record: &'a [u8]) -> &'a [u8] {
        match *self {
            Self::WholeRecord => record,
            Self::Field { delim, index } => record
                .split(|&b| b == delim)
                .nth(index as usize)
                .unwrap_or_default(),
        }
    }
}

/// A partitioning scheme in wire form (the serializable subset of
/// `pangea-cluster`'s `PartitionScheme`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemeSpec {
    /// `hash(key) % partitions`, keyed by a declarative [`KeySpec`].
    Hash {
        /// The key the scheme organizes by (`l_orderkey`, …).
        key_name: String,
        /// Number of partitions.
        partitions: u32,
        /// How the key is extracted.
        key: KeySpec,
    },
    /// Records round-robin over partitions.
    RoundRobin {
        /// Number of partitions.
        partitions: u32,
    },
}

const SCHEME_HASH: u64 = 1;
const SCHEME_RR: u64 = 2;

impl SchemeSpec {
    pub(crate) fn put(&self, w: &mut ByteWriter) {
        match self {
            Self::Hash {
                key_name,
                partitions,
                key,
            } => {
                w.write_record(&SCHEME_HASH);
                w.write_record(key_name);
                w.write_record(&(*partitions as u64));
                key.put(w);
            }
            Self::RoundRobin { partitions } => {
                w.write_record(&SCHEME_RR);
                w.write_record(&(*partitions as u64));
            }
        }
    }

    pub(crate) fn get(r: &mut ByteReader<'_>) -> Result<Self> {
        let tag: u64 = r.read_record()?;
        let spec = match tag {
            SCHEME_HASH => Self::Hash {
                key_name: r.read_record()?,
                partitions: r.read_record::<u64>()? as u32,
                key: KeySpec::get(r)?,
            },
            SCHEME_RR => Self::RoundRobin {
                partitions: r.read_record::<u64>()? as u32,
            },
            other => {
                return Err(PangeaError::Corruption(format!(
                    "unknown scheme tag {other}"
                )))
            }
        };
        // The driver-side `PartitionScheme` clamps `partitions` to ≥ 1 at
        // construction; a zero can therefore only reach the wire from a
        // hand-crafted or corrupted frame, and silently clamping it here
        // would let the two sides disagree about the routing rule.
        if spec.raw_partitions() == 0 {
            return Err(PangeaError::Corruption(
                "partition scheme with zero partitions".into(),
            ));
        }
        Ok(spec)
    }

    fn raw_partitions(&self) -> u32 {
        match self {
            Self::Hash { partitions, .. } | Self::RoundRobin { partitions } => *partitions,
        }
    }

    /// The scheme's partition count.
    pub fn partitions(&self) -> u32 {
        match self {
            Self::Hash { partitions, .. } | Self::RoundRobin { partitions } => (*partitions).max(1),
        }
    }

    /// The partition a record belongs to. Mirrors the in-process
    /// `PartitionScheme::partition_of` exactly (`hash(key) % partitions`;
    /// round-robin uses the caller-maintained `ordinal`), so a mapper's
    /// remote routing decision matches the driver-side dispatcher's.
    pub fn partition_of(&self, record: &[u8], ordinal: u64) -> u32 {
        match self {
            Self::Hash { key, .. } => {
                (fx_hash64(key.key_slice(record)) % self.partitions() as u64) as u32
            }
            Self::RoundRobin { .. } => (ordinal % self.partitions() as u64) as u32,
        }
    }

    /// The node a record lands on in an `nodes`-slot fleet (partitions
    /// stripe over nodes, mirroring `PartitionScheme::node_of`).
    pub fn node_of(&self, record: &[u8], ordinal: u64, nodes: u32) -> u32 {
        self.partition_of(record, ordinal) % nodes.max(1)
    }
}

/// How a survivor selects which of its local records to ship during a
/// worker→worker repair push (`Request::RecoverPush`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairFilter {
    /// Ship only records whose placement under `scheme` across `nodes`
    /// slots is the `failed` slot — the lost share of a hash-partitioned
    /// replica, recomputable on any peer from the declarative scheme.
    Lost {
        /// The recovery target's partitioning scheme (must be `Hash`:
        /// round-robin placement is ordinal-based and cannot be
        /// recomputed per record).
        scheme: SchemeSpec,
        /// The failed node slot (raw `NodeId`).
        failed: u32,
        /// Fleet width the scheme stripes over.
        nodes: u32,
    },
    /// Ship every record; the replacement's repair session filters out
    /// what the surviving share already holds (round-robin targets,
    /// whose lost share is defined by absence, not by placement).
    All,
    /// Ship only records *absent* from the replacement's repair-session
    /// ledger: before scanning, the survivor pulls the session's seeded
    /// present-hash ledger from the replacement (paginated like
    /// `HashList`, via `Request::RepairLedger`) and filters at the
    /// source. Same correctness as [`RepairFilter::All`] — the session
    /// still dedups every append — but the surviving share's bytes never
    /// cross the wire, so a round-robin repair ships ~the lost share
    /// instead of every survivor's whole share.
    Absent,
}

const FILTER_LOST: u64 = 1;
const FILTER_ALL: u64 = 2;
const FILTER_ABSENT: u64 = 3;

impl RepairFilter {
    pub(crate) fn put(&self, w: &mut ByteWriter) {
        match self {
            Self::Lost {
                scheme,
                failed,
                nodes,
            } => {
                w.write_record(&FILTER_LOST);
                scheme.put(w);
                w.write_record(&(*failed as u64));
                w.write_record(&(*nodes as u64));
            }
            Self::All => w.write_record(&FILTER_ALL),
            Self::Absent => w.write_record(&FILTER_ABSENT),
        }
    }

    pub(crate) fn get(r: &mut ByteReader<'_>) -> Result<Self> {
        let tag: u64 = r.read_record()?;
        Ok(match tag {
            FILTER_LOST => Self::Lost {
                scheme: SchemeSpec::get(r)?,
                failed: r.read_record::<u64>()? as u32,
                nodes: r.read_record::<u64>()? as u32,
            },
            FILTER_ALL => Self::All,
            FILTER_ABSENT => Self::Absent,
            other => {
                return Err(PangeaError::Corruption(format!(
                    "unknown repair-filter tag {other}"
                )))
            }
        })
    }

    /// Compiles the filter into a per-record predicate: `true` means the
    /// record must be shipped. Mirrors `PartitionScheme::node_of` exactly
    /// (`hash(key) % partitions`, partitions striping over nodes), so a
    /// survivor's local decision matches the placement the dispatcher
    /// used. Fails on a `Lost` filter over a round-robin scheme, and on
    /// `Absent`, whose predicate is not self-contained — the survivor
    /// resolves it against the target's session ledger (see
    /// `Pangead::recover_push`).
    pub fn compile(&self) -> Result<Box<dyn Fn(&[u8]) -> bool + Send + Sync>> {
        match self {
            Self::All => Ok(Box::new(|_| true)),
            Self::Absent => Err(PangeaError::usage(
                "an Absent repair filter is resolved at the survivor against \
                 the replacement's session ledger, not compiled standalone",
            )),
            Self::Lost {
                scheme,
                failed,
                nodes,
            } => match scheme {
                SchemeSpec::RoundRobin { .. } => Err(PangeaError::usage(
                    "round-robin placement is ordinal-based and cannot back a \
                     Lost repair filter; use RepairFilter::All",
                )),
                SchemeSpec::Hash {
                    partitions, key, ..
                } => {
                    let key = *key;
                    let partitions = (*partitions).max(1) as u64;
                    let (failed, nodes) = (*failed, (*nodes).max(1));
                    Ok(Box::new(move |rec: &[u8]| {
                        let p = (fx_hash64(key.key_slice(rec)) % partitions) as u32;
                        p % nodes == failed
                    }))
                }
            },
        }
    }
}

/// Outcome of one survivor→replacement repair push, as acknowledged over
/// the wire (`Response::Pushed`) and aggregated by the recovery engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairPushReport {
    /// Records the survivor scanned in its local source share.
    pub scanned: u64,
    /// Records that passed the filter and were shipped to the target.
    pub pushed: u64,
    /// Payload bytes shipped worker→worker.
    pub pushed_bytes: u64,
    /// Records the target actually appended (post-dedup).
    pub appended: u64,
    /// Payload bytes the target actually appended.
    pub appended_bytes: u64,
}

impl RepairPushReport {
    /// Component-wise sum with another report.
    pub fn merge(&mut self, other: &RepairPushReport) {
        self.scanned += other.scanned;
        self.pushed += other.pushed;
        self.pushed_bytes += other.pushed_bytes;
        self.appended += other.appended;
        self.appended_bytes += other.appended_bytes;
    }
}

/// A declarative, wire-safe record filter — the predicate half of a
/// [`MapSpec`]. Filters evaluate over delimited record bytes, so every
/// worker re-materializes the same predicate from the wire form (UDF
/// closures never cross the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterSpec {
    /// Keep records whose key (per `key`) equals `value` byte-for-byte.
    KeyEquals {
        /// How the compared key is extracted.
        key: KeySpec,
        /// The bytes the key must equal.
        value: Vec<u8>,
    },
    /// Keep records whose key (per `key`) is *not* empty — e.g. drop
    /// rows missing the projected field.
    KeyPresent {
        /// How the checked key is extracted.
        key: KeySpec,
    },
    /// Keep records whose key (per `key`), parsed as a decimal signed
    /// integer, compares against `value` under `cmp`. Records whose key
    /// does not parse fail the predicate (dropped), mirroring SQL's
    /// NULL-comparison semantics.
    KeyCompare {
        /// How the compared key is extracted.
        key: KeySpec,
        /// The comparison to apply (`key <cmp> value`).
        cmp: CmpOp,
        /// The right-hand side of the comparison.
        value: i64,
    },
}

/// A numeric comparison operator for [`FilterSpec::KeyCompare`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `key < value`
    Lt,
    /// `key <= value`
    Le,
    /// `key > value`
    Gt,
    /// `key >= value`
    Ge,
    /// `key == value`
    Eq,
    /// `key != value`
    Ne,
}

const CMP_LT: u64 = 1;
const CMP_LE: u64 = 2;
const CMP_GT: u64 = 3;
const CMP_GE: u64 = 4;
const CMP_EQ: u64 = 5;
const CMP_NE: u64 = 6;

impl CmpOp {
    fn wire_tag(self) -> u64 {
        match self {
            Self::Lt => CMP_LT,
            Self::Le => CMP_LE,
            Self::Gt => CMP_GT,
            Self::Ge => CMP_GE,
            Self::Eq => CMP_EQ,
            Self::Ne => CMP_NE,
        }
    }

    fn from_wire(tag: u64) -> Result<Self> {
        Ok(match tag {
            CMP_LT => Self::Lt,
            CMP_LE => Self::Le,
            CMP_GT => Self::Gt,
            CMP_GE => Self::Ge,
            CMP_EQ => Self::Eq,
            CMP_NE => Self::Ne,
            other => {
                return Err(PangeaError::Corruption(format!(
                    "unknown comparison-op tag {other}"
                )))
            }
        })
    }

    /// Evaluates `lhs <op> rhs`.
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            Self::Lt => lhs < rhs,
            Self::Le => lhs <= rhs,
            Self::Gt => lhs > rhs,
            Self::Ge => lhs >= rhs,
            Self::Eq => lhs == rhs,
            Self::Ne => lhs != rhs,
        }
    }
}

/// Parses a byte slice as a decimal `i64` with `str::parse` semantics
/// (an optional leading sign, no surrounding whitespace). Shared by the
/// numeric filter predicate and the reduce value extraction, so "is a
/// number" means one thing across the task algebra.
pub(crate) fn parse_i64(bytes: &[u8]) -> Option<i64> {
    std::str::from_utf8(bytes).ok()?.parse().ok()
}

const FILTER_KEY_EQUALS: u64 = 1;
const FILTER_KEY_PRESENT: u64 = 2;
const FILTER_KEY_COMPARE: u64 = 3;

impl FilterSpec {
    pub(crate) fn put(&self, w: &mut ByteWriter) {
        match self {
            Self::KeyEquals { key, value } => {
                w.write_record(&FILTER_KEY_EQUALS);
                key.put(w);
                w.write_bytes(value);
            }
            Self::KeyPresent { key } => {
                w.write_record(&FILTER_KEY_PRESENT);
                key.put(w);
            }
            Self::KeyCompare { key, cmp, value } => {
                w.write_record(&FILTER_KEY_COMPARE);
                key.put(w);
                w.write_record(&cmp.wire_tag());
                w.write_record(&(*value as u64));
            }
        }
    }

    pub(crate) fn get(r: &mut ByteReader<'_>) -> Result<Self> {
        let tag: u64 = r.read_record()?;
        Ok(match tag {
            FILTER_KEY_EQUALS => Self::KeyEquals {
                key: KeySpec::get(r)?,
                value: r.read_bytes()?.to_vec(),
            },
            FILTER_KEY_PRESENT => Self::KeyPresent {
                key: KeySpec::get(r)?,
            },
            FILTER_KEY_COMPARE => Self::KeyCompare {
                key: KeySpec::get(r)?,
                cmp: CmpOp::from_wire(r.read_record()?)?,
                value: r.read_record::<u64>()? as i64,
            },
            other => {
                return Err(PangeaError::Corruption(format!(
                    "unknown filter-spec tag {other}"
                )))
            }
        })
    }

    /// True when `record` passes the filter (allocation-free).
    pub fn keeps(&self, record: &[u8]) -> bool {
        match self {
            Self::KeyEquals { key, value } => key.key_slice(record) == &value[..],
            Self::KeyPresent { key } => !key.key_slice(record).is_empty(),
            Self::KeyCompare { key, cmp, value } => match parse_i64(key.key_slice(record)) {
                Some(lhs) => cmp.eval(lhs, *value),
                None => false,
            },
        }
    }
}

/// What a [`MapSpec`] emits for each surviving record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmitSpec {
    /// The record unchanged.
    Record,
    /// The record's key per the spec (key-extract).
    Key(KeySpec),
    /// Selected delimited fields, re-joined with `delim` (projection).
    /// Missing fields project as empty.
    Fields {
        /// The single-byte field delimiter.
        delim: u8,
        /// 0-based field indices, emitted in the given order.
        indices: Vec<u32>,
    },
    /// Flat-map tokenization: split the record on `delim` and emit each
    /// *non-empty* token as its own output record — one input record
    /// emits zero or more outputs (e.g. whitespace-tokenize a raw text
    /// line, so a wordcount needs no pre-split input).
    Tokens {
        /// The single-byte token delimiter (e.g. `b' '`).
        delim: u8,
    },
}

const EMIT_RECORD: u64 = 1;
const EMIT_KEY: u64 = 2;
const EMIT_FIELDS: u64 = 3;
const EMIT_TOKENS: u64 = 4;

impl EmitSpec {
    pub(crate) fn put(&self, w: &mut ByteWriter) {
        match self {
            Self::Record => w.write_record(&EMIT_RECORD),
            Self::Key(key) => {
                w.write_record(&EMIT_KEY);
                key.put(w);
            }
            Self::Fields { delim, indices } => {
                w.write_record(&EMIT_FIELDS);
                w.write_record(&(*delim as u64));
                w.write_record(&(indices.len() as u64));
                for i in indices {
                    w.write_record(&(*i as u64));
                }
            }
            Self::Tokens { delim } => {
                w.write_record(&EMIT_TOKENS);
                w.write_record(&(*delim as u64));
            }
        }
    }

    pub(crate) fn get(r: &mut ByteReader<'_>) -> Result<Self> {
        let tag: u64 = r.read_record()?;
        Ok(match tag {
            EMIT_RECORD => Self::Record,
            EMIT_KEY => Self::Key(KeySpec::get(r)?),
            EMIT_FIELDS => {
                let delim = r.read_record::<u64>()? as u8;
                let n: u64 = r.read_record()?;
                let mut indices = Vec::with_capacity(n.min(1 << 16) as usize);
                for _ in 0..n {
                    indices.push(r.read_record::<u64>()? as u32);
                }
                Self::Fields { delim, indices }
            }
            EMIT_TOKENS => Self::Tokens {
                delim: r.read_record::<u64>()? as u8,
            },
            other => {
                return Err(PangeaError::Corruption(format!(
                    "unknown emit-spec tag {other}"
                )))
            }
        })
    }

    /// Runs `f` over every output this spec emits for `record`, in
    /// order. The single-emit variants call `f` exactly once;
    /// [`EmitSpec::Tokens`] calls it once per non-empty token (possibly
    /// never). The first error aborts the emission.
    pub fn emit_each(&self, record: &[u8], f: &mut dyn FnMut(&[u8]) -> Result<()>) -> Result<()> {
        match self {
            Self::Record => f(record),
            Self::Key(key) => f(key.key_slice(record)),
            Self::Fields { delim, indices } => {
                let fields: Vec<&[u8]> = record.split(|&b| b == *delim).collect();
                let mut out = Vec::new();
                for (i, idx) in indices.iter().enumerate() {
                    if i > 0 {
                        out.push(*delim);
                    }
                    if let Some(field) = fields.get(*idx as usize) {
                        out.extend_from_slice(field);
                    }
                }
                f(&out)
            }
            Self::Tokens { delim } => {
                for token in record.split(|&b| b == *delim) {
                    if !token.is_empty() {
                        f(token)?;
                    }
                }
                Ok(())
            }
        }
    }

    /// The bytes this spec emits for `record`, for the single-emit
    /// variants. [`EmitSpec::Tokens`] is multi-emit — use
    /// [`EmitSpec::emit_each`]; here it returns the first token (or
    /// empty), as a convenience for diagnostics only.
    pub fn emit(&self, record: &[u8]) -> Vec<u8> {
        let mut first: Option<Vec<u8>> = None;
        let _ = self.emit_each(record, &mut |out| {
            if first.is_none() {
                first = Some(out.to_vec());
            }
            Ok(())
        });
        first.unwrap_or_default()
    }
}

/// A declarative, wire-codable record map: an optional [`FilterSpec`]
/// followed by an [`EmitSpec`] — projection, filter, and key-extraction
/// over delimited fields, in the spirit of [`KeySpec`]/[`SchemeSpec`].
/// Arbitrary UDF closures stay in-process (`SimCluster`); a `MapSpec`
/// is what the driver can ship *to* the data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapSpec {
    /// Records failing the filter are dropped before emission.
    pub filter: Option<FilterSpec>,
    /// What each surviving record maps to.
    pub emit: EmitSpec,
}

impl MapSpec {
    /// The identity map: every record emitted unchanged.
    pub fn identity() -> Self {
        Self {
            filter: None,
            emit: EmitSpec::Record,
        }
    }

    /// Emit each record's key per `key` (key-extraction).
    pub fn extract(key: KeySpec) -> Self {
        Self {
            filter: None,
            emit: EmitSpec::Key(key),
        }
    }

    /// Project delimited fields, re-joined with `delim`.
    pub fn project(delim: u8, indices: Vec<u32>) -> Self {
        Self {
            filter: None,
            emit: EmitSpec::Fields { delim, indices },
        }
    }

    /// Flat-map tokenize: emit every non-empty `delim`-separated token
    /// of each record as its own output record.
    pub fn tokenize(delim: u8) -> Self {
        Self {
            filter: None,
            emit: EmitSpec::Tokens { delim },
        }
    }

    /// Adds a filter in front of the emission.
    pub fn with_filter(mut self, filter: FilterSpec) -> Self {
        self.filter = Some(filter);
        self
    }

    /// Runs `f` over every output the map emits for one record — zero
    /// outputs when the record is filtered out, several when the emit
    /// spec is multi-emit ([`EmitSpec::Tokens`]). This is the canonical
    /// application; mapper hot paths use it so flat-map specs work
    /// everywhere.
    pub fn for_each_emit(
        &self,
        record: &[u8],
        f: &mut dyn FnMut(&[u8]) -> Result<()>,
    ) -> Result<()> {
        if let Some(filter) = &self.filter {
            if !filter.keeps(record) {
                return Ok(());
            }
        }
        self.emit.emit_each(record, f)
    }

    /// Applies the map to one record: `None` means the record was
    /// filtered out. Single-emit convenience over
    /// [`MapSpec::for_each_emit`]; for a multi-emit spec this returns
    /// only the first emission.
    pub fn apply(&self, record: &[u8]) -> Option<Vec<u8>> {
        if let Some(f) = &self.filter {
            if !f.keeps(record) {
                return None;
            }
        }
        Some(self.emit.emit(record))
    }

    pub(crate) fn put(&self, w: &mut ByteWriter) {
        w.write_record(&(self.filter.is_some() as u64));
        if let Some(f) = &self.filter {
            f.put(w);
        }
        self.emit.put(w);
    }

    pub(crate) fn get(r: &mut ByteReader<'_>) -> Result<Self> {
        let has_filter: u64 = r.read_record()?;
        let filter = if has_filter != 0 {
            Some(FilterSpec::get(r)?)
        } else {
            None
        };
        Ok(Self {
            filter,
            emit: EmitSpec::get(r)?,
        })
    }
}

/// The fold applied by a [`ReduceSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Number of records per key.
    Count,
    /// Sum of the numeric value field per key.
    Sum,
    /// Minimum of the numeric value field per key.
    Min,
    /// Maximum of the numeric value field per key.
    Max,
}

const REDUCE_COUNT: u64 = 1;
const REDUCE_SUM: u64 = 2;
const REDUCE_MIN: u64 = 3;
const REDUCE_MAX: u64 = 4;

/// A declarative, wire-codable keyed reduction over the map's output:
/// count / sum / min / max of a delimited numeric field, grouped by the
/// record key. A reduce makes the map-shuffle a full distributed
/// map-combine-reduce: mappers pre-aggregate per key before shipping
/// (source-side combine — measurably fewer shuffle bytes), and each
/// destination folds the incoming partials into one accumulator,
/// materialized at `IngestEnd`.
///
/// # Record forms
///
/// The reduce sees *mapped* records: `key` extracts the group key from
/// each, and (for `Sum`/`Min`/`Max`) `value_index` names the
/// `delim`-separated field parsed as a decimal `i64` — records whose
/// value does not parse are dropped from the fold. Partial aggregates
/// travel (and the final output materializes) as
/// `key ++ [delim] ++ decimal(value)` records, so the reduced output is
/// a normal delimited set: its key is field 0, its value the last
/// field. Because every fold here (`Sum`-merge for `Count`, else the op
/// itself, over wrapping `i64`) is associative and commutative, the
/// distributed combine-then-merge equals the serial single-fold
/// reference record-for-record.
///
/// The delimiter must not be a byte a rendered decimal value can
/// contain (`-` or a digit) — the partial encoding splits at the *last*
/// delimiter and such a byte would make the split ambiguous. Rejected
/// at wire decode ([`PangeaError::Corruption`]) and at job validation;
/// see [`ReduceSpec::delim_ok`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReduceSpec {
    /// How the group key is extracted from a *mapped* record.
    pub key: KeySpec,
    /// The fold to apply per key.
    pub op: ReduceOp,
    /// Single-byte delimiter: separates `value_index` fields in mapped
    /// records, and separates key from value in partial/output records.
    pub delim: u8,
    /// For `Sum`/`Min`/`Max`: 0-based index of the numeric field in the
    /// mapped record. Ignored by `Count`.
    pub value_index: u32,
}

impl ReduceSpec {
    /// Count records per key (wordcount's fold).
    pub fn count(key: KeySpec, delim: u8) -> Self {
        Self {
            key,
            op: ReduceOp::Count,
            delim,
            value_index: 0,
        }
    }

    /// Sum field `value_index` per key.
    pub fn sum(key: KeySpec, delim: u8, value_index: u32) -> Self {
        Self {
            key,
            op: ReduceOp::Sum,
            delim,
            value_index,
        }
    }

    /// Minimum of field `value_index` per key.
    pub fn min(key: KeySpec, delim: u8, value_index: u32) -> Self {
        Self {
            key,
            op: ReduceOp::Min,
            delim,
            value_index,
        }
    }

    /// Maximum of field `value_index` per key.
    pub fn max(key: KeySpec, delim: u8, value_index: u32) -> Self {
        Self {
            key,
            op: ReduceOp::Max,
            delim,
            value_index,
        }
    }

    /// True when `delim` can delimit reduce partials: a rendered
    /// decimal `i64` contains only digits and `-`, so any other byte
    /// splits `key ++ [delim] ++ decimal(value)` unambiguously at its
    /// last occurrence. A digit or `-` delimiter would let the value's
    /// own bytes masquerade as the delimiter (`k--17` splitting into
    /// `k-` / `17`), silently corrupting the fold.
    pub fn delim_ok(delim: u8) -> bool {
        delim != b'-' && !delim.is_ascii_digit()
    }

    /// Extracts `(group key, initial accumulator value)` from one
    /// *mapped* record; `None` drops the record from the fold (missing
    /// or non-numeric value field).
    pub fn accumulate(&self, mapped: &[u8]) -> Option<(Vec<u8>, i64)> {
        let key = self.key.key_of(mapped);
        let value = match self.op {
            ReduceOp::Count => 1,
            ReduceOp::Sum | ReduceOp::Min | ReduceOp::Max => parse_i64(
                KeySpec::Field {
                    delim: self.delim,
                    index: self.value_index,
                }
                .key_slice(mapped),
            )?,
        };
        Some((key, value))
    }

    /// Merges two accumulator values. `Count` partials merge by
    /// addition (a count of counts is a sum); addition wraps so the
    /// merge stays associative and commutative — the property the
    /// combine-then-merge parity contract rests on.
    pub fn merge(&self, a: i64, b: i64) -> i64 {
        match self.op {
            ReduceOp::Count | ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    /// The op's merge as a plain function pointer, the shape the
    /// spillable `ReduceBuffer` accumulator stores (same semantics as
    /// [`ReduceSpec::merge`], expressed in-place).
    pub fn merge_fn(&self) -> fn(&mut i64, i64) {
        match self.op {
            ReduceOp::Count | ReduceOp::Sum => |a, b| *a = a.wrapping_add(b),
            ReduceOp::Min => |a, b| *a = (*a).min(b),
            ReduceOp::Max => |a, b| *a = (*a).max(b),
        }
    }

    /// Folds one `(key, value)` into a keyed accumulator, merging with
    /// the key's existing slot or inserting on first sight. The single
    /// definition of the fold — source-side combine, destination merge,
    /// and the serial reference all go through it, so their semantics
    /// cannot drift apart.
    pub fn fold_into(
        &self,
        acc: &mut std::collections::BTreeMap<Vec<u8>, i64>,
        key: &[u8],
        value: i64,
    ) {
        match acc.get_mut(key) {
            Some(a) => *a = self.merge(*a, value),
            None => {
                acc.insert(key.to_vec(), value);
            }
        }
    }

    /// Encodes one `(key, value)` accumulator entry as a partial/output
    /// record: `key ++ [delim] ++ decimal(value)`.
    pub fn encode_record(&self, key: &[u8], value: i64) -> Vec<u8> {
        let digits = value.to_string();
        let mut out = Vec::with_capacity(key.len() + 1 + digits.len());
        out.extend_from_slice(key);
        out.push(self.delim);
        out.extend_from_slice(digits.as_bytes());
        out
    }

    /// Decodes a partial/output record back into `(key, value)`: the
    /// value is everything after the *last* delimiter (the rendered
    /// value never contains one), so keys may themselves contain the
    /// delimiter.
    pub fn decode_record<'a>(&self, record: &'a [u8]) -> Result<(&'a [u8], i64)> {
        let split = record
            .iter()
            .rposition(|&b| b == self.delim)
            .ok_or_else(|| {
                PangeaError::Corruption(format!(
                    "reduce partial without a '{}' delimiter: {record:?}",
                    self.delim as char
                ))
            })?;
        let value = parse_i64(&record[split + 1..]).ok_or_else(|| {
            PangeaError::Corruption(format!(
                "reduce partial with a non-numeric value: {record:?}"
            ))
        })?;
        Ok((&record[..split], value))
    }

    pub(crate) fn put(&self, w: &mut ByteWriter) {
        w.write_record(&match self.op {
            ReduceOp::Count => REDUCE_COUNT,
            ReduceOp::Sum => REDUCE_SUM,
            ReduceOp::Min => REDUCE_MIN,
            ReduceOp::Max => REDUCE_MAX,
        });
        self.key.put(w);
        w.write_record(&(self.delim as u64));
        w.write_record(&(self.value_index as u64));
    }

    pub(crate) fn get(r: &mut ByteReader<'_>) -> Result<Self> {
        let op = match r.read_record::<u64>()? {
            REDUCE_COUNT => ReduceOp::Count,
            REDUCE_SUM => ReduceOp::Sum,
            REDUCE_MIN => ReduceOp::Min,
            REDUCE_MAX => ReduceOp::Max,
            other => {
                return Err(PangeaError::Corruption(format!(
                    "unknown reduce-op tag {other}"
                )))
            }
        };
        let key = KeySpec::get(r)?;
        let delim = r.read_record::<u64>()? as u8;
        if !Self::delim_ok(delim) {
            return Err(PangeaError::Corruption(format!(
                "reduce delimiter {delim:#04x} can appear inside a rendered \
                 decimal value; pick a non-digit, non-'-' byte"
            )));
        }
        Ok(Self {
            key,
            op,
            delim,
            value_index: r.read_record::<u64>()? as u32,
        })
    }

    pub(crate) fn put_opt(spec: &Option<ReduceSpec>, w: &mut ByteWriter) {
        w.write_record(&(spec.is_some() as u64));
        if let Some(spec) = spec {
            spec.put(w);
        }
    }

    pub(crate) fn get_opt(r: &mut ByteReader<'_>) -> Result<Option<Self>> {
        let present: u64 = r.read_record()?;
        Ok(if present != 0 {
            Some(Self::get(r)?)
        } else {
            None
        })
    }
}

/// One map task as shipped to a worker (`Request::TaskRun`): scan the
/// local share of `input`, apply `map`, route each output record by
/// `scheme` striping over `nodes`, and stream batches straight to the
/// destination worker's ingest session for `output`. The driver only
/// plans and collects the [`TaskReport`] — no record payload ever
/// touches its connections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpec {
    /// The worker-local input set to scan.
    pub input: String,
    /// The destination set (ingest sessions must be open on every
    /// destination before the task runs).
    pub output: String,
    /// The per-record transform.
    pub map: MapSpec,
    /// When present, the mapper pre-aggregates its mapped output per
    /// key (source-side combine) and ships encoded partials instead of
    /// raw records; destinations fold the partials in their reducing
    /// ingest sessions. Must pair with a hash `scheme` keyed by field 0
    /// under the reduce's delimiter, so placement is key-determined.
    pub reduce: Option<ReduceSpec>,
    /// Output partitioning (declarative — it crossed the wire).
    pub scheme: SchemeSpec,
    /// Fleet width the output partitions stripe over.
    pub nodes: u32,
    /// The executing worker's slot, for provenance tags
    /// ([`ingest_tag`]) — stable across task retries. Contract: this
    /// names the daemon the task runs on, so records routing to the
    /// `source` slot are appended into the daemon's *own* ingest
    /// session directly (no loopback RPC).
    pub source: u32,
    /// Destination daemons: `(slot, advertised addr)` for every alive
    /// worker.
    pub dests: Vec<(u32, String)>,
    /// Pipeline window: how many `IngestAppend` batches the mapper may
    /// keep in flight per destination before awaiting the oldest ack.
    /// `0` means "use the executing daemon's default"; `1` is
    /// strict-serial (the pre-pipelining round-trip-per-batch shape).
    /// The receiver's credit grants can shrink the effective window
    /// below this at any time.
    pub window: u32,
}

impl TaskSpec {
    pub(crate) fn put(&self, w: &mut ByteWriter) {
        w.write_record(&self.input);
        w.write_record(&self.output);
        self.map.put(w);
        ReduceSpec::put_opt(&self.reduce, w);
        self.scheme.put(w);
        w.write_record(&(self.nodes as u64));
        w.write_record(&(self.source as u64));
        w.write_record(&(self.dests.len() as u64));
        for (node, addr) in &self.dests {
            w.write_record(&(*node as u64));
            w.write_record(addr);
        }
        w.write_record(&(self.window as u64));
    }

    pub(crate) fn get(r: &mut ByteReader<'_>) -> Result<Self> {
        let input = r.read_record()?;
        let output = r.read_record()?;
        let map = MapSpec::get(r)?;
        let reduce = ReduceSpec::get_opt(r)?;
        let scheme = SchemeSpec::get(r)?;
        let nodes = r.read_record::<u64>()? as u32;
        let source = r.read_record::<u64>()? as u32;
        let n: u64 = r.read_record()?;
        let mut dests = Vec::with_capacity(n.min(1 << 20) as usize);
        for _ in 0..n {
            dests.push((r.read_record::<u64>()? as u32, r.read_record()?));
        }
        let window = r.read_record::<u64>()? as u32;
        Ok(Self {
            input,
            output,
            map,
            reduce,
            scheme,
            nodes,
            source,
            dests,
            window,
        })
    }
}

/// Outcome of one shipped map task, as acknowledged over the wire
/// (`Response::TaskDone`) and aggregated by the map-shuffle engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskReport {
    /// Records the worker scanned in its local input share.
    pub scanned: u64,
    /// Records that survived the map and were shipped.
    pub emitted: u64,
    /// Payload bytes shipped worker→worker.
    pub emitted_bytes: u64,
    /// Records the destinations actually appended (post-dedup).
    pub appended: u64,
    /// Payload bytes the destinations actually appended.
    pub appended_bytes: u64,
}

impl TaskReport {
    /// Component-wise sum with another report.
    pub fn merge(&mut self, other: &TaskReport) {
        self.scanned += other.scanned;
        self.emitted += other.emitted;
        self.emitted_bytes += other.emitted_bytes;
        self.appended += other.appended;
        self.appended_bytes += other.appended_bytes;
    }
}

/// The provenance tag an ingest session dedups on: a hash of the
/// mapper's slot, the input record's scan ordinal, and the emitted
/// bytes. A retried task re-scans the same local share in the same
/// storage order, so its tags are identical and every re-pushed record
/// dedups away — while two *legitimately identical* output records
/// (different source or ordinal) keep distinct tags and are both
/// appended. (Contrast repair sessions, which dedup on record content:
/// a restored set holds each lost record once, but a shuffle output may
/// contain honest duplicates.)
pub fn ingest_tag(source: u32, ordinal: u64, record: &[u8]) -> u64 {
    // Stack buffer of (source, ordinal, hash(record)) — no per-record
    // heap allocation or payload copy on the mapper hot path.
    let mut buf = [0u8; 20];
    buf[..4].copy_from_slice(&source.to_le_bytes());
    buf[4..12].copy_from_slice(&ordinal.to_le_bytes());
    buf[12..].copy_from_slice(&fx_hash64(record).to_le_bytes());
    fx_hash64(&buf)
}

/// One catalog entry as served by `pangea-mgr`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireCatalogEntry {
    /// The set's cluster-wide name.
    pub name: String,
    /// Its partitioning scheme.
    pub scheme: SchemeSpec,
    /// The replica group it belongs to (raw `ReplicaGroupId`), if any.
    pub group: Option<u64>,
    /// Objects dispatched into the set.
    pub objects: u64,
    /// Payload bytes dispatched into the set.
    pub bytes: u64,
}

impl WireCatalogEntry {
    pub(crate) fn put(&self, w: &mut ByteWriter) {
        w.write_record(&self.name);
        self.scheme.put(w);
        // 0 marks "no group"; real group ids start at 1.
        w.write_record(&self.group.unwrap_or(0));
        w.write_record(&self.objects);
        w.write_record(&self.bytes);
    }

    pub(crate) fn get(r: &mut ByteReader<'_>) -> Result<Self> {
        let name = r.read_record()?;
        let scheme = SchemeSpec::get(r)?;
        let group: u64 = r.read_record()?;
        Ok(Self {
            name,
            scheme,
            group: (group != 0).then_some(group),
            objects: r.read_record()?,
            bytes: r.read_record()?,
        })
    }
}

/// A worker's liveness state at the manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Registered and heartbeating within the liveness timeout.
    Alive,
    /// Missed enough heartbeats to be declared dead (feeds recovery).
    Dead,
    /// Deregistered on clean shutdown.
    Left,
}

const STATE_ALIVE: u64 = 1;
const STATE_DEAD: u64 = 2;
const STATE_LEFT: u64 = 3;

/// One worker's membership record as served by `pangea-mgr`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireWorker {
    /// The node slot (raw `NodeId`).
    pub node: u32,
    /// The address the worker's `pangead` advertised at registration.
    pub addr: String,
    /// The slot's current registration epoch (raw `Epoch`).
    pub epoch: u64,
    /// Current liveness state.
    pub state: WorkerState,
}

impl WireWorker {
    pub(crate) fn put(&self, w: &mut ByteWriter) {
        w.write_record(&(self.node as u64));
        w.write_record(&self.addr);
        w.write_record(&self.epoch);
        w.write_record(&match self.state {
            WorkerState::Alive => STATE_ALIVE,
            WorkerState::Dead => STATE_DEAD,
            WorkerState::Left => STATE_LEFT,
        });
    }

    pub(crate) fn get(r: &mut ByteReader<'_>) -> Result<Self> {
        let node = r.read_record::<u64>()? as u32;
        let addr = r.read_record()?;
        let epoch = r.read_record()?;
        let state = match r.read_record::<u64>()? {
            STATE_ALIVE => WorkerState::Alive,
            STATE_DEAD => WorkerState::Dead,
            STATE_LEFT => WorkerState::Left,
            other => {
                return Err(PangeaError::Corruption(format!(
                    "unknown worker state {other}"
                )))
            }
        };
        Ok(Self {
            node,
            addr,
            epoch,
            state,
        })
    }
}

const METRIC_COUNTER: u64 = 1;
const METRIC_GAUGE: u64 = 2;
const METRIC_HISTOGRAM: u64 = 3;

/// One named metric in a `MetricsDump` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMetric {
    /// A monotonic counter.
    Counter {
        /// Registry name (e.g. `rpc.count.TaskRun`).
        name: String,
        /// Value at dump time.
        value: u64,
    },
    /// A last-write-wins gauge.
    Gauge {
        /// Registry name (e.g. `mgr.heartbeat_staleness_ms`).
        name: String,
        /// Value at dump time.
        value: u64,
    },
    /// A fixed log2-bucket histogram (see `pangea_obs::Histogram`).
    Histogram {
        /// Registry name (e.g. `rpc.latency_ns.TaskRun`).
        name: String,
        /// Observation count.
        count: u64,
        /// Sum of all observations.
        sum: u64,
        /// Per-bucket observation counts.
        buckets: Vec<u64>,
    },
}

impl WireMetric {
    /// This metric's registry name.
    pub fn name(&self) -> &str {
        match self {
            Self::Counter { name, .. }
            | Self::Gauge { name, .. }
            | Self::Histogram { name, .. } => name,
        }
    }

    pub(crate) fn put(&self, w: &mut ByteWriter) {
        match self {
            Self::Counter { name, value } => {
                w.write_record(&METRIC_COUNTER);
                w.write_record(name);
                w.write_record(value);
            }
            Self::Gauge { name, value } => {
                w.write_record(&METRIC_GAUGE);
                w.write_record(name);
                w.write_record(value);
            }
            Self::Histogram {
                name,
                count,
                sum,
                buckets,
            } => {
                w.write_record(&METRIC_HISTOGRAM);
                w.write_record(name);
                w.write_record(count);
                w.write_record(sum);
                w.write_record(&(buckets.len() as u64));
                for b in buckets {
                    w.write_record(b);
                }
            }
        }
    }

    pub(crate) fn get(r: &mut ByteReader<'_>) -> Result<Self> {
        let tag: u64 = r.read_record()?;
        Ok(match tag {
            METRIC_COUNTER => Self::Counter {
                name: r.read_record()?,
                value: r.read_record()?,
            },
            METRIC_GAUGE => Self::Gauge {
                name: r.read_record()?,
                value: r.read_record()?,
            },
            METRIC_HISTOGRAM => {
                let name = r.read_record()?;
                let count = r.read_record()?;
                let sum = r.read_record()?;
                let n: u64 = r.read_record()?;
                let mut buckets = Vec::with_capacity(n.min(1 << 10) as usize);
                for _ in 0..n {
                    buckets.push(r.read_record()?);
                }
                Self::Histogram {
                    name,
                    count,
                    sum,
                    buckets,
                }
            }
            other => {
                return Err(PangeaError::Corruption(format!(
                    "unknown wire-metric tag {other}"
                )))
            }
        })
    }
}

/// One retained span record in a `MetricsDump` reply (the wire form of
/// `pangea_obs::SpanRecord`, plus its ring sequence number for cursor
/// resumption).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSpan {
    /// Ring sequence number (strictly increasing per process).
    pub seq: u64,
    /// Job id this span belongs to.
    pub job: u64,
    /// This span's id.
    pub span: u64,
    /// The caller's span id, or 0 at the root.
    pub parent: u64,
    /// Operation name (request opcode or local label).
    pub op: String,
    /// The remote peer involved, when known.
    pub peer: String,
    /// Monotonic start, ns since the recording process's obs epoch.
    pub start_ns: u64,
    /// Monotonic end, ns since the recording process's obs epoch.
    pub end_ns: u64,
    /// Request payload bytes handled under this span.
    pub bytes: u64,
    /// `"ok"` or a short error description.
    pub outcome: String,
}

impl WireSpan {
    pub(crate) fn put(&self, w: &mut ByteWriter) {
        w.write_record(&self.seq);
        w.write_record(&self.job);
        w.write_record(&self.span);
        w.write_record(&self.parent);
        w.write_record(&self.op);
        w.write_record(&self.peer);
        w.write_record(&self.start_ns);
        w.write_record(&self.end_ns);
        w.write_record(&self.bytes);
        w.write_record(&self.outcome);
    }

    pub(crate) fn get(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(Self {
            seq: r.read_record()?,
            job: r.read_record()?,
            span: r.read_record()?,
            parent: r.read_record()?,
            op: r.read_record()?,
            peer: r.read_record()?,
            start_ns: r.read_record()?,
            end_ns: r.read_record()?,
            bytes: r.read_record()?,
            outcome: r.read_record()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_scheme(s: SchemeSpec) {
        let mut w = ByteWriter::new();
        s.put(&mut w);
        let mut r = ByteReader::new(w.as_bytes());
        assert_eq!(SchemeSpec::get(&mut r).unwrap(), s);
    }

    #[test]
    fn schemes_roundtrip() {
        roundtrip_scheme(SchemeSpec::RoundRobin { partitions: 8 });
        roundtrip_scheme(SchemeSpec::Hash {
            key_name: "l_orderkey".into(),
            partitions: 12,
            key: KeySpec::Field {
                delim: b'|',
                index: 3,
            },
        });
        roundtrip_scheme(SchemeSpec::Hash {
            key_name: "word".into(),
            partitions: 1,
            key: KeySpec::WholeRecord,
        });
    }

    #[test]
    fn catalog_entries_roundtrip_with_and_without_group() {
        for group in [None, Some(7u64)] {
            let e = WireCatalogEntry {
                name: "lineitem".into(),
                scheme: SchemeSpec::RoundRobin { partitions: 4 },
                group,
                objects: 123,
                bytes: 45678,
            };
            let mut w = ByteWriter::new();
            e.put(&mut w);
            let mut r = ByteReader::new(w.as_bytes());
            assert_eq!(WireCatalogEntry::get(&mut r).unwrap(), e);
        }
    }

    #[test]
    fn workers_roundtrip_every_state() {
        for state in [WorkerState::Alive, WorkerState::Dead, WorkerState::Left] {
            let wk = WireWorker {
                node: 3,
                addr: "10.0.0.3:7781".into(),
                epoch: 9,
                state,
            };
            let mut w = ByteWriter::new();
            wk.put(&mut w);
            let mut r = ByteReader::new(w.as_bytes());
            assert_eq!(WireWorker::get(&mut r).unwrap(), wk);
        }
    }

    #[test]
    fn key_specs_extract() {
        assert_eq!(KeySpec::WholeRecord.key_of(b"abc"), b"abc");
        let f = KeySpec::Field {
            delim: b'|',
            index: 1,
        };
        assert_eq!(f.key_of(b"a|bb|c"), b"bb");
        assert_eq!(f.key_of(b"a"), b"");
    }

    #[test]
    fn unknown_tags_are_corruption() {
        let mut w = ByteWriter::new();
        w.write_record(&99u64);
        let bytes = w.as_bytes().to_vec();
        assert!(SchemeSpec::get(&mut ByteReader::new(&bytes)).is_err());
        assert!(KeySpec::get(&mut ByteReader::new(&bytes)).is_err());
        assert!(RepairFilter::get(&mut ByteReader::new(&bytes)).is_err());
    }

    fn roundtrip_filter(f: RepairFilter) {
        let mut w = ByteWriter::new();
        f.put(&mut w);
        let mut r = ByteReader::new(w.as_bytes());
        assert_eq!(RepairFilter::get(&mut r).unwrap(), f);
    }

    #[test]
    fn repair_filters_roundtrip() {
        roundtrip_filter(RepairFilter::All);
        roundtrip_filter(RepairFilter::Lost {
            scheme: SchemeSpec::Hash {
                key_name: "uid".into(),
                partitions: 6,
                key: KeySpec::Field {
                    delim: b'|',
                    index: 0,
                },
            },
            failed: 1,
            nodes: 3,
        });
    }

    #[test]
    fn lost_filter_matches_hash_placement() {
        // `compile` must agree with the dispatcher's placement rule:
        // partition = hash(key) % partitions, node = partition % nodes.
        let key = KeySpec::Field {
            delim: b'|',
            index: 0,
        };
        let (partitions, nodes, failed) = (6u32, 3u32, 1u32);
        let keep = RepairFilter::Lost {
            scheme: SchemeSpec::Hash {
                key_name: "uid".into(),
                partitions,
                key,
            },
            failed,
            nodes,
        }
        .compile()
        .unwrap();
        let mut kept = 0;
        for i in 0..200u32 {
            let rec = format!("{i}|payload-{i}");
            let p = (fx_hash64(&key.key_of(rec.as_bytes())) % partitions as u64) as u32;
            assert_eq!(keep(rec.as_bytes()), p % nodes == failed, "record {rec}");
            kept += keep(rec.as_bytes()) as u32;
        }
        assert!(kept > 0, "some records must place on the failed slot");
    }

    fn roundtrip_map(m: MapSpec) {
        let mut w = ByteWriter::new();
        m.put(&mut w);
        let mut r = ByteReader::new(w.as_bytes());
        assert_eq!(MapSpec::get(&mut r).unwrap(), m);
    }

    #[test]
    fn map_specs_roundtrip_and_apply() {
        roundtrip_map(MapSpec::identity());
        roundtrip_map(MapSpec::extract(KeySpec::Field {
            delim: b'|',
            index: 2,
        }));
        roundtrip_map(
            MapSpec::project(b'|', vec![1, 0, 3]).with_filter(FilterSpec::KeyEquals {
                key: KeySpec::Field {
                    delim: b'|',
                    index: 0,
                },
                value: b"7".to_vec(),
            }),
        );
        roundtrip_map(MapSpec::identity().with_filter(FilterSpec::KeyPresent {
            key: KeySpec::Field {
                delim: b'|',
                index: 1,
            },
        }));

        assert_eq!(MapSpec::identity().apply(b"a|b"), Some(b"a|b".to_vec()));
        let extract = MapSpec::extract(KeySpec::Field {
            delim: b'|',
            index: 1,
        });
        assert_eq!(extract.apply(b"a|bb|c"), Some(b"bb".to_vec()));
        let project = MapSpec::project(b'|', vec![2, 0]);
        assert_eq!(project.apply(b"a|bb|ccc"), Some(b"ccc|a".to_vec()));
        assert_eq!(project.apply(b"a"), Some(b"|a".to_vec()), "missing = empty");
        let filtered = MapSpec::identity().with_filter(FilterSpec::KeyEquals {
            key: KeySpec::Field {
                delim: b'|',
                index: 0,
            },
            value: b"keep".to_vec(),
        });
        assert_eq!(filtered.apply(b"keep|x"), Some(b"keep|x".to_vec()));
        assert_eq!(filtered.apply(b"drop|x"), None);
        let present = MapSpec::identity().with_filter(FilterSpec::KeyPresent {
            key: KeySpec::Field {
                delim: b'|',
                index: 1,
            },
        });
        assert_eq!(present.apply(b"a|b"), Some(b"a|b".to_vec()));
        assert_eq!(present.apply(b"a"), None);
    }

    #[test]
    fn task_specs_roundtrip() {
        let spec = TaskSpec {
            input: "lines".into(),
            output: "words".into(),
            map: MapSpec::extract(KeySpec::Field {
                delim: b'|',
                index: 1,
            }),
            reduce: Some(ReduceSpec::count(KeySpec::WholeRecord, b'|')),
            scheme: SchemeSpec::Hash {
                key_name: "word".into(),
                partitions: 8,
                key: KeySpec::WholeRecord,
            },
            nodes: 4,
            source: 2,
            dests: vec![
                (0, "127.0.0.1:7781".into()),
                (1, "127.0.0.1:7782".into()),
                (3, "127.0.0.1:7784".into()),
            ],
            window: 8,
        };
        let mut w = ByteWriter::new();
        spec.put(&mut w);
        let mut r = ByteReader::new(w.as_bytes());
        assert_eq!(TaskSpec::get(&mut r).unwrap(), spec);
        // Unknown filter/emit tags decode to corruption, like every spec.
        let mut w = ByteWriter::new();
        w.write_record(&99u64);
        let bytes = w.as_bytes().to_vec();
        assert!(FilterSpec::get(&mut ByteReader::new(&bytes)).is_err());
        assert!(EmitSpec::get(&mut ByteReader::new(&bytes)).is_err());
    }

    #[test]
    fn scheme_spec_routing_matches_placement_rule() {
        let scheme = SchemeSpec::Hash {
            key_name: "k".into(),
            partitions: 6,
            key: KeySpec::Field {
                delim: b'|',
                index: 0,
            },
        };
        for i in 0..100u32 {
            let rec = format!("{i}|payload");
            let p = (fx_hash64(rec.split('|').next().unwrap().as_bytes()) % 6) as u32;
            assert_eq!(scheme.partition_of(rec.as_bytes(), i as u64), p);
            assert_eq!(scheme.node_of(rec.as_bytes(), 0, 4), p % 4);
        }
        let rr = SchemeSpec::RoundRobin { partitions: 3 };
        assert_eq!(rr.partition_of(b"x", 0), 0);
        assert_eq!(rr.partition_of(b"x", 4), 1);
        assert_eq!(rr.node_of(b"x", 5, 2), 0);
    }

    #[test]
    fn ingest_tags_separate_provenance_not_content() {
        // Identical bytes from different sources/ordinals keep distinct
        // tags (honest duplicates survive); identical provenance dedups.
        let a = ingest_tag(0, 7, b"the");
        assert_eq!(a, ingest_tag(0, 7, b"the"), "retries produce equal tags");
        assert_ne!(a, ingest_tag(1, 7, b"the"));
        assert_ne!(a, ingest_tag(0, 8, b"the"));
        assert_ne!(a, ingest_tag(0, 7, b"fox"));
    }

    #[test]
    fn all_filter_keeps_everything_and_rr_lost_is_rejected() {
        let keep = RepairFilter::All.compile().unwrap();
        assert!(keep(b"") && keep(b"anything"));
        assert!(RepairFilter::Lost {
            scheme: SchemeSpec::RoundRobin { partitions: 4 },
            failed: 0,
            nodes: 4,
        }
        .compile()
        .is_err());
    }

    #[test]
    fn absent_filter_roundtrips_and_refuses_standalone_compile() {
        roundtrip_filter(RepairFilter::Absent);
        // The predicate needs the replacement's ledger; compiling it
        // without one is API misuse, not a silent keep-all.
        assert!(RepairFilter::Absent.compile().is_err());
    }

    #[test]
    fn zero_partition_schemes_are_rejected_at_decode() {
        for spec in [
            SchemeSpec::RoundRobin { partitions: 0 },
            SchemeSpec::Hash {
                key_name: "k".into(),
                partitions: 0,
                key: KeySpec::WholeRecord,
            },
        ] {
            let mut w = ByteWriter::new();
            spec.put(&mut w);
            match SchemeSpec::get(&mut ByteReader::new(w.as_bytes())) {
                Err(PangeaError::Corruption(m)) => assert!(m.contains("zero"), "{m}"),
                other => panic!("zero partitions must not decode: {other:?}"),
            }
        }
    }

    #[test]
    fn tokens_flat_map_emits_every_nonempty_token() {
        let map = MapSpec::tokenize(b' ');
        let mut out = Vec::new();
        map.for_each_emit(b"the  quick fox ", &mut |t| {
            out.push(t.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(
            out,
            vec![b"the".to_vec(), b"quick".to_vec(), b"fox".to_vec()]
        );
        // Filter composes in front of the tokenization.
        let filtered = MapSpec::tokenize(b' ').with_filter(FilterSpec::KeyPresent {
            key: KeySpec::WholeRecord,
        });
        let mut n = 0;
        filtered
            .for_each_emit(b"", &mut |_| {
                n += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(n, 0, "an empty record is filtered before tokenizing");
        // The wire form survives the trip like every emit spec.
        roundtrip_map(MapSpec::tokenize(b','));
    }

    #[test]
    fn numeric_filters_compare_and_drop_unparsable_keys() {
        let key = KeySpec::Field {
            delim: b'|',
            index: 1,
        };
        let over = FilterSpec::KeyCompare {
            key,
            cmp: CmpOp::Gt,
            value: 10,
        };
        assert!(over.keeps(b"a|11"));
        assert!(!over.keeps(b"a|10"));
        assert!(!over.keeps(b"a|not-a-number"), "unparsable drops");
        assert!(!over.keeps(b"a"), "missing field drops");
        let negative = FilterSpec::KeyCompare {
            key,
            cmp: CmpOp::Le,
            value: -3,
        };
        assert!(negative.keeps(b"x|-4"));
        assert!(!negative.keeps(b"x|-2"));
        for cmp in [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Eq,
            CmpOp::Ne,
        ] {
            roundtrip_map(MapSpec::identity().with_filter(FilterSpec::KeyCompare {
                key,
                cmp,
                value: -42,
            }));
        }
    }

    #[test]
    fn reduce_specs_roundtrip_fold_and_encode() {
        let count = ReduceSpec::count(KeySpec::WholeRecord, b'|');
        for spec in [
            count.clone(),
            ReduceSpec::sum(
                KeySpec::Field {
                    delim: b'|',
                    index: 0,
                },
                b'|',
                1,
            ),
            ReduceSpec::min(KeySpec::WholeRecord, b',', 2),
            ReduceSpec::max(KeySpec::WholeRecord, b'\t', 3),
        ] {
            let mut w = ByteWriter::new();
            spec.put(&mut w);
            let mut r = ByteReader::new(w.as_bytes());
            assert_eq!(ReduceSpec::get(&mut r).unwrap(), spec);
        }

        // Count: every mapped record is worth 1; merge is addition.
        assert_eq!(count.accumulate(b"the"), Some((b"the".to_vec(), 1)));
        assert_eq!(count.merge(2, 3), 5);
        // Sum/min/max parse the value field; unparsable drops.
        let sum = ReduceSpec::sum(
            KeySpec::Field {
                delim: b'|',
                index: 0,
            },
            b'|',
            1,
        );
        assert_eq!(sum.accumulate(b"k|7"), Some((b"k".to_vec(), 7)));
        assert_eq!(sum.accumulate(b"k|x"), None);
        assert_eq!(sum.accumulate(b"k"), None);
        let min = ReduceSpec::min(KeySpec::WholeRecord, b'|', 1);
        assert_eq!(min.merge(4, -2), -2);
        let max = ReduceSpec::max(KeySpec::WholeRecord, b'|', 1);
        assert_eq!(max.merge(4, -2), 4);

        // Partials encode as key|value and decode at the *last* delim,
        // so a key containing the delimiter survives the trip.
        let enc = count.encode_record(b"a|b", -17);
        assert_eq!(enc, b"a|b|-17".to_vec());
        assert_eq!(count.decode_record(&enc).unwrap(), (&b"a|b"[..], -17));
        assert!(count.decode_record(b"no-delim").is_err());
        assert!(count.decode_record(b"k|nan").is_err());
    }

    #[test]
    fn wire_metrics_roundtrip_and_reject_unknown_tags() {
        let metrics = [
            WireMetric::Counter {
                name: "rpc.count.Scan".into(),
                value: u64::MAX,
            },
            WireMetric::Gauge {
                name: "mgr.heartbeat_staleness_ms".into(),
                value: 17,
            },
            WireMetric::Histogram {
                name: "rpc.latency_ns.Scan".into(),
                count: 2,
                sum: 3000,
                buckets: vec![0; 64],
            },
        ];
        for m in &metrics {
            let mut w = ByteWriter::new();
            m.put(&mut w);
            let mut r = ByteReader::new(w.as_bytes());
            assert_eq!(&WireMetric::get(&mut r).unwrap(), m);
            assert!(r.is_exhausted());
        }
        let mut w = ByteWriter::new();
        w.write_record(&99u64);
        w.write_record(&"bogus".to_string());
        assert!(matches!(
            WireMetric::get(&mut ByteReader::new(w.as_bytes())),
            Err(PangeaError::Corruption(_))
        ));
    }

    #[test]
    fn wire_spans_roundtrip() {
        let span = WireSpan {
            seq: 3,
            job: (1 << 32) | 9,
            span: 5,
            parent: 4,
            op: "IngestAppend".into(),
            peer: "127.0.0.1:7782".into(),
            start_ns: 1_000,
            end_ns: 2_500,
            bytes: 4096,
            outcome: "node3 is unavailable".into(),
        };
        let mut w = ByteWriter::new();
        span.put(&mut w);
        let mut r = ByteReader::new(w.as_bytes());
        assert_eq!(WireSpan::get(&mut r).unwrap(), span);
        assert!(r.is_exhausted());
        // Truncation anywhere inside is a hard error, never a panic.
        let enc = w.into_bytes();
        for cut in 0..enc.len() {
            assert!(WireSpan::get(&mut ByteReader::new(&enc[..cut])).is_err());
        }
    }
}
