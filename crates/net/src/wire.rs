//! Wire representations of control-plane state: partitioning schemes,
//! catalog entries, and cluster membership.
//!
//! The in-process catalog (`pangea-cluster`'s `Manager`) stores a
//! `PartitionScheme` whose key extractor is an arbitrary closure — a UDF
//! in the paper's terms. UDFs do not cross the wire; what does is a
//! *declarative* [`KeySpec`] (whole record, or a delimited field), which
//! every peer can re-materialize into the same extractor. Schemes built
//! from opaque closures therefore cannot be registered in a wire-served
//! catalog; `pangea-cluster` offers `hash_field`/`hash_whole`
//! constructors that carry their spec.
//!
//! Encoding follows the [`crate::proto`] conventions: every field is a
//! length-prefixed record in a `ByteWriter` stream, integers travel as
//! `u64`, and unknown discriminants decode to [`PangeaError::Corruption`].

use pangea_common::{fx_hash64, ByteReader, ByteWriter, PangeaError, Result};

/// A declarative, wire-safe key extractor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySpec {
    /// The whole record is the key.
    WholeRecord,
    /// Field `index` (0-based) after splitting the record on `delim`;
    /// records with fewer fields key on the empty string.
    Field {
        /// The single-byte field delimiter (e.g. `b'|'`).
        delim: u8,
        /// 0-based field index.
        index: u32,
    },
}

const KEY_WHOLE: u64 = 1;
const KEY_FIELD: u64 = 2;

impl KeySpec {
    pub(crate) fn put(&self, w: &mut ByteWriter) {
        match self {
            Self::WholeRecord => w.write_record(&KEY_WHOLE),
            Self::Field { delim, index } => {
                w.write_record(&KEY_FIELD);
                w.write_record(&(*delim as u64));
                w.write_record(&(*index as u64));
            }
        }
    }

    pub(crate) fn get(r: &mut ByteReader<'_>) -> Result<Self> {
        let tag: u64 = r.read_record()?;
        Ok(match tag {
            KEY_WHOLE => Self::WholeRecord,
            KEY_FIELD => Self::Field {
                delim: r.read_record::<u64>()? as u8,
                index: r.read_record::<u64>()? as u32,
            },
            other => {
                return Err(PangeaError::Corruption(format!(
                    "unknown key-spec tag {other}"
                )))
            }
        })
    }

    /// Extracts this spec's key from a record's bytes.
    pub fn key_of(&self, record: &[u8]) -> Vec<u8> {
        match *self {
            Self::WholeRecord => record.to_vec(),
            Self::Field { delim, index } => record
                .split(|&b| b == delim)
                .nth(index as usize)
                .unwrap_or_default()
                .to_vec(),
        }
    }
}

/// A partitioning scheme in wire form (the serializable subset of
/// `pangea-cluster`'s `PartitionScheme`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemeSpec {
    /// `hash(key) % partitions`, keyed by a declarative [`KeySpec`].
    Hash {
        /// The key the scheme organizes by (`l_orderkey`, …).
        key_name: String,
        /// Number of partitions.
        partitions: u32,
        /// How the key is extracted.
        key: KeySpec,
    },
    /// Records round-robin over partitions.
    RoundRobin {
        /// Number of partitions.
        partitions: u32,
    },
}

const SCHEME_HASH: u64 = 1;
const SCHEME_RR: u64 = 2;

impl SchemeSpec {
    pub(crate) fn put(&self, w: &mut ByteWriter) {
        match self {
            Self::Hash {
                key_name,
                partitions,
                key,
            } => {
                w.write_record(&SCHEME_HASH);
                w.write_record(key_name);
                w.write_record(&(*partitions as u64));
                key.put(w);
            }
            Self::RoundRobin { partitions } => {
                w.write_record(&SCHEME_RR);
                w.write_record(&(*partitions as u64));
            }
        }
    }

    pub(crate) fn get(r: &mut ByteReader<'_>) -> Result<Self> {
        let tag: u64 = r.read_record()?;
        Ok(match tag {
            SCHEME_HASH => Self::Hash {
                key_name: r.read_record()?,
                partitions: r.read_record::<u64>()? as u32,
                key: KeySpec::get(r)?,
            },
            SCHEME_RR => Self::RoundRobin {
                partitions: r.read_record::<u64>()? as u32,
            },
            other => {
                return Err(PangeaError::Corruption(format!(
                    "unknown scheme tag {other}"
                )))
            }
        })
    }
}

/// How a survivor selects which of its local records to ship during a
/// worker→worker repair push (`Request::RecoverPush`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairFilter {
    /// Ship only records whose placement under `scheme` across `nodes`
    /// slots is the `failed` slot — the lost share of a hash-partitioned
    /// replica, recomputable on any peer from the declarative scheme.
    Lost {
        /// The recovery target's partitioning scheme (must be `Hash`:
        /// round-robin placement is ordinal-based and cannot be
        /// recomputed per record).
        scheme: SchemeSpec,
        /// The failed node slot (raw `NodeId`).
        failed: u32,
        /// Fleet width the scheme stripes over.
        nodes: u32,
    },
    /// Ship every record; the replacement's repair session filters out
    /// what the surviving share already holds (round-robin targets,
    /// whose lost share is defined by absence, not by placement).
    All,
}

const FILTER_LOST: u64 = 1;
const FILTER_ALL: u64 = 2;

impl RepairFilter {
    pub(crate) fn put(&self, w: &mut ByteWriter) {
        match self {
            Self::Lost {
                scheme,
                failed,
                nodes,
            } => {
                w.write_record(&FILTER_LOST);
                scheme.put(w);
                w.write_record(&(*failed as u64));
                w.write_record(&(*nodes as u64));
            }
            Self::All => w.write_record(&FILTER_ALL),
        }
    }

    pub(crate) fn get(r: &mut ByteReader<'_>) -> Result<Self> {
        let tag: u64 = r.read_record()?;
        Ok(match tag {
            FILTER_LOST => Self::Lost {
                scheme: SchemeSpec::get(r)?,
                failed: r.read_record::<u64>()? as u32,
                nodes: r.read_record::<u64>()? as u32,
            },
            FILTER_ALL => Self::All,
            other => {
                return Err(PangeaError::Corruption(format!(
                    "unknown repair-filter tag {other}"
                )))
            }
        })
    }

    /// Compiles the filter into a per-record predicate: `true` means the
    /// record must be shipped. Mirrors `PartitionScheme::node_of` exactly
    /// (`hash(key) % partitions`, partitions striping over nodes), so a
    /// survivor's local decision matches the placement the dispatcher
    /// used. Fails on a `Lost` filter over a round-robin scheme.
    pub fn compile(&self) -> Result<Box<dyn Fn(&[u8]) -> bool + Send + Sync>> {
        match self {
            Self::All => Ok(Box::new(|_| true)),
            Self::Lost {
                scheme,
                failed,
                nodes,
            } => match scheme {
                SchemeSpec::RoundRobin { .. } => Err(PangeaError::usage(
                    "round-robin placement is ordinal-based and cannot back a \
                     Lost repair filter; use RepairFilter::All",
                )),
                SchemeSpec::Hash {
                    partitions, key, ..
                } => {
                    let key = *key;
                    let partitions = (*partitions).max(1) as u64;
                    let (failed, nodes) = (*failed, (*nodes).max(1));
                    Ok(Box::new(move |rec: &[u8]| {
                        let p = (fx_hash64(&key.key_of(rec)) % partitions) as u32;
                        p % nodes == failed
                    }))
                }
            },
        }
    }
}

/// Outcome of one survivor→replacement repair push, as acknowledged over
/// the wire (`Response::Pushed`) and aggregated by the recovery engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairPushReport {
    /// Records the survivor scanned in its local source share.
    pub scanned: u64,
    /// Records that passed the filter and were shipped to the target.
    pub pushed: u64,
    /// Payload bytes shipped worker→worker.
    pub pushed_bytes: u64,
    /// Records the target actually appended (post-dedup).
    pub appended: u64,
    /// Payload bytes the target actually appended.
    pub appended_bytes: u64,
}

impl RepairPushReport {
    /// Component-wise sum with another report.
    pub fn merge(&mut self, other: &RepairPushReport) {
        self.scanned += other.scanned;
        self.pushed += other.pushed;
        self.pushed_bytes += other.pushed_bytes;
        self.appended += other.appended;
        self.appended_bytes += other.appended_bytes;
    }
}

/// One catalog entry as served by `pangea-mgr`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireCatalogEntry {
    /// The set's cluster-wide name.
    pub name: String,
    /// Its partitioning scheme.
    pub scheme: SchemeSpec,
    /// The replica group it belongs to (raw `ReplicaGroupId`), if any.
    pub group: Option<u64>,
    /// Objects dispatched into the set.
    pub objects: u64,
    /// Payload bytes dispatched into the set.
    pub bytes: u64,
}

impl WireCatalogEntry {
    pub(crate) fn put(&self, w: &mut ByteWriter) {
        w.write_record(&self.name);
        self.scheme.put(w);
        // 0 marks "no group"; real group ids start at 1.
        w.write_record(&self.group.unwrap_or(0));
        w.write_record(&self.objects);
        w.write_record(&self.bytes);
    }

    pub(crate) fn get(r: &mut ByteReader<'_>) -> Result<Self> {
        let name = r.read_record()?;
        let scheme = SchemeSpec::get(r)?;
        let group: u64 = r.read_record()?;
        Ok(Self {
            name,
            scheme,
            group: (group != 0).then_some(group),
            objects: r.read_record()?,
            bytes: r.read_record()?,
        })
    }
}

/// A worker's liveness state at the manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Registered and heartbeating within the liveness timeout.
    Alive,
    /// Missed enough heartbeats to be declared dead (feeds recovery).
    Dead,
    /// Deregistered on clean shutdown.
    Left,
}

const STATE_ALIVE: u64 = 1;
const STATE_DEAD: u64 = 2;
const STATE_LEFT: u64 = 3;

/// One worker's membership record as served by `pangea-mgr`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireWorker {
    /// The node slot (raw `NodeId`).
    pub node: u32,
    /// The address the worker's `pangead` advertised at registration.
    pub addr: String,
    /// The slot's current registration epoch (raw `Epoch`).
    pub epoch: u64,
    /// Current liveness state.
    pub state: WorkerState,
}

impl WireWorker {
    pub(crate) fn put(&self, w: &mut ByteWriter) {
        w.write_record(&(self.node as u64));
        w.write_record(&self.addr);
        w.write_record(&self.epoch);
        w.write_record(&match self.state {
            WorkerState::Alive => STATE_ALIVE,
            WorkerState::Dead => STATE_DEAD,
            WorkerState::Left => STATE_LEFT,
        });
    }

    pub(crate) fn get(r: &mut ByteReader<'_>) -> Result<Self> {
        let node = r.read_record::<u64>()? as u32;
        let addr = r.read_record()?;
        let epoch = r.read_record()?;
        let state = match r.read_record::<u64>()? {
            STATE_ALIVE => WorkerState::Alive,
            STATE_DEAD => WorkerState::Dead,
            STATE_LEFT => WorkerState::Left,
            other => {
                return Err(PangeaError::Corruption(format!(
                    "unknown worker state {other}"
                )))
            }
        };
        Ok(Self {
            node,
            addr,
            epoch,
            state,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_scheme(s: SchemeSpec) {
        let mut w = ByteWriter::new();
        s.put(&mut w);
        let mut r = ByteReader::new(w.as_bytes());
        assert_eq!(SchemeSpec::get(&mut r).unwrap(), s);
    }

    #[test]
    fn schemes_roundtrip() {
        roundtrip_scheme(SchemeSpec::RoundRobin { partitions: 8 });
        roundtrip_scheme(SchemeSpec::Hash {
            key_name: "l_orderkey".into(),
            partitions: 12,
            key: KeySpec::Field {
                delim: b'|',
                index: 3,
            },
        });
        roundtrip_scheme(SchemeSpec::Hash {
            key_name: "word".into(),
            partitions: 1,
            key: KeySpec::WholeRecord,
        });
    }

    #[test]
    fn catalog_entries_roundtrip_with_and_without_group() {
        for group in [None, Some(7u64)] {
            let e = WireCatalogEntry {
                name: "lineitem".into(),
                scheme: SchemeSpec::RoundRobin { partitions: 4 },
                group,
                objects: 123,
                bytes: 45678,
            };
            let mut w = ByteWriter::new();
            e.put(&mut w);
            let mut r = ByteReader::new(w.as_bytes());
            assert_eq!(WireCatalogEntry::get(&mut r).unwrap(), e);
        }
    }

    #[test]
    fn workers_roundtrip_every_state() {
        for state in [WorkerState::Alive, WorkerState::Dead, WorkerState::Left] {
            let wk = WireWorker {
                node: 3,
                addr: "10.0.0.3:7781".into(),
                epoch: 9,
                state,
            };
            let mut w = ByteWriter::new();
            wk.put(&mut w);
            let mut r = ByteReader::new(w.as_bytes());
            assert_eq!(WireWorker::get(&mut r).unwrap(), wk);
        }
    }

    #[test]
    fn key_specs_extract() {
        assert_eq!(KeySpec::WholeRecord.key_of(b"abc"), b"abc");
        let f = KeySpec::Field {
            delim: b'|',
            index: 1,
        };
        assert_eq!(f.key_of(b"a|bb|c"), b"bb");
        assert_eq!(f.key_of(b"a"), b"");
    }

    #[test]
    fn unknown_tags_are_corruption() {
        let mut w = ByteWriter::new();
        w.write_record(&99u64);
        let bytes = w.as_bytes().to_vec();
        assert!(SchemeSpec::get(&mut ByteReader::new(&bytes)).is_err());
        assert!(KeySpec::get(&mut ByteReader::new(&bytes)).is_err());
        assert!(RepairFilter::get(&mut ByteReader::new(&bytes)).is_err());
    }

    fn roundtrip_filter(f: RepairFilter) {
        let mut w = ByteWriter::new();
        f.put(&mut w);
        let mut r = ByteReader::new(w.as_bytes());
        assert_eq!(RepairFilter::get(&mut r).unwrap(), f);
    }

    #[test]
    fn repair_filters_roundtrip() {
        roundtrip_filter(RepairFilter::All);
        roundtrip_filter(RepairFilter::Lost {
            scheme: SchemeSpec::Hash {
                key_name: "uid".into(),
                partitions: 6,
                key: KeySpec::Field {
                    delim: b'|',
                    index: 0,
                },
            },
            failed: 1,
            nodes: 3,
        });
    }

    #[test]
    fn lost_filter_matches_hash_placement() {
        // `compile` must agree with the dispatcher's placement rule:
        // partition = hash(key) % partitions, node = partition % nodes.
        let key = KeySpec::Field {
            delim: b'|',
            index: 0,
        };
        let (partitions, nodes, failed) = (6u32, 3u32, 1u32);
        let keep = RepairFilter::Lost {
            scheme: SchemeSpec::Hash {
                key_name: "uid".into(),
                partitions,
                key,
            },
            failed,
            nodes,
        }
        .compile()
        .unwrap();
        let mut kept = 0;
        for i in 0..200u32 {
            let rec = format!("{i}|payload-{i}");
            let p = (fx_hash64(&key.key_of(rec.as_bytes())) % partitions as u64) as u32;
            assert_eq!(keep(rec.as_bytes()), p % nodes == failed, "record {rec}");
            kept += keep(rec.as_bytes()) as u32;
        }
        assert!(kept > 0, "some records must place on the failed slot");
    }

    #[test]
    fn all_filter_keeps_everything_and_rr_lost_is_rejected() {
        let keep = RepairFilter::All.compile().unwrap();
        assert!(keep(b"") && keep(b"anything"));
        assert!(RepairFilter::Lost {
            scheme: SchemeSpec::RoundRobin { partitions: 4 },
            failed: 0,
            nodes: 4,
        }
        .compile()
        .is_err());
    }
}
