//! Wire representations of control-plane state: partitioning schemes,
//! catalog entries, and cluster membership.
//!
//! The in-process catalog (`pangea-cluster`'s `Manager`) stores a
//! `PartitionScheme` whose key extractor is an arbitrary closure — a UDF
//! in the paper's terms. UDFs do not cross the wire; what does is a
//! *declarative* [`KeySpec`] (whole record, or a delimited field), which
//! every peer can re-materialize into the same extractor. Schemes built
//! from opaque closures therefore cannot be registered in a wire-served
//! catalog; `pangea-cluster` offers `hash_field`/`hash_whole`
//! constructors that carry their spec.
//!
//! Encoding follows the [`crate::proto`] conventions: every field is a
//! length-prefixed record in a `ByteWriter` stream, integers travel as
//! `u64`, and unknown discriminants decode to [`PangeaError::Corruption`].

use pangea_common::{ByteReader, ByteWriter, PangeaError, Result};

/// A declarative, wire-safe key extractor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySpec {
    /// The whole record is the key.
    WholeRecord,
    /// Field `index` (0-based) after splitting the record on `delim`;
    /// records with fewer fields key on the empty string.
    Field {
        /// The single-byte field delimiter (e.g. `b'|'`).
        delim: u8,
        /// 0-based field index.
        index: u32,
    },
}

const KEY_WHOLE: u64 = 1;
const KEY_FIELD: u64 = 2;

impl KeySpec {
    pub(crate) fn put(&self, w: &mut ByteWriter) {
        match self {
            Self::WholeRecord => w.write_record(&KEY_WHOLE),
            Self::Field { delim, index } => {
                w.write_record(&KEY_FIELD);
                w.write_record(&(*delim as u64));
                w.write_record(&(*index as u64));
            }
        }
    }

    pub(crate) fn get(r: &mut ByteReader<'_>) -> Result<Self> {
        let tag: u64 = r.read_record()?;
        Ok(match tag {
            KEY_WHOLE => Self::WholeRecord,
            KEY_FIELD => Self::Field {
                delim: r.read_record::<u64>()? as u8,
                index: r.read_record::<u64>()? as u32,
            },
            other => {
                return Err(PangeaError::Corruption(format!(
                    "unknown key-spec tag {other}"
                )))
            }
        })
    }

    /// Extracts this spec's key from a record's bytes.
    pub fn key_of(&self, record: &[u8]) -> Vec<u8> {
        match *self {
            Self::WholeRecord => record.to_vec(),
            Self::Field { delim, index } => record
                .split(|&b| b == delim)
                .nth(index as usize)
                .unwrap_or_default()
                .to_vec(),
        }
    }
}

/// A partitioning scheme in wire form (the serializable subset of
/// `pangea-cluster`'s `PartitionScheme`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemeSpec {
    /// `hash(key) % partitions`, keyed by a declarative [`KeySpec`].
    Hash {
        /// The key the scheme organizes by (`l_orderkey`, …).
        key_name: String,
        /// Number of partitions.
        partitions: u32,
        /// How the key is extracted.
        key: KeySpec,
    },
    /// Records round-robin over partitions.
    RoundRobin {
        /// Number of partitions.
        partitions: u32,
    },
}

const SCHEME_HASH: u64 = 1;
const SCHEME_RR: u64 = 2;

impl SchemeSpec {
    pub(crate) fn put(&self, w: &mut ByteWriter) {
        match self {
            Self::Hash {
                key_name,
                partitions,
                key,
            } => {
                w.write_record(&SCHEME_HASH);
                w.write_record(key_name);
                w.write_record(&(*partitions as u64));
                key.put(w);
            }
            Self::RoundRobin { partitions } => {
                w.write_record(&SCHEME_RR);
                w.write_record(&(*partitions as u64));
            }
        }
    }

    pub(crate) fn get(r: &mut ByteReader<'_>) -> Result<Self> {
        let tag: u64 = r.read_record()?;
        Ok(match tag {
            SCHEME_HASH => Self::Hash {
                key_name: r.read_record()?,
                partitions: r.read_record::<u64>()? as u32,
                key: KeySpec::get(r)?,
            },
            SCHEME_RR => Self::RoundRobin {
                partitions: r.read_record::<u64>()? as u32,
            },
            other => {
                return Err(PangeaError::Corruption(format!(
                    "unknown scheme tag {other}"
                )))
            }
        })
    }
}

/// One catalog entry as served by `pangea-mgr`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireCatalogEntry {
    /// The set's cluster-wide name.
    pub name: String,
    /// Its partitioning scheme.
    pub scheme: SchemeSpec,
    /// The replica group it belongs to (raw `ReplicaGroupId`), if any.
    pub group: Option<u64>,
    /// Objects dispatched into the set.
    pub objects: u64,
    /// Payload bytes dispatched into the set.
    pub bytes: u64,
}

impl WireCatalogEntry {
    pub(crate) fn put(&self, w: &mut ByteWriter) {
        w.write_record(&self.name);
        self.scheme.put(w);
        // 0 marks "no group"; real group ids start at 1.
        w.write_record(&self.group.unwrap_or(0));
        w.write_record(&self.objects);
        w.write_record(&self.bytes);
    }

    pub(crate) fn get(r: &mut ByteReader<'_>) -> Result<Self> {
        let name = r.read_record()?;
        let scheme = SchemeSpec::get(r)?;
        let group: u64 = r.read_record()?;
        Ok(Self {
            name,
            scheme,
            group: (group != 0).then_some(group),
            objects: r.read_record()?,
            bytes: r.read_record()?,
        })
    }
}

/// A worker's liveness state at the manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Registered and heartbeating within the liveness timeout.
    Alive,
    /// Missed enough heartbeats to be declared dead (feeds recovery).
    Dead,
    /// Deregistered on clean shutdown.
    Left,
}

const STATE_ALIVE: u64 = 1;
const STATE_DEAD: u64 = 2;
const STATE_LEFT: u64 = 3;

/// One worker's membership record as served by `pangea-mgr`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireWorker {
    /// The node slot (raw `NodeId`).
    pub node: u32,
    /// The address the worker's `pangead` advertised at registration.
    pub addr: String,
    /// The slot's current registration epoch (raw `Epoch`).
    pub epoch: u64,
    /// Current liveness state.
    pub state: WorkerState,
}

impl WireWorker {
    pub(crate) fn put(&self, w: &mut ByteWriter) {
        w.write_record(&(self.node as u64));
        w.write_record(&self.addr);
        w.write_record(&self.epoch);
        w.write_record(&match self.state {
            WorkerState::Alive => STATE_ALIVE,
            WorkerState::Dead => STATE_DEAD,
            WorkerState::Left => STATE_LEFT,
        });
    }

    pub(crate) fn get(r: &mut ByteReader<'_>) -> Result<Self> {
        let node = r.read_record::<u64>()? as u32;
        let addr = r.read_record()?;
        let epoch = r.read_record()?;
        let state = match r.read_record::<u64>()? {
            STATE_ALIVE => WorkerState::Alive,
            STATE_DEAD => WorkerState::Dead,
            STATE_LEFT => WorkerState::Left,
            other => {
                return Err(PangeaError::Corruption(format!(
                    "unknown worker state {other}"
                )))
            }
        };
        Ok(Self {
            node,
            addr,
            epoch,
            state,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_scheme(s: SchemeSpec) {
        let mut w = ByteWriter::new();
        s.put(&mut w);
        let mut r = ByteReader::new(w.as_bytes());
        assert_eq!(SchemeSpec::get(&mut r).unwrap(), s);
    }

    #[test]
    fn schemes_roundtrip() {
        roundtrip_scheme(SchemeSpec::RoundRobin { partitions: 8 });
        roundtrip_scheme(SchemeSpec::Hash {
            key_name: "l_orderkey".into(),
            partitions: 12,
            key: KeySpec::Field {
                delim: b'|',
                index: 3,
            },
        });
        roundtrip_scheme(SchemeSpec::Hash {
            key_name: "word".into(),
            partitions: 1,
            key: KeySpec::WholeRecord,
        });
    }

    #[test]
    fn catalog_entries_roundtrip_with_and_without_group() {
        for group in [None, Some(7u64)] {
            let e = WireCatalogEntry {
                name: "lineitem".into(),
                scheme: SchemeSpec::RoundRobin { partitions: 4 },
                group,
                objects: 123,
                bytes: 45678,
            };
            let mut w = ByteWriter::new();
            e.put(&mut w);
            let mut r = ByteReader::new(w.as_bytes());
            assert_eq!(WireCatalogEntry::get(&mut r).unwrap(), e);
        }
    }

    #[test]
    fn workers_roundtrip_every_state() {
        for state in [WorkerState::Alive, WorkerState::Dead, WorkerState::Left] {
            let wk = WireWorker {
                node: 3,
                addr: "10.0.0.3:7781".into(),
                epoch: 9,
                state,
            };
            let mut w = ByteWriter::new();
            wk.put(&mut w);
            let mut r = ByteReader::new(w.as_bytes());
            assert_eq!(WireWorker::get(&mut r).unwrap(), wk);
        }
    }

    #[test]
    fn key_specs_extract() {
        assert_eq!(KeySpec::WholeRecord.key_of(b"abc"), b"abc");
        let f = KeySpec::Field {
            delim: b'|',
            index: 1,
        };
        assert_eq!(f.key_of(b"a|bb|c"), b"bb");
        assert_eq!(f.key_of(b"a"), b"");
    }

    #[test]
    fn unknown_tags_are_corruption() {
        let mut w = ByteWriter::new();
        w.write_record(&99u64);
        let bytes = w.as_bytes().to_vec();
        assert!(SchemeSpec::get(&mut ByteReader::new(&bytes)).is_err());
        assert!(KeySpec::get(&mut ByteReader::new(&bytes)).is_err());
    }
}
