//! `pangead` — run one Pangea storage node behind the wire protocol.
//!
//! ```text
//! pangead --listen 127.0.0.1:7781 --data /var/lib/pangea/node0 \
//!         [--pool-mb 64] [--page-kb 256] [--disks 1] \
//!         [--strategy data-aware] [--disk-bw-mb <MB/s>]
//! ```
//!
//! The daemon serves until killed. Argument parsing is deliberately
//! dependency-free.

use pangea_core::{NodeConfig, StorageNode};
use pangea_net::PangeadServer;
use std::process::exit;

struct Args {
    listen: String,
    data: String,
    pool_mb: usize,
    page_kb: usize,
    disks: usize,
    strategy: String,
    disk_bw_mb: Option<u64>,
}

const USAGE: &str = "usage: pangead --listen <addr:port> --data <dir> \
    [--pool-mb N] [--page-kb N] [--disks N] [--strategy NAME] [--disk-bw-mb N]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: String::new(),
        data: String::new(),
        pool_mb: 64,
        page_kb: 256,
        disks: 1,
        strategy: "data-aware".to_string(),
        disk_bw_mb: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--data" => args.data = value("--data")?,
            "--pool-mb" => {
                args.pool_mb = value("--pool-mb")?
                    .parse()
                    .map_err(|e| format!("--pool-mb: {e}"))?;
            }
            "--page-kb" => {
                args.page_kb = value("--page-kb")?
                    .parse()
                    .map_err(|e| format!("--page-kb: {e}"))?;
            }
            "--disks" => {
                args.disks = value("--disks")?
                    .parse()
                    .map_err(|e| format!("--disks: {e}"))?;
            }
            "--strategy" => args.strategy = value("--strategy")?,
            "--disk-bw-mb" => {
                args.disk_bw_mb = Some(
                    value("--disk-bw-mb")?
                        .parse()
                        .map_err(|e| format!("--disk-bw-mb: {e}"))?,
                );
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.listen.is_empty() || args.data.is_empty() {
        return Err("--listen and --data are required".to_string());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pangead: {e}\n{USAGE}");
            exit(2);
        }
    };
    let mut config = NodeConfig::new(&args.data)
        .with_pool_capacity(args.pool_mb * pangea_common::MB)
        .with_page_size(args.page_kb * pangea_common::KB)
        .with_disks(args.disks)
        .with_strategy(&args.strategy);
    if let Some(bw) = args.disk_bw_mb {
        config = config.with_disk_bandwidth(bw * pangea_common::MB as u64);
    }
    let node = match StorageNode::new(config) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("pangead: cannot start storage node: {e}");
            exit(1);
        }
    };
    let server = match PangeadServer::bind(node, &args.listen) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pangead: cannot bind {}: {e}", args.listen);
            exit(1);
        }
    };
    println!(
        "pangead listening on {} (data: {}, pool: {} MB, pages: {} KB, strategy: {})",
        server.local_addr(),
        args.data,
        args.pool_mb,
        args.page_kb,
        args.strategy
    );
    // Serve until killed: park the main thread while the accept loop runs.
    loop {
        std::thread::park();
    }
}
