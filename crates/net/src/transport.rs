//! The [`Transport`] trait — the seam between Pangea's distributed logic
//! and the wire that carries it.
//!
//! Historically the cluster talked through `SimNetwork` directly (an
//! in-process byte-counted channel; DESIGN.md §2). This trait captures
//! exactly what that substitution provided — a synchronous, addressed,
//! byte-counted, optionally throttled transfer — so that dispatch,
//! replication, and recovery in `pangea-cluster` run unchanged over
//! either the in-process simulation or a real TCP interconnect
//! ([`crate::TcpTransport`]). Because every implementation funds the same
//! [`IoStats`] counters with *payload* bytes, figures measured on the
//! simulation stay comparable with runs over the real wire (framing
//! overhead is accounted separately, as serialization).

use pangea_common::{IoStats, NodeId, Result};
use std::fmt;
use std::sync::Arc;

/// A cluster interconnect: moves opaque payloads between nodes,
/// charging byte-accounting and (optionally) bandwidth pacing.
///
/// # Contract
///
/// * `transfer` is synchronous and returns the bytes as delivered to the
///   destination (implementations may round-trip them through a remote
///   process; the caller treats the result as the received copy).
/// * Local deliveries (`from == to`) are free — Pangea reads local pages
///   through shared memory (paper §5) — and must not touch the counters.
/// * Remote deliveries record exactly `payload.len()` bytes in
///   [`IoStats::record_net`] so that byte counts are comparable across
///   implementations. Wire overhead (framing, protocol headers) must be
///   recorded as serialization, never as net bytes.
pub trait Transport: fmt::Debug + Send + Sync {
    /// Transfers `payload` from `from` to `to`, returning the delivered
    /// bytes.
    fn transfer(&self, from: NodeId, to: NodeId, payload: &[u8]) -> Result<Vec<u8>>;

    /// The transport's traffic counters.
    fn stats(&self) -> &Arc<IoStats>;

    /// A short human-readable name for diagnostics (`"sim"`, `"tcp"`).
    fn kind(&self) -> &'static str;

    /// Total payload bytes moved across the wire so far.
    fn bytes_moved(&self) -> u64 {
        self.stats().snapshot().net_bytes
    }
}

impl<T: Transport + ?Sized> Transport for Arc<T> {
    fn transfer(&self, from: NodeId, to: NodeId, payload: &[u8]) -> Result<Vec<u8>> {
        (**self).transfer(from, to, payload)
    }

    fn stats(&self) -> &Arc<IoStats> {
        (**self).stats()
    }

    fn kind(&self) -> &'static str {
        (**self).kind()
    }

    fn bytes_moved(&self) -> u64 {
        (**self).bytes_moved()
    }
}
