//! A thin synchronous client for `pangead`.
//!
//! One client owns one connection and issues framed request/response
//! round trips. Typed methods mirror the paper's node API (`createSet`,
//! `addObject`, page iteration, shuffle) so an application can talk to a
//! remote node with the same vocabulary it uses in-process.

use crate::frame::{read_frame_corr, write_frame, write_frame_corr, FRAME_CORR_OVERHEAD};
use crate::proto::{Request, Response};
use crate::wire::{
    ReduceSpec, RepairFilter, RepairPushReport, TaskReport, TaskSpec, WireMetric, WireSpan,
};
use pangea_common::{FxHashMap, IoStats, PageNum, PangeaError, Result};
use pangea_obs::TraceCtx;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;

/// Counter snapshot reported by a remote node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemoteStats {
    /// Payload bytes the remote daemon received.
    pub net_bytes: u64,
    /// Wire payload messages the remote daemon handled.
    pub net_messages: u64,
    /// Bytes the remote node read from its disks.
    pub disk_read_bytes: u64,
    /// Bytes the remote node wrote to its disks.
    pub disk_write_bytes: u64,
    /// Peer-repair payload bytes the remote daemon moved worker→worker.
    pub repair_bytes: u64,
    /// Map-shuffle payload bytes the remote daemon moved worker→worker.
    pub shuffle_bytes: u64,
    /// Buffer-pool page pins satisfied from resident frames.
    pub paging_hits: u64,
    /// Buffer-pool page pins that had to read from disk.
    pub paging_misses: u64,
    /// Pages evicted from the pool to make room.
    pub paging_evictions: u64,
    /// Bytes the remote node wrote to disk via spills and dirty
    /// evictions.
    pub paging_spill_bytes: u64,
    /// Bytes currently resident in the remote node's buffer pool.
    pub pool_used_bytes: u64,
    /// The remote node's total buffer-pool capacity in bytes.
    pub pool_capacity_bytes: u64,
}

/// A connected `pangead` client.
#[derive(Debug)]
pub struct PangeaClient {
    stream: TcpStream,
    addr: SocketAddr,
    stats: Arc<IoStats>,
    /// When set, every outgoing request carries this [`TraceCtx`] as a
    /// trailing envelope (see `Request::encode_traced`).
    trace: Option<TraceCtx>,
    /// Next correlation id handed out by [`PangeaClient::submit`].
    /// Starts at 1 — correlation 0 is the strict-serial [`call`] path.
    next_corr: u64,
    /// Responses that arrived while awaiting a different correlation id
    /// (out-of-order completion), parked until their id is awaited.
    parked: FxHashMap<u64, Response>,
    /// Correlation ids submitted but not yet awaited.
    inflight: usize,
}

impl PangeaClient {
    /// Connects to a `pangead` at `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        Self::connect_with(addr, None, None)
    }

    /// Connects and, when `secret` is given, performs the
    /// [`Request::Hello`] handshake before returning. A rejected
    /// handshake surfaces as [`PangeaError::Unauthenticated`].
    pub fn connect_with_secret(addr: impl ToSocketAddrs, secret: Option<&str>) -> Result<Self> {
        Self::connect_with(addr, secret, None)
    }

    /// Full-control constructor: optional handshake secret, and an
    /// optional externally owned counter set so several clients (e.g.
    /// one per worker in a `RemoteCluster`) can share one ledger.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        secret: Option<&str>,
        stats: Option<Arc<IoStats>>,
    ) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let addr = stream.peer_addr()?;
        let mut client = Self {
            stream,
            addr,
            stats: stats.unwrap_or_else(|| Arc::new(IoStats::new())),
            trace: None,
            next_corr: 1,
            parked: FxHashMap::default(),
            inflight: 0,
        };
        if let Some(secret) = secret {
            match client.call(&Request::Hello {
                secret: secret.to_string(),
            })? {
                Response::Ok => {}
                other => return Err(Self::unexpected(other)),
            }
        }
        Ok(client)
    }

    /// The server's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Client-side wire counters (serialized request/response bytes).
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Attaches (or, with `None`, clears) the trace context every
    /// subsequent request on this connection propagates. Callers that
    /// pool connections must clear it on check-in.
    pub fn set_trace(&mut self, ctx: Option<TraceCtx>) {
        self.trace = ctx;
    }

    /// The trace context currently attached to this connection.
    pub fn trace(&self) -> Option<TraceCtx> {
        self.trace
    }

    /// One framed round trip; error responses become [`PangeaError::Remote`].
    pub fn call(&mut self, req: &Request) -> Result<Response> {
        if self.inflight != 0 {
            return Err(PangeaError::usage(format!(
                "serial call with {} pipelined request(s) outstanding; await them first",
                self.inflight
            )));
        }
        let encoded = req.encode_traced(self.trace.as_ref());
        self.stats
            .record_serialization(encoded.len() + crate::frame::FRAME_OVERHEAD);
        write_frame(&mut self.stream, &encoded)?;
        let (_, payload) = read_frame_corr(&mut self.stream)?.ok_or_else(Self::closed_early)?;
        self.stats
            .record_serialization(payload.len() + crate::frame::FRAME_OVERHEAD);
        Response::decode(&payload)?.into_result()
    }

    /// Sends `req` without waiting for its response; returns the
    /// correlation id to pass to [`PangeaClient::await_response`]. Up to
    /// the caller's window of submits may be outstanding at once — the
    /// server executes them in submission order per connection and may
    /// complete them out of order across sessions.
    pub fn submit(&mut self, req: &Request) -> Result<u64> {
        let corr = self.next_corr;
        let encoded = req.encode_traced(self.trace.as_ref());
        self.stats
            .record_serialization(encoded.len() + FRAME_CORR_OVERHEAD);
        write_frame_corr(&mut self.stream, corr, &encoded)?;
        self.next_corr += 1;
        self.inflight += 1;
        Ok(corr)
    }

    /// Awaits the response to a prior [`PangeaClient::submit`].
    /// Responses to *other* outstanding submits that arrive first are
    /// parked and handed out when their id is awaited, so completion
    /// order is free. A correlation-0 frame while pipelining is a
    /// connection-level server error (e.g. [`Response::Busy`] from the
    /// accept path) and fails the await typed.
    pub fn await_response(&mut self, corr: u64) -> Result<Response> {
        self.inflight = self.inflight.saturating_sub(1);
        if let Some(resp) = self.parked.remove(&corr) {
            return resp.into_result();
        }
        loop {
            let (got, payload) =
                read_frame_corr(&mut self.stream)?.ok_or_else(Self::closed_early)?;
            self.stats
                .record_serialization(payload.len() + FRAME_CORR_OVERHEAD);
            let resp = Response::decode(&payload)?;
            if got == corr {
                return resp.into_result();
            }
            if got == 0 {
                // Not an answer to any submit: the server speaks corr 0
                // only for connection-level rejections.
                resp.into_result()?;
                return Err(PangeaError::Corruption(
                    "uncorrelated response while awaiting a pipelined request".to_string(),
                ));
            }
            self.parked.insert(got, resp);
        }
    }

    /// Pipelined requests submitted but not yet awaited.
    pub fn pipelined(&self) -> usize {
        self.inflight
    }

    fn closed_early() -> PangeaError {
        PangeaError::Io(Arc::new(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection mid-request",
        )))
    }

    fn unexpected(resp: Response) -> PangeaError {
        PangeaError::Remote(format!("unexpected response: {resp:?}"))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        match self.call(&Request::Ping)? {
            Response::Ok => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// `createSet(name, durability)` on the remote node; returns the raw
    /// remote set id.
    pub fn create_set(
        &mut self,
        name: &str,
        durability: &str,
        page_size: Option<usize>,
    ) -> Result<u64> {
        let req = Request::CreateSet {
            name: name.to_string(),
            durability: durability.to_string(),
            page_size: page_size.map(|p| p as u64),
        };
        match self.call(&req)? {
            Response::Created { set } => Ok(set),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Appends records through the remote sequential write service.
    pub fn append<R: AsRef<[u8]>>(&mut self, set: &str, records: &[R]) -> Result<u64> {
        let payload_bytes: usize = records.iter().map(|r| r.as_ref().len()).sum();
        let req = Request::Append {
            set: set.to_string(),
            records: records.iter().map(|r| r.as_ref().to_vec()).collect(),
        };
        match self.call(&req)? {
            Response::Appended { records } => {
                self.stats.record_net(payload_bytes);
                Ok(records)
            }
            other => Err(Self::unexpected(other)),
        }
    }

    /// The remote set's dense page ordinals.
    pub fn page_numbers(&mut self, set: &str) -> Result<Vec<PageNum>> {
        let req = Request::PageNumbers {
            set: set.to_string(),
        };
        match self.call(&req)? {
            Response::Pages { nums } => Ok(nums),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Fetches one remote page's raw bytes (the recovery read path).
    pub fn fetch_page(&mut self, set: &str, num: PageNum) -> Result<Vec<u8>> {
        let req = Request::FetchPage {
            set: set.to_string(),
            num,
        };
        match self.call(&req)? {
            Response::Page { bytes } => {
                self.stats.record_net(bytes.len());
                Ok(bytes)
            }
            other => Err(Self::unexpected(other)),
        }
    }

    /// Reads every record of a remote set, in storage order.
    pub fn scan(&mut self, set: &str) -> Result<Vec<Vec<u8>>> {
        let req = Request::Scan {
            set: set.to_string(),
        };
        match self.call(&req)? {
            Response::Records { records } => {
                let bytes: usize = records.iter().map(Vec::len).sum();
                self.stats.record_net(bytes);
                Ok(records)
            }
            other => Err(Self::unexpected(other)),
        }
    }

    /// Counts a remote set's records server-side (no payload bytes
    /// cross the wire).
    pub fn count(&mut self, set: &str) -> Result<u64> {
        let req = Request::Count {
            set: set.to_string(),
        };
        match self.call(&req)? {
            Response::Count { records } => Ok(records),
            other => Err(Self::unexpected(other)),
        }
    }

    /// The remote set's record hashes, in storage order (no payload
    /// crosses the wire — the peer pull of a repair session). Pages
    /// through chunked replies, so sets of any size fit the frame limit.
    pub fn hash_list(&mut self, set: &str) -> Result<Vec<u64>> {
        let mut all = Vec::new();
        let mut cursor = (0u64, 0u64);
        loop {
            let req = Request::HashList {
                set: set.to_string(),
                start_page: cursor.0,
                start_record: cursor.1,
            };
            match self.call(&req)? {
                Response::Hashes { hashes, next } => {
                    match next {
                        Some(n) if hashes.is_empty() || n <= cursor => {
                            // A continuation must make progress, or a
                            // confused server would loop us forever.
                            return Err(PangeaError::Corruption(format!(
                                "hash-list cursor did not advance past {cursor:?}"
                            )));
                        }
                        _ => {}
                    }
                    all.extend(hashes);
                    match next {
                        Some(n) => cursor = n,
                        None => return Ok(all),
                    }
                }
                other => return Err(Self::unexpected(other)),
            }
        }
    }

    /// Opens a repair session for `set` on the remote node, seeding its
    /// dedup ledger from the peers in `present_from`.
    pub fn recover_begin(&mut self, set: &str, present_from: &[String]) -> Result<()> {
        let req = Request::RecoverBegin {
            set: set.to_string(),
            present_from: present_from.to_vec(),
        };
        match self.call(&req)? {
            Response::Ok => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Delivers one batch of candidate records into an open repair
    /// session; returns `(appended, appended_bytes)` after dedup. Takes
    /// the batch by value — the streaming hot path hands its buffer
    /// over instead of copying every payload byte a second time.
    pub fn recover_append(&mut self, set: &str, records: Vec<Vec<u8>>) -> Result<(u64, u64)> {
        let payload_bytes: usize = records.iter().map(Vec::len).sum();
        let req = Request::RecoverAppend {
            set: set.to_string(),
            records,
        };
        match self.call(&req)? {
            Response::RepairAck {
                appended, bytes, ..
            } => {
                self.stats.record_net(payload_bytes);
                Ok((appended, bytes))
            }
            other => Err(Self::unexpected(other)),
        }
    }

    /// Pipelined [`PangeaClient::recover_append`]: sends the batch and
    /// returns `(correlation, payload_bytes)` for a later
    /// [`PangeaClient::recover_append_await`]. Net-payload accounting is
    /// deferred to the ack, exactly like the serial path.
    pub fn recover_append_submit(
        &mut self,
        set: &str,
        records: Vec<Vec<u8>>,
    ) -> Result<(u64, usize)> {
        let payload_bytes: usize = records.iter().map(Vec::len).sum();
        let corr = self.submit(&Request::RecoverAppend {
            set: set.to_string(),
            records,
        })?;
        Ok((corr, payload_bytes))
    }

    /// Awaits one pipelined repair batch; returns
    /// `(appended, appended_bytes, credit)` — `credit` is the receiver's
    /// current pool-residency grant (`0` = no information).
    pub fn recover_append_await(
        &mut self,
        corr: u64,
        payload_bytes: usize,
    ) -> Result<(u64, u64, u64)> {
        match self.await_response(corr)? {
            Response::RepairAck {
                appended,
                bytes,
                credit,
            } => {
                self.stats.record_net(payload_bytes);
                Ok((appended, bytes, credit))
            }
            other => Err(Self::unexpected(other)),
        }
    }

    /// Seals a repair session; returns its `(appended, appended_bytes)`
    /// totals.
    pub fn recover_end(&mut self, set: &str) -> Result<(u64, u64)> {
        let req = Request::RecoverEnd {
            set: set.to_string(),
        };
        match self.call(&req)? {
            Response::RepairAck {
                appended, bytes, ..
            } => Ok((appended, bytes)),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Orders the remote node (a survivor) to stream its filtered share
    /// of `source_set` straight to `target_set` on the `pangead` at
    /// `target_addr`. No payload crosses *this* connection — only the
    /// push outcome comes back.
    pub fn recover_push(
        &mut self,
        source_set: &str,
        target_set: &str,
        target_addr: &str,
        filter: &RepairFilter,
    ) -> Result<RepairPushReport> {
        let req = Request::RecoverPush {
            source_set: source_set.to_string(),
            target_set: target_set.to_string(),
            target_addr: target_addr.to_string(),
            filter: filter.clone(),
        };
        match self.call(&req)? {
            Response::Pushed {
                scanned,
                pushed,
                pushed_bytes,
                appended,
                appended_bytes,
            } => Ok(RepairPushReport {
                scanned,
                pushed,
                pushed_bytes,
                appended,
                appended_bytes,
            }),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Runs one shipped map task on the remote worker (the task scans
    /// its local input share and streams routed batches straight to the
    /// destination workers). No record payload crosses *this*
    /// connection — only the task outcome comes back.
    pub fn run_task(&mut self, spec: &TaskSpec) -> Result<TaskReport> {
        let req = Request::TaskRun { spec: spec.clone() };
        match self.call(&req)? {
            Response::TaskDone {
                scanned,
                emitted,
                emitted_bytes,
                appended,
                appended_bytes,
            } => Ok(TaskReport {
                scanned,
                emitted,
                emitted_bytes,
                appended,
                appended_bytes,
            }),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Opens (or resets) a shuffle-ingest session for `set` on the
    /// remote node, truncating its local share of the set. With a
    /// `reduce`, the session folds incoming `key|value` partials into a
    /// keyed accumulator instead of appending records, materializing
    /// the result at [`PangeaClient::ingest_end`].
    pub fn ingest_begin(&mut self, set: &str, reduce: Option<&ReduceSpec>) -> Result<()> {
        let req = Request::IngestBegin {
            set: set.to_string(),
            reduce: reduce.cloned(),
        };
        match self.call(&req)? {
            Response::Ok => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// The present-hash ledger of an open repair session on the remote
    /// node, paged like [`PangeaClient::hash_list`] (no payload crosses
    /// the wire) — what an `Absent`-filtered survivor diffs against.
    ///
    /// Materializes the whole ledger; prefer
    /// [`PangeaClient::repair_ledger_for_each`] when the caller can
    /// consume it chunk by chunk.
    pub fn repair_ledger(&mut self, set: &str) -> Result<Vec<u64>> {
        let mut all = Vec::new();
        self.repair_ledger_for_each(set, |hashes| {
            all.extend(hashes);
            Ok(())
        })?;
        Ok(all)
    }

    /// Streams the remote repair-session ledger one wire chunk at a
    /// time, handing each chunk to `f` as it arrives. The client never
    /// holds more than one chunk in memory, so a survivor can diff
    /// against an arbitrarily large replacement ledger with bounded
    /// heap.
    pub fn repair_ledger_for_each(
        &mut self,
        set: &str,
        mut f: impl FnMut(Vec<u64>) -> Result<()>,
    ) -> Result<()> {
        let mut start = 0u64;
        loop {
            let req = Request::RepairLedger {
                set: set.to_string(),
                start,
            };
            match self.call(&req)? {
                Response::Hashes { hashes, next } => {
                    match next {
                        Some((_, n)) if hashes.is_empty() || n <= start => {
                            return Err(PangeaError::Corruption(format!(
                                "repair-ledger cursor did not advance past {start}"
                            )));
                        }
                        _ => {}
                    }
                    f(hashes)?;
                    match next {
                        Some((_, n)) => start = n,
                        None => return Ok(()),
                    }
                }
                other => return Err(Self::unexpected(other)),
            }
        }
    }

    /// Pulls the remote daemon's full observability dump: every
    /// registered metric plus all retained span records, following the
    /// `(metrics, spans)` cursor pair until the server reports no more
    /// (mirroring the [`PangeaClient::repair_ledger`] pagination, with
    /// the same no-progress corruption check).
    pub fn metrics_dump(&mut self) -> Result<(Vec<WireMetric>, Vec<WireSpan>)> {
        let (metrics, spans, _) = self.metrics_dump_since(0)?;
        Ok((metrics, spans))
    }

    /// The incremental form of [`PangeaClient::metrics_dump`] the
    /// manager's scrape loop runs on: spans are pulled from ring
    /// sequence `from` only, and the returned cursor is where the
    /// *next* scrape should resume — one past the last span shipped, or
    /// parked at `from` when nothing new happened (so an idle fleet
    /// transfers metrics but zero spans, scrape after scrape). A ring
    /// that wrapped past `from` shows up as a first span sequence
    /// greater than the cursor; callers diff the two to report loss.
    pub fn metrics_dump_since(
        &mut self,
        from: u64,
    ) -> Result<(Vec<WireMetric>, Vec<WireSpan>, u64)> {
        let (mut metrics, mut spans) = (Vec::new(), Vec::new());
        let (mut metrics_start, mut spans_start) = (0u64, from);
        loop {
            let req = Request::MetricsDump {
                metrics_start,
                spans_start,
            };
            match self.call(&req)? {
                Response::Metrics {
                    metrics: m,
                    spans: s,
                    next,
                } => {
                    let advanced = !m.is_empty() || !s.is_empty();
                    metrics.extend(m);
                    spans.extend(s);
                    match next {
                        Some((mn, sn)) => {
                            if !advanced && mn <= metrics_start && sn <= spans_start {
                                return Err(PangeaError::Corruption(format!(
                                    "metrics-dump cursor did not advance past \
                                     ({metrics_start}, {spans_start})"
                                )));
                            }
                            metrics_start = mn;
                            spans_start = sn;
                        }
                        None => {
                            let cursor = spans.last().map(|s: &WireSpan| s.seq + 1).unwrap_or(
                                // Nothing shipped in the final chunk:
                                // the parked cursor (or `from` when the
                                // whole dump was one quiet chunk) is
                                // already right.
                                spans_start,
                            );
                            return Ok((metrics, spans, cursor));
                        }
                    }
                }
                other => return Err(Self::unexpected(other)),
            }
        }
    }

    /// Delivers one batch of tagged records into an open ingest session;
    /// returns `(appended, appended_bytes)` after tag dedup. Takes the
    /// batch by value — the mapper hot path hands its buffer over
    /// instead of copying every payload byte a second time (mirrors
    /// [`PangeaClient::recover_append`]).
    pub fn ingest_append(&mut self, set: &str, entries: Vec<(u64, Vec<u8>)>) -> Result<(u64, u64)> {
        let payload_bytes: usize = entries.iter().map(|(_, r)| r.len()).sum();
        let req = Request::IngestAppend {
            set: set.to_string(),
            entries,
        };
        match self.call(&req)? {
            Response::IngestAck {
                appended, bytes, ..
            } => {
                self.stats.record_net(payload_bytes);
                Ok((appended, bytes))
            }
            other => Err(Self::unexpected(other)),
        }
    }

    /// Pipelined [`PangeaClient::ingest_append`]: sends the batch and
    /// returns `(correlation, payload_bytes)` for a later
    /// [`PangeaClient::ingest_append_await`].
    pub fn ingest_append_submit(
        &mut self,
        set: &str,
        entries: Vec<(u64, Vec<u8>)>,
    ) -> Result<(u64, usize)> {
        let payload_bytes: usize = entries.iter().map(|(_, r)| r.len()).sum();
        let corr = self.submit(&Request::IngestAppend {
            set: set.to_string(),
            entries,
        })?;
        Ok((corr, payload_bytes))
    }

    /// Awaits one pipelined ingest batch; returns
    /// `(appended, appended_bytes, credit)` — `credit` is the receiver's
    /// current pool-residency grant (`0` = no information).
    pub fn ingest_append_await(
        &mut self,
        corr: u64,
        payload_bytes: usize,
    ) -> Result<(u64, u64, u64)> {
        match self.await_response(corr)? {
            Response::IngestAck {
                appended,
                bytes,
                credit,
            } => {
                self.stats.record_net(payload_bytes);
                Ok((appended, bytes, credit))
            }
            other => Err(Self::unexpected(other)),
        }
    }

    /// Seals an ingest session; returns its `(appended, appended_bytes)`
    /// totals. Idempotent on the daemon (sealed-totals tombstone).
    pub fn ingest_end(&mut self, set: &str) -> Result<(u64, u64)> {
        let req = Request::IngestEnd {
            set: set.to_string(),
        };
        match self.call(&req)? {
            Response::IngestAck {
                appended, bytes, ..
            } => Ok((appended, bytes)),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Drops a remote locality set.
    pub fn drop_set(&mut self, set: &str) -> Result<()> {
        let req = Request::DropSet {
            set: set.to_string(),
        };
        match self.call(&req)? {
            Response::Ok => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Creates a remote shuffle service.
    pub fn shuffle_create(
        &mut self,
        name: &str,
        partitions: u32,
        page_size: Option<usize>,
    ) -> Result<()> {
        let req = Request::ShuffleCreate {
            name: name.to_string(),
            partitions,
            page_size: page_size.map(|p| p as u64),
        };
        match self.call(&req)? {
            Response::Ok => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Sends records to one partition of a remote shuffle.
    pub fn shuffle_send<R: AsRef<[u8]>>(
        &mut self,
        name: &str,
        partition: u32,
        records: &[R],
    ) -> Result<u64> {
        let payload_bytes: usize = records.iter().map(|r| r.as_ref().len()).sum();
        let req = Request::ShuffleSend {
            name: name.to_string(),
            partition,
            records: records.iter().map(|r| r.as_ref().to_vec()).collect(),
        };
        match self.call(&req)? {
            Response::Appended { records } => {
                self.stats.record_net(payload_bytes);
                Ok(records)
            }
            other => Err(Self::unexpected(other)),
        }
    }

    /// Seals a remote shuffle's in-progress pages.
    pub fn shuffle_finish(&mut self, name: &str) -> Result<()> {
        let req = Request::ShuffleFinish {
            name: name.to_string(),
        };
        match self.call(&req)? {
            Response::Ok => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Raw transport delivery; returns the acknowledged byte count after
    /// verifying the server's digest. Mostly diagnostic.
    pub fn deliver(&mut self, payload: &[u8]) -> Result<u64> {
        let req = Request::Deliver {
            from: u32::MAX,
            payload: payload.to_vec(),
        };
        match self.call(&req)? {
            Response::Delivered { len, checksum } => {
                if len != payload.len() as u64 || checksum != pangea_common::fx_hash64(payload) {
                    return Err(PangeaError::Corruption(format!(
                        "delivery ack digest mismatch for a {} B payload",
                        payload.len()
                    )));
                }
                Ok(len)
            }
            other => Err(Self::unexpected(other)),
        }
    }

    /// The remote node's counter snapshot.
    pub fn remote_stats(&mut self) -> Result<RemoteStats> {
        match self.call(&Request::Stats)? {
            Response::Stats {
                net_bytes,
                net_messages,
                disk_read_bytes,
                disk_write_bytes,
                repair_bytes,
                shuffle_bytes,
                paging_hits,
                paging_misses,
                paging_evictions,
                paging_spill_bytes,
                pool_used_bytes,
                pool_capacity_bytes,
            } => Ok(RemoteStats {
                net_bytes,
                net_messages,
                disk_read_bytes,
                disk_write_bytes,
                repair_bytes,
                shuffle_bytes,
                paging_hits,
                paging_misses,
                paging_evictions,
                paging_spill_bytes,
                pool_used_bytes,
                pool_capacity_bytes,
            }),
            other => Err(Self::unexpected(other)),
        }
    }
}
