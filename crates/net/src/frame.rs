//! Length-prefixed wire framing.
//!
//! One frame is a `u32` little-endian payload length followed by the
//! payload bytes — the same self-framing layout `pangea_common::codec`
//! uses inside pages, lifted onto a byte stream. Frames larger than
//! [`MAX_FRAME`] are rejected on both sides: on send as an API misuse, on
//! receive as corruption (a desynchronized or malicious peer), so a bad
//! length prefix can never make a reader allocate gigabytes.
//!
//! ## Correlated frames
//!
//! A connection that pipelines requests needs responses matched back to
//! the request they answer, so a frame can optionally carry a `u64`
//! correlation id: bit 31 of the length prefix ([`CORR_FLAG`]) marks a
//! correlated frame, whose payload length is followed by an 8-byte
//! little-endian id before the payload. The flag bit is free because
//! [`MAX_FRAME`] is 2^26 — a legal length never sets it, and a legacy
//! reader that saw one would reject it as an oversized frame instead of
//! desynchronizing. Legacy frames (no flag) decode as correlation `0`,
//! the strict-serial id, and correlation `0` is always *written* as a
//! legacy frame — so a server answering in the shape the request used
//! stays byte-identical to the pre-correlation protocol for serial
//! clients.

use pangea_common::{PangeaError, Result};
use std::io::{Read, Write};

/// Upper bound on one frame's payload. Generous relative to page sizes
/// (the largest legitimate message is a page fetch or an append batch).
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Bytes of framing overhead per frame (the length prefix).
pub const FRAME_OVERHEAD: usize = 4;

/// Length-prefix bit marking a correlated frame (id follows the prefix).
pub const CORR_FLAG: u32 = 0x8000_0000;

/// Bytes of framing overhead per *correlated* frame (length prefix plus
/// the 8-byte correlation id).
pub const FRAME_CORR_OVERHEAD: usize = FRAME_OVERHEAD + 8;

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    write_frame_corr(w, 0, payload)
}

/// Writes one frame carrying correlation id `corr` and flushes.
///
/// Correlation `0` (the strict-serial id) is written as a legacy
/// unflagged frame, so serial traffic is bit-for-bit what it was before
/// correlation existed.
pub fn write_frame_corr(w: &mut impl Write, corr: u64, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(PangeaError::usage(format!(
            "frame of {} B exceeds the {MAX_FRAME} B limit",
            payload.len()
        )));
    }
    if corr == 0 {
        w.write_all(&(payload.len() as u32).to_le_bytes())?;
    } else {
        w.write_all(&(payload.len() as u32 | CORR_FLAG).to_le_bytes())?;
        w.write_all(&corr.to_le_bytes())?;
    }
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame's payload, discarding any correlation id.
///
/// Returns `Ok(None)` on a clean end-of-stream (EOF exactly at a frame
/// boundary — how a peer hangs up). EOF in the *middle* of a frame, or a
/// length prefix above [`MAX_FRAME`], is corruption.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    Ok(read_frame_corr(r)?.map(|(_, payload)| payload))
}

/// Reads one frame as `(correlation, payload)`.
///
/// Legacy frames (no [`CORR_FLAG`]) decode as correlation `0`. EOF and
/// corruption semantics match [`read_frame`]; a truncation anywhere in
/// the correlation id is corruption, same as inside the prefix.
pub fn read_frame_corr(r: &mut impl Read) -> Result<Option<(u64, Vec<u8>)>> {
    let mut prefix = [0u8; FRAME_OVERHEAD];
    match read_exact_or_eof(r, &mut prefix)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Partial(got) => {
            return Err(PangeaError::Corruption(format!(
                "stream ended {got} B into a frame length prefix"
            )));
        }
        ReadOutcome::Full => {}
    }
    let raw = u32::from_le_bytes(prefix);
    let corr = if raw & CORR_FLAG != 0 {
        let mut id = [0u8; 8];
        match read_exact_or_eof(r, &mut id)? {
            ReadOutcome::Full => {}
            ReadOutcome::Eof | ReadOutcome::Partial(_) => {
                return Err(PangeaError::Corruption(
                    "stream ended inside a frame correlation id".to_string(),
                ));
            }
        }
        u64::from_le_bytes(id)
    } else {
        0
    };
    let len = (raw & !CORR_FLAG) as usize;
    if len > MAX_FRAME {
        return Err(PangeaError::Corruption(format!(
            "frame length {len} B exceeds the {MAX_FRAME} B limit"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            PangeaError::Corruption(format!("stream ended inside a frame expecting {len} B"))
        } else {
            PangeaError::from(e)
        }
    })?;
    Ok(Some((corr, payload)))
}

enum ReadOutcome {
    /// The buffer was filled.
    Full,
    /// EOF before the first byte.
    Eof,
    /// EOF after some bytes (count carried).
    Partial(usize),
}

fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadOutcome::Eof),
            Ok(0) => return Ok(ReadOutcome::Partial(filled)),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(ReadOutcome::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_various_sizes() {
        for len in [0usize, 1, 7, 4096, 100_000] {
            let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let mut buf = Vec::new();
            write_frame(&mut buf, &payload).unwrap();
            assert_eq!(buf.len(), FRAME_OVERHEAD + len);
            let got = read_frame(&mut Cursor::new(&buf)).unwrap().unwrap();
            assert_eq!(got, payload);
        }
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(read_frame(&mut Cursor::new(&[])).unwrap().is_none());
    }

    #[test]
    fn truncated_prefix_is_corruption() {
        let buf = [9u8, 0, 0]; // 3 of 4 prefix bytes
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf)),
            Err(PangeaError::Corruption(_))
        ));
    }

    #[test]
    fn truncated_payload_is_corruption() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full payload").unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf)),
            Err(PangeaError::Corruption(_))
        ));
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocation() {
        let mut buf = (u32::MAX).to_le_bytes().to_vec();
        buf.extend_from_slice(b"junk");
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf)),
            Err(PangeaError::Corruption(_))
        ));
    }

    #[test]
    fn oversized_send_rejected() {
        // Zero-filled huge payload; write must refuse before any I/O.
        let payload = vec![0u8; MAX_FRAME + 1];
        let mut out = Vec::new();
        assert!(matches!(
            write_frame(&mut out, &payload),
            Err(PangeaError::InvalidUsage(_))
        ));
        assert!(out.is_empty());
    }

    #[test]
    fn correlated_roundtrip_carries_the_id() {
        for corr in [1u64, 2, 0xDEAD_BEEF, u64::MAX] {
            let mut buf = Vec::new();
            write_frame_corr(&mut buf, corr, b"payload").unwrap();
            assert_eq!(buf.len(), FRAME_CORR_OVERHEAD + 7);
            let (got_corr, payload) = read_frame_corr(&mut Cursor::new(&buf)).unwrap().unwrap();
            assert_eq!(got_corr, corr);
            assert_eq!(payload, b"payload");
        }
    }

    #[test]
    fn correlation_zero_is_written_as_a_legacy_frame() {
        let mut legacy = Vec::new();
        write_frame(&mut legacy, b"serial").unwrap();
        let mut corr0 = Vec::new();
        write_frame_corr(&mut corr0, 0, b"serial").unwrap();
        assert_eq!(legacy, corr0);
        assert_eq!(legacy.len(), FRAME_OVERHEAD + 6);
    }

    #[test]
    fn legacy_frame_decodes_as_correlation_zero() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"old wire").unwrap();
        let (corr, payload) = read_frame_corr(&mut Cursor::new(&buf)).unwrap().unwrap();
        assert_eq!(corr, 0);
        assert_eq!(payload, b"old wire");
    }

    #[test]
    fn legacy_reader_sees_correlated_frame_as_corruption_not_desync() {
        // The flag bit makes the prefix read as an impossible length, so
        // a pre-correlation reader rejects the frame instead of
        // misparsing the id bytes as payload.
        let mut buf = Vec::new();
        write_frame_corr(&mut buf, 7, b"new wire").unwrap();
        let raw = u32::from_le_bytes(buf[..4].try_into().unwrap());
        assert!((raw as usize) > MAX_FRAME);
    }

    #[test]
    fn truncated_correlation_id_is_corruption() {
        let mut buf = Vec::new();
        write_frame_corr(&mut buf, 42, b"x").unwrap();
        for cut in FRAME_OVERHEAD..FRAME_CORR_OVERHEAD {
            let mut short = buf.clone();
            short.truncate(cut);
            assert!(matches!(
                read_frame_corr(&mut Cursor::new(&short)),
                Err(PangeaError::Corruption(_))
            ));
        }
    }

    #[test]
    fn interleaved_correlated_and_legacy_frames_parse_in_order() {
        let mut buf = Vec::new();
        write_frame_corr(&mut buf, 3, b"three").unwrap();
        write_frame(&mut buf, b"serial").unwrap();
        write_frame_corr(&mut buf, 9, b"").unwrap();
        let mut cur = Cursor::new(&buf);
        assert_eq!(
            read_frame_corr(&mut cur).unwrap().unwrap(),
            (3, b"three".to_vec())
        );
        assert_eq!(
            read_frame_corr(&mut cur).unwrap().unwrap(),
            (0, b"serial".to_vec())
        );
        assert_eq!(read_frame_corr(&mut cur).unwrap().unwrap(), (9, Vec::new()));
        assert!(read_frame_corr(&mut cur).unwrap().is_none());
    }

    #[test]
    fn back_to_back_frames_parse_in_order() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"one").unwrap();
        write_frame(&mut buf, b"two").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cur = Cursor::new(&buf);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"one");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"two");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cur).unwrap().is_none());
    }
}
