//! Length-prefixed wire framing.
//!
//! One frame is a `u32` little-endian payload length followed by the
//! payload bytes — the same self-framing layout `pangea_common::codec`
//! uses inside pages, lifted onto a byte stream. Frames larger than
//! [`MAX_FRAME`] are rejected on both sides: on send as an API misuse, on
//! receive as corruption (a desynchronized or malicious peer), so a bad
//! length prefix can never make a reader allocate gigabytes.

use pangea_common::{PangeaError, Result};
use std::io::{Read, Write};

/// Upper bound on one frame's payload. Generous relative to page sizes
/// (the largest legitimate message is a page fetch or an append batch).
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Bytes of framing overhead per frame (the length prefix).
pub const FRAME_OVERHEAD: usize = 4;

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(PangeaError::usage(format!(
            "frame of {} B exceeds the {MAX_FRAME} B limit",
            payload.len()
        )));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame's payload.
///
/// Returns `Ok(None)` on a clean end-of-stream (EOF exactly at a frame
/// boundary — how a peer hangs up). EOF in the *middle* of a frame, or a
/// length prefix above [`MAX_FRAME`], is corruption.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; FRAME_OVERHEAD];
    match read_exact_or_eof(r, &mut prefix)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Partial(got) => {
            return Err(PangeaError::Corruption(format!(
                "stream ended {got} B into a frame length prefix"
            )));
        }
        ReadOutcome::Full => {}
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(PangeaError::Corruption(format!(
            "frame length {len} B exceeds the {MAX_FRAME} B limit"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            PangeaError::Corruption(format!("stream ended inside a frame expecting {len} B"))
        } else {
            PangeaError::from(e)
        }
    })?;
    Ok(Some(payload))
}

enum ReadOutcome {
    /// The buffer was filled.
    Full,
    /// EOF before the first byte.
    Eof,
    /// EOF after some bytes (count carried).
    Partial(usize),
}

fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadOutcome::Eof),
            Ok(0) => return Ok(ReadOutcome::Partial(filled)),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(ReadOutcome::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_various_sizes() {
        for len in [0usize, 1, 7, 4096, 100_000] {
            let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let mut buf = Vec::new();
            write_frame(&mut buf, &payload).unwrap();
            assert_eq!(buf.len(), FRAME_OVERHEAD + len);
            let got = read_frame(&mut Cursor::new(&buf)).unwrap().unwrap();
            assert_eq!(got, payload);
        }
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(read_frame(&mut Cursor::new(&[])).unwrap().is_none());
    }

    #[test]
    fn truncated_prefix_is_corruption() {
        let buf = [9u8, 0, 0]; // 3 of 4 prefix bytes
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf)),
            Err(PangeaError::Corruption(_))
        ));
    }

    #[test]
    fn truncated_payload_is_corruption() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full payload").unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf)),
            Err(PangeaError::Corruption(_))
        ));
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocation() {
        let mut buf = (u32::MAX).to_le_bytes().to_vec();
        buf.extend_from_slice(b"junk");
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf)),
            Err(PangeaError::Corruption(_))
        ));
    }

    #[test]
    fn oversized_send_rejected() {
        // Zero-filled huge payload; write must refuse before any I/O.
        let payload = vec![0u8; MAX_FRAME + 1];
        let mut out = Vec::new();
        assert!(matches!(
            write_frame(&mut out, &payload),
            Err(PangeaError::InvalidUsage(_))
        ));
        assert!(out.is_empty());
    }

    #[test]
    fn back_to_back_frames_parse_in_order() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"one").unwrap();
        write_frame(&mut buf, b"two").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cur = Cursor::new(&buf);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"one");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"two");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cur).unwrap().is_none());
    }
}
