//! Property tests over the wire framing and the protocol codec:
//! round-trips for arbitrary payloads, corruption on truncation at every
//! boundary, and oversized-frame rejection.

use pangea_common::PangeaError;
use pangea_net::frame::{read_frame, write_frame, FRAME_OVERHEAD, MAX_FRAME};
use pangea_net::{Request, Response};
use proptest::prelude::*;
use std::io::Cursor;

proptest! {
    /// Any sequence of payloads frames and unframes identically, in
    /// order, consuming exactly the overhead the contract names.
    #[test]
    fn frames_roundtrip_in_order(
        payloads in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..512),
            0..20,
        )
    ) {
        let mut buf = Vec::new();
        for p in &payloads {
            write_frame(&mut buf, p).unwrap();
        }
        let total: usize = payloads.iter().map(|p| p.len() + FRAME_OVERHEAD).sum();
        prop_assert_eq!(buf.len(), total);
        let mut cur = Cursor::new(&buf);
        for p in &payloads {
            prop_assert_eq!(&read_frame(&mut cur).unwrap().unwrap(), p);
        }
        prop_assert!(read_frame(&mut cur).unwrap().is_none());
    }

    /// Truncating a framed stream anywhere inside the final frame turns
    /// into a corruption error, never a short or garbled payload.
    #[test]
    fn truncation_is_always_corruption(
        payload in prop::collection::vec(any::<u8>(), 1..256),
        cut_fraction in 0usize..100,
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let cut = 1 + cut_fraction * (buf.len() - 1) / 100; // 1..buf.len()
        if cut < buf.len() {
            let mut cur = Cursor::new(&buf[..cut]);
            match read_frame(&mut cur) {
                Err(PangeaError::Corruption(_)) => {}
                other => prop_assert!(false, "cut at {cut}: {other:?}"),
            }
        }
    }

    /// A length prefix above MAX_FRAME is rejected before any payload
    /// allocation, whatever follows it on the stream.
    #[test]
    fn oversized_prefix_rejected(
        excess in 1u64..1_000_000,
        junk in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let len = (MAX_FRAME as u64 + excess).min(u32::MAX as u64) as u32;
        let mut buf = len.to_le_bytes().to_vec();
        buf.extend_from_slice(&junk);
        match read_frame(&mut Cursor::new(&buf)) {
            Err(PangeaError::Corruption(m)) => prop_assert!(m.contains("exceeds")),
            other => prop_assert!(false, "{other:?}"),
        }
    }

    /// Protocol messages survive the trip through encode → frame →
    /// unframe → decode for arbitrary record batches.
    #[test]
    fn protocol_roundtrips_through_frames(
        set in prop::collection::vec(any::<u8>(), 1..16),
        records in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..128),
            0..32,
        ),
    ) {
        let set = set.iter().map(|b| (b'a' + b % 26) as char).collect::<String>();
        let req = Request::Append { set, records: records.clone() };
        let mut buf = Vec::new();
        write_frame(&mut buf, &req.encode()).unwrap();
        let unframed = read_frame(&mut Cursor::new(&buf)).unwrap().unwrap();
        prop_assert_eq!(Request::decode(&unframed).unwrap(), req);

        let resp = Response::Records { records };
        let mut buf = Vec::new();
        write_frame(&mut buf, &resp.encode()).unwrap();
        let unframed = read_frame(&mut Cursor::new(&buf)).unwrap().unwrap();
        prop_assert_eq!(Response::decode(&unframed).unwrap(), resp);
    }
}
