//! Property tests over the wire framing and the protocol codec:
//! round-trips for arbitrary payloads, corruption on truncation at every
//! boundary, and oversized-frame rejection.

use pangea_common::PangeaError;
use pangea_net::frame::{
    read_frame, read_frame_corr, write_frame, write_frame_corr, FRAME_CORR_OVERHEAD,
    FRAME_OVERHEAD, MAX_FRAME,
};
use pangea_net::{
    CmpOp, EmitSpec, FilterSpec, KeySpec, MapSpec, ReduceOp, ReduceSpec, RepairFilter, Request,
    Response, SchemeSpec, TaskSpec, TraceCtx, WireCatalogEntry, WireMetric, WireSpan, WireWorker,
    WorkerState,
};
use proptest::prelude::*;
use std::io::Cursor;

/// Lowercase ascii identifier from arbitrary bytes (set/key names).
fn ident(bytes: &[u8]) -> String {
    bytes.iter().map(|b| (b'a' + b % 26) as char).collect()
}

fn key_spec(delim: u8, index: u32, whole: bool) -> KeySpec {
    if whole {
        KeySpec::WholeRecord
    } else {
        KeySpec::Field { delim, index }
    }
}

fn scheme_spec(name: &[u8], partitions: u32, hash: bool, key: KeySpec) -> SchemeSpec {
    // Zero partitions are rejected at decode (typed corruption), so the
    // roundtrip generators stay in the encodable domain.
    let partitions = partitions.max(1);
    if hash {
        SchemeSpec::Hash {
            key_name: ident(name),
            partitions,
            key,
        }
    } else {
        SchemeSpec::RoundRobin { partitions }
    }
}

fn cmp_of(tag: u8) -> CmpOp {
    match tag % 6 {
        0 => CmpOp::Lt,
        1 => CmpOp::Le,
        2 => CmpOp::Gt,
        3 => CmpOp::Ge,
        4 => CmpOp::Eq,
        _ => CmpOp::Ne,
    }
}

#[allow(clippy::too_many_arguments)]
fn map_spec(
    filter_tag: u8,
    filter_key: KeySpec,
    value: &[u8],
    cmp_value: i64,
    emit_tag: u8,
    emit_key: KeySpec,
    delim: u8,
    indices: &[u32],
) -> MapSpec {
    let emit = match emit_tag % 4 {
        0 => EmitSpec::Record,
        1 => EmitSpec::Key(emit_key),
        2 => EmitSpec::Fields {
            delim,
            indices: indices.to_vec(),
        },
        _ => EmitSpec::Tokens { delim },
    };
    let filter = match filter_tag % 4 {
        0 => None,
        1 => Some(FilterSpec::KeyPresent { key: filter_key }),
        2 => Some(FilterSpec::KeyEquals {
            key: filter_key,
            value: value.to_vec(),
        }),
        _ => Some(FilterSpec::KeyCompare {
            key: filter_key,
            cmp: cmp_of(filter_tag),
            value: cmp_value,
        }),
    };
    MapSpec { filter, emit }
}

fn reduce_spec(tag: u8, key: KeySpec, delim: u8, value_index: u32) -> Option<ReduceSpec> {
    let op = match tag % 5 {
        0 => return None,
        1 => ReduceOp::Count,
        2 => ReduceOp::Sum,
        3 => ReduceOp::Min,
        _ => ReduceOp::Max,
    };
    Some(ReduceSpec {
        key,
        op,
        // A delimiter a rendered decimal value could contain is
        // rejected at decode; keep the roundtrip generator in the
        // encodable domain.
        delim: if ReduceSpec::delim_ok(delim) {
            delim
        } else {
            b'|'
        },
        value_index,
    })
}

fn state_of(tag: u8) -> WorkerState {
    match tag % 3 {
        0 => WorkerState::Alive,
        1 => WorkerState::Dead,
        _ => WorkerState::Left,
    }
}

fn roundtrip_req(req: Request) {
    let mut buf = Vec::new();
    write_frame(&mut buf, &req.encode()).unwrap();
    let unframed = read_frame(&mut Cursor::new(&buf)).unwrap().unwrap();
    assert_eq!(Request::decode(&unframed).unwrap(), req);
}

fn roundtrip_resp(resp: Response) {
    let mut buf = Vec::new();
    write_frame(&mut buf, &resp.encode()).unwrap();
    let unframed = read_frame(&mut Cursor::new(&buf)).unwrap().unwrap();
    assert_eq!(Response::decode(&unframed).unwrap(), resp);
}

/// A page (or repair batch) reply bigger than one frame is refused on
/// the *send* side as API misuse — an oversized recovery payload can
/// never desynchronize the stream or force a peer allocation.
#[test]
fn oversized_page_and_repair_replies_are_rejected_at_the_frame() {
    let page = Response::Page {
        bytes: vec![7u8; MAX_FRAME + 1],
    };
    let mut buf = Vec::new();
    match write_frame(&mut buf, &page.encode()) {
        Err(PangeaError::InvalidUsage(m)) => assert!(m.contains("exceeds")),
        other => panic!("oversized page must be refused, got {other:?}"),
    }
    assert!(buf.is_empty(), "nothing may reach the wire");

    let batch = Request::RecoverAppend {
        set: "users".into(),
        records: vec![vec![0u8; MAX_FRAME / 2]; 3],
    };
    match write_frame(&mut buf, &batch.encode()) {
        Err(PangeaError::InvalidUsage(_)) => {}
        other => panic!("oversized repair batch must be refused, got {other:?}"),
    }

    // Same contract for a map-shuffle ingest batch.
    let ingest = Request::IngestAppend {
        set: "words".into(),
        entries: vec![(7, vec![0u8; MAX_FRAME / 2]); 3],
    };
    match write_frame(&mut buf, &ingest.encode()) {
        Err(PangeaError::InvalidUsage(_)) => {}
        other => panic!("oversized ingest batch must be refused, got {other:?}"),
    }
}

/// A hand-crafted zero-partition scheme round-trips the frame but is
/// rejected at decode with a typed corruption error — the wire guard
/// now matches the driver-side `PartitionScheme`, which clamps at
/// construction, so the two sides can never disagree on the routing
/// modulus.
#[test]
fn zero_partition_scheme_specs_are_rejected_at_decode() {
    for hash in [false, true] {
        let spec = if hash {
            SchemeSpec::Hash {
                key_name: "k".into(),
                partitions: 0,
                key: KeySpec::WholeRecord,
            }
        } else {
            SchemeSpec::RoundRobin { partitions: 0 }
        };
        let enc = Request::MgrRegisterSet {
            name: "bad".into(),
            scheme: spec,
        }
        .encode();
        match Request::decode(&enc) {
            Err(PangeaError::Corruption(m)) => {
                assert!(m.contains("zero partitions"), "{m}");
            }
            other => panic!("zero-partition spec must not decode: {other:?}"),
        }
    }
}

/// A reduce delimiter that can appear inside a rendered decimal value
/// (`-` or a digit) would make the `key|value` partial encoding
/// ambiguous; the wire rejects it at decode with a typed corruption
/// error.
#[test]
fn ambiguous_reduce_delimiters_are_rejected_at_decode() {
    for delim in [b'-', b'0', b'7', b'9'] {
        assert!(!ReduceSpec::delim_ok(delim));
        let enc = Request::IngestBegin {
            set: "counts".into(),
            reduce: Some(ReduceSpec {
                key: KeySpec::WholeRecord,
                op: ReduceOp::Min,
                delim,
                value_index: 0,
            }),
        }
        .encode();
        match Request::decode(&enc) {
            Err(PangeaError::Corruption(m)) => assert!(m.contains("delimiter"), "{m}"),
            other => panic!("delim {delim:#04x} must not decode: {other:?}"),
        }
    }
    assert!(ReduceSpec::delim_ok(b'|') && ReduceSpec::delim_ok(b' '));
}

proptest! {
    /// Any sequence of payloads frames and unframes identically, in
    /// order, consuming exactly the overhead the contract names.
    #[test]
    fn frames_roundtrip_in_order(
        payloads in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..512),
            0..20,
        )
    ) {
        let mut buf = Vec::new();
        for p in &payloads {
            write_frame(&mut buf, p).unwrap();
        }
        let total: usize = payloads.iter().map(|p| p.len() + FRAME_OVERHEAD).sum();
        prop_assert_eq!(buf.len(), total);
        let mut cur = Cursor::new(&buf);
        for p in &payloads {
            prop_assert_eq!(&read_frame(&mut cur).unwrap().unwrap(), p);
        }
        prop_assert!(read_frame(&mut cur).unwrap().is_none());
    }

    /// Correlated frames round-trip id and payload exactly, in order,
    /// and correlation 0 is byte-identical to a legacy frame — the
    /// header stays version-tolerant in both directions.
    #[test]
    fn correlated_frames_roundtrip_in_order(
        frames in prop::collection::vec(
            (any::<u64>(), prop::collection::vec(any::<u8>(), 0..512)),
            0..20,
        )
    ) {
        let mut buf = Vec::new();
        for (corr, p) in &frames {
            write_frame_corr(&mut buf, *corr, p).unwrap();
        }
        let total: usize = frames
            .iter()
            .map(|(corr, p)| {
                p.len() + if *corr == 0 { FRAME_OVERHEAD } else { FRAME_CORR_OVERHEAD }
            })
            .sum();
        prop_assert_eq!(buf.len(), total);
        let mut cur = Cursor::new(&buf);
        for (corr, p) in &frames {
            let (got_corr, got) = read_frame_corr(&mut cur).unwrap().unwrap();
            prop_assert_eq!(got_corr, *corr);
            prop_assert_eq!(&got, p);
        }
        prop_assert!(read_frame_corr(&mut cur).unwrap().is_none());
    }

    /// A legacy (unflagged) frame decodes through the correlated reader
    /// as correlation 0 — pre-multiplexing peers stay on strict-serial
    /// ordering without any handshake.
    #[test]
    fn legacy_frames_decode_as_correlation_zero(
        payload in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let (corr, got) = read_frame_corr(&mut Cursor::new(&buf)).unwrap().unwrap();
        prop_assert_eq!(corr, 0);
        prop_assert_eq!(got, payload);
    }

    /// Truncating a correlated frame at every cut point — inside the
    /// prefix, inside the correlation id, or inside the payload — is a
    /// corruption error, never a short or garbled payload.
    #[test]
    fn correlated_truncation_is_always_corruption(
        corr in 1u64..u64::MAX,
        payload in prop::collection::vec(any::<u8>(), 1..256),
        cut_fraction in 0usize..100,
    ) {
        let mut buf = Vec::new();
        write_frame_corr(&mut buf, corr, &payload).unwrap();
        let cut = 1 + cut_fraction * (buf.len() - 1) / 100; // 1..buf.len()
        if cut < buf.len() {
            match read_frame_corr(&mut Cursor::new(&buf[..cut])) {
                Err(PangeaError::Corruption(_)) => {}
                other => prop_assert!(false, "cut at {cut}: {other:?}"),
            }
        }
    }

    /// Garbage prefixes never panic the correlated reader: any random
    /// byte stream either yields frames or a typed corruption error.
    #[test]
    fn garbage_never_panics_the_correlated_reader(
        junk in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut cur = Cursor::new(&junk);
        while let Ok(Some(_)) = read_frame_corr(&mut cur) {}
    }

    /// Truncating a framed stream anywhere inside the final frame turns
    /// into a corruption error, never a short or garbled payload.
    #[test]
    fn truncation_is_always_corruption(
        payload in prop::collection::vec(any::<u8>(), 1..256),
        cut_fraction in 0usize..100,
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let cut = 1 + cut_fraction * (buf.len() - 1) / 100; // 1..buf.len()
        if cut < buf.len() {
            let mut cur = Cursor::new(&buf[..cut]);
            match read_frame(&mut cur) {
                Err(PangeaError::Corruption(_)) => {}
                other => prop_assert!(false, "cut at {cut}: {other:?}"),
            }
        }
    }

    /// A length prefix above MAX_FRAME is rejected before any payload
    /// allocation, whatever follows it on the stream.
    #[test]
    fn oversized_prefix_rejected(
        excess in 1u64..1_000_000,
        junk in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let len = (MAX_FRAME as u64 + excess).min(u32::MAX as u64) as u32;
        let mut buf = len.to_le_bytes().to_vec();
        buf.extend_from_slice(&junk);
        match read_frame(&mut Cursor::new(&buf)) {
            Err(PangeaError::Corruption(m)) => prop_assert!(m.contains("exceeds")),
            other => prop_assert!(false, "{other:?}"),
        }
    }

    /// Protocol messages survive the trip through encode → frame →
    /// unframe → decode for arbitrary record batches.
    #[test]
    fn protocol_roundtrips_through_frames(
        set in prop::collection::vec(any::<u8>(), 1..16),
        records in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..128),
            0..32,
        ),
    ) {
        let req = Request::Append { set: ident(&set), records: records.clone() };
        roundtrip_req(req);
        roundtrip_resp(Response::Records { records });
    }

    /// Partitioning schemes (both kinds, both key specs, arbitrary
    /// delimiters including NUL and `0xff`) survive the catalog wire.
    #[test]
    fn scheme_specs_roundtrip_through_frames(
        name in prop::collection::vec(any::<u8>(), 1..24),
        partitions in any::<u32>(),
        hash in any::<bool>(),
        whole in any::<bool>(),
        delim in any::<u8>(),
        index in any::<u32>(),
    ) {
        let scheme = scheme_spec(&name, partitions, hash, key_spec(delim, index, whole));
        roundtrip_req(Request::MgrRegisterSet {
            name: ident(&name),
            scheme,
        });
    }

    /// Catalog entries — with or without a group, arbitrary statistics —
    /// survive the trip inside a `CatalogEntry` response.
    #[test]
    fn catalog_entries_roundtrip_through_frames(
        name in prop::collection::vec(any::<u8>(), 1..24),
        partitions in any::<u32>(),
        hash in any::<bool>(),
        whole in any::<bool>(),
        delim in any::<u8>(),
        index in any::<u32>(),
        has_group in any::<bool>(),
        group in any::<u64>(),
        objects in any::<u64>(),
        bytes in any::<u64>(),
        present in any::<bool>(),
    ) {
        let entry = WireCatalogEntry {
            name: ident(&name),
            scheme: scheme_spec(&name, partitions, hash, key_spec(delim, index, whole)),
            // Group ids are nonzero on the wire (0 marks "no group").
            group: has_group.then_some(group | 1),
            objects,
            bytes,
        };
        roundtrip_resp(Response::CatalogEntry {
            entry: present.then_some(entry),
        });
    }

    /// Recovery wire types — repair filters over arbitrary schemes,
    /// peer lists, candidate batches, hash lists, and push outcomes —
    /// survive the trip through encode → frame → unframe → decode.
    #[test]
    fn recovery_messages_roundtrip_through_frames(
        name in prop::collection::vec(any::<u8>(), 1..24),
        partitions in any::<u32>(),
        hash in any::<bool>(),
        whole in any::<bool>(),
        delim in any::<u8>(),
        index in any::<u32>(),
        all in any::<bool>(),
        failed in any::<u32>(),
        nodes in any::<u32>(),
        peers in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..24), 0..6),
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..96), 0..24),
        hashes in prop::collection::vec(any::<u64>(), 0..64),
        counters in prop::collection::vec(any::<u64>(), 5..=5),
    ) {
        let filter = match (all, failed.is_multiple_of(3)) {
            (true, true) => RepairFilter::Absent,
            (true, false) => RepairFilter::All,
            _ => RepairFilter::Lost {
                scheme: scheme_spec(&name, partitions, hash, key_spec(delim, index, whole)),
                failed,
                nodes,
            },
        };
        roundtrip_req(Request::RecoverPush {
            source_set: ident(&name),
            target_set: ident(&name),
            target_addr: ident(&peers.first().cloned().unwrap_or_default()),
            filter,
        });
        roundtrip_req(Request::RepairLedger {
            set: ident(&name),
            start: counters[4],
        });
        roundtrip_req(Request::RecoverBegin {
            set: ident(&name),
            present_from: peers.iter().map(|p| ident(p)).collect(),
        });
        roundtrip_req(Request::RecoverAppend {
            set: ident(&name),
            records: records.clone(),
        });
        roundtrip_req(Request::HashList {
            set: ident(&name),
            start_page: counters[0],
            start_record: counters[1],
        });
        roundtrip_req(Request::RecoverEnd { set: ident(&name) });
        roundtrip_resp(Response::Hashes {
            hashes,
            next: all.then_some((counters[2], counters[3])),
        });
        roundtrip_resp(Response::RepairAck {
            appended: counters[0],
            bytes: counters[1],
            credit: counters[2],
        });
        roundtrip_resp(Response::Pushed {
            scanned: counters[0],
            pushed: counters[1],
            pushed_bytes: counters[2],
            appended: counters[3],
            appended_bytes: counters[4],
        });
    }

    /// Map-shuffle wire types — map specs over every filter/emit shape
    /// (including numeric comparisons and flat-map tokenization), full
    /// task specs with arbitrary destination tables and optional
    /// reduces over every fold, tagged ingest batches, and task/ingest
    /// acks — survive the trip through encode → frame → unframe →
    /// decode.
    #[test]
    fn map_shuffle_messages_roundtrip_through_frames(
        name in prop::collection::vec(any::<u8>(), 1..24),
        partitions in any::<u32>(),
        hash in any::<bool>(),
        whole in any::<bool>(),
        delim in any::<u8>(),
        index in any::<u32>(),
        filter_tag in any::<u8>(),
        value in prop::collection::vec(any::<u8>(), 0..24),
        cmp_value in any::<i64>(),
        emit_tag in any::<u8>(),
        indices in prop::collection::vec(any::<u32>(), 0..8),
        reduce_tag in any::<u8>(),
        nodes in any::<u32>(),
        source in any::<u32>(),
        dests in prop::collection::vec(
            (any::<u32>(), prop::collection::vec(any::<u8>(), 0..24)),
            0..8,
        ),
        entries in prop::collection::vec(
            (any::<u64>(), prop::collection::vec(any::<u8>(), 0..96)),
            0..24,
        ),
        counters in prop::collection::vec(any::<u64>(), 5..=5),
    ) {
        let key = key_spec(delim, index, whole);
        let reduce = reduce_spec(reduce_tag, key, delim, index);
        let spec = TaskSpec {
            input: ident(&name),
            output: ident(&name),
            map: map_spec(filter_tag, key, &value, cmp_value, emit_tag, key, delim, &indices),
            reduce: reduce.clone(),
            scheme: scheme_spec(&name, partitions, hash, key),
            nodes,
            source,
            dests: dests.iter().map(|(n, a)| (*n, ident(a))).collect(),
            window: partitions,
        };
        roundtrip_req(Request::TaskRun { spec });
        roundtrip_req(Request::IngestBegin { set: ident(&name), reduce });
        roundtrip_req(Request::IngestAppend {
            set: ident(&name),
            entries,
        });
        roundtrip_req(Request::IngestEnd { set: ident(&name) });
        roundtrip_resp(Response::TaskDone {
            scanned: counters[0],
            emitted: counters[1],
            emitted_bytes: counters[2],
            appended: counters[3],
            appended_bytes: counters[4],
        });
        roundtrip_resp(Response::IngestAck {
            appended: counters[0],
            bytes: counters[1],
            credit: counters[2],
        });
    }

    /// Truncating an encoded task-run request anywhere inside produces
    /// a decode error, never a short or garbled task — including the
    /// reduce-carrying form.
    #[test]
    fn truncated_task_run_is_an_error(
        name in prop::collection::vec(any::<u8>(), 1..16),
        partitions in any::<u32>(),
        delim in any::<u8>(),
        index in any::<u32>(),
        reduce_tag in any::<u8>(),
        nodes in any::<u32>(),
        source in any::<u32>(),
        cut_fraction in 0usize..100,
    ) {
        let key = key_spec(delim, index, false);
        let enc = Request::TaskRun {
            spec: TaskSpec {
                input: ident(&name),
                output: ident(&name),
                map: MapSpec::extract(key),
                reduce: reduce_spec(reduce_tag | 1, key, delim, index),
                scheme: scheme_spec(&name, partitions, true, key),
                nodes,
                source,
                dests: vec![(0, "127.0.0.1:7781".into()), (1, "127.0.0.1:7782".into())],
                window: partitions,
            },
        }
        .encode();
        let cut = 1 + cut_fraction * (enc.len() - 1) / 100;
        if cut < enc.len() {
            prop_assert!(Request::decode(&enc[..cut]).is_err(), "cut at {cut} decoded");
        }
    }

    /// Truncating an encoded recovery message anywhere inside produces a
    /// decode error, never a short or garbled message.
    #[test]
    fn truncated_recovery_push_is_an_error(
        name in prop::collection::vec(any::<u8>(), 1..16),
        partitions in any::<u32>(),
        delim in any::<u8>(),
        index in any::<u32>(),
        failed in any::<u32>(),
        nodes in any::<u32>(),
        cut_fraction in 0usize..100,
    ) {
        let enc = Request::RecoverPush {
            source_set: ident(&name),
            target_set: ident(&name),
            target_addr: "127.0.0.1:7781".into(),
            filter: RepairFilter::Lost {
                scheme: scheme_spec(&name, partitions, true, key_spec(delim, index, false)),
                failed,
                nodes,
            },
        }
        .encode();
        let cut = 1 + cut_fraction * (enc.len() - 1) / 100;
        if cut < enc.len() {
            prop_assert!(Request::decode(&enc[..cut]).is_err(), "cut at {cut} decoded");
        }
    }

    /// Garbage bytes never decode to a recovery message silently: decode
    /// either fails or re-encodes to a prefix-consistent message (the
    /// codec's length prefixes make random acceptance vanishingly rare).
    #[test]
    fn garbage_never_panics_the_decoder(
        junk in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = Request::decode(&junk);
        let _ = Response::decode(&junk);
    }

    /// Membership messages — registration (fresh or slot-pinned),
    /// heartbeats, deregistration, and worker snapshots in every state —
    /// survive the trip.
    #[test]
    fn membership_messages_roundtrip_through_frames(
        addr in prop::collection::vec(any::<u8>(), 0..32),
        has_slot in any::<bool>(),
        slot in any::<u32>(),
        node in any::<u32>(),
        epoch in any::<u64>(),
        workers in prop::collection::vec(
            (any::<u32>(), prop::collection::vec(any::<u8>(), 0..32), any::<u64>(), any::<u8>()),
            0..8,
        ),
    ) {
        roundtrip_req(Request::MgrRegisterWorker {
            addr: ident(&addr),
            slot: has_slot.then_some(u64::from(slot)),
        });
        roundtrip_req(Request::MgrHeartbeat { node, epoch });
        roundtrip_req(Request::MgrDeregisterWorker { node, epoch });
        roundtrip_resp(Response::WorkerRegistered { node, epoch });
        roundtrip_resp(Response::Workers {
            workers: workers
                .into_iter()
                .map(|(node, addr, epoch, state)| WireWorker {
                    node,
                    addr: ident(&addr),
                    epoch,
                    state: state_of(state),
                })
                .collect(),
        });
    }

    /// Every manager catalog/statistics request — including the
    /// payload-free ones — survives the frame trip byte-identically.
    #[test]
    fn manager_catalog_requests_roundtrip_through_frames(
        name in prop::collection::vec(any::<u8>(), 0..32),
        other in prop::collection::vec(any::<u8>(), 0..32),
        objects in any::<u64>(),
        bytes in any::<u64>(),
        group in any::<u64>(),
    ) {
        roundtrip_req(Request::MgrListWorkers);
        roundtrip_req(Request::MgrDeregisterSet { name: ident(&name) });
        roundtrip_req(Request::MgrEntry { name: ident(&name) });
        roundtrip_req(Request::MgrSetNames);
        roundtrip_req(Request::MgrAddStats {
            name: ident(&name),
            objects,
            bytes,
        });
        roundtrip_req(Request::MgrLinkReplicas {
            a: ident(&name),
            b: ident(&other),
        });
        roundtrip_req(Request::MgrGroupMembers { group });
        roundtrip_req(Request::MgrGroups);
        roundtrip_req(Request::MgrBestReplica {
            set: ident(&name),
            key: ident(&other),
        });
    }

    /// A trace context survives the trip on any request, and every
    /// untraced (pre-envelope) frame decodes with `None` — the trailer
    /// is strictly additive.
    #[test]
    fn trace_contexts_roundtrip_through_frames(
        set in prop::collection::vec(any::<u8>(), 1..16),
        job in any::<u64>(),
        span in any::<u64>(),
        traced in any::<bool>(),
    ) {
        let req = Request::Scan { set: ident(&set) };
        let ctx = TraceCtx { job, span };
        let mut buf = Vec::new();
        let enc = if traced { req.encode_traced(Some(&ctx)) } else { req.encode() };
        write_frame(&mut buf, &enc).unwrap();
        let unframed = read_frame(&mut Cursor::new(&buf)).unwrap().unwrap();
        let (back, got) = Request::decode_traced(&unframed).unwrap();
        prop_assert_eq!(back, req);
        prop_assert_eq!(got, if traced { Some(ctx) } else { None });
    }

    /// Truncating a traced frame anywhere never panics: cuts inside the
    /// trailer decode the request with `None`, cuts inside the body stay
    /// hard errors.
    #[test]
    fn truncated_trace_trailer_never_panics(
        job in any::<u64>(),
        span in any::<u64>(),
        cut_fraction in 0.0f64..1.0,
    ) {
        let req = Request::Stats;
        let body_len = req.encode().len();
        let enc = req.encode_traced(Some(&TraceCtx { job, span }));
        let cut = ((enc.len() as f64) * cut_fraction) as usize;
        match Request::decode_traced(&enc[..cut]) {
            Ok((back, got)) => {
                prop_assert_eq!(back, req);
                prop_assert!(cut >= body_len, "body cut must not decode");
                prop_assert!(got.is_none() || cut == enc.len());
            }
            Err(_) => prop_assert!(cut < body_len, "trailer cut must not error"),
        }
    }

    /// Arbitrary garbage appended after a valid body is ignored by the
    /// traced decoder (forward compatibility with future trailers) —
    /// unless it happens to be a complete marked triple.
    #[test]
    fn garbage_trailers_degrade_to_none(
        junk in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let req = Request::Ping;
        let mut enc = req.encode();
        enc.extend_from_slice(&junk);
        let (back, got) = Request::decode_traced(&enc).unwrap();
        prop_assert_eq!(back, req);
        // An 8-byte marker colliding out of random junk is possible in
        // principle; assert only that a context, when parsed, came from
        // a junk run long enough to hold the marked triple's records.
        if got.is_some() {
            prop_assert!(junk.len() >= 24);
        }
    }

    /// Metrics-dump messages — arbitrary metric mixes, span batches,
    /// and both cursor shapes — survive the trip.
    #[test]
    fn metrics_messages_roundtrip_through_frames(
        metrics_start in any::<u64>(),
        spans_start in any::<u64>(),
        has_next in any::<bool>(),
        metrics in prop::collection::vec(
            (any::<u8>(), prop::collection::vec(any::<u8>(), 1..16), any::<u64>(), any::<u64>(),
             prop::collection::vec(any::<u64>(), 0..8)),
            0..8,
        ),
        spans in prop::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(),
             prop::collection::vec(any::<u8>(), 0..16), any::<u64>()),
            0..8,
        ),
    ) {
        roundtrip_req(Request::MetricsDump { metrics_start, spans_start });
        let metrics = metrics
            .into_iter()
            .map(|(kind, name, a, b, buckets)| match kind % 3 {
                0 => WireMetric::Counter { name: ident(&name), value: a },
                1 => WireMetric::Gauge { name: ident(&name), value: a },
                _ => WireMetric::Histogram { name: ident(&name), count: a, sum: b, buckets },
            })
            .collect();
        let spans = spans
            .into_iter()
            .map(|(seq, job, span, parent, op, start_ns)| WireSpan {
                seq,
                job,
                span,
                parent,
                op: ident(&op),
                peer: "127.0.0.1:0".to_string(),
                start_ns,
                end_ns: start_ns.wrapping_add(17),
                bytes: seq ^ job,
                outcome: "ok".to_string(),
            })
            .collect();
        roundtrip_resp(Response::Metrics {
            metrics,
            spans,
            next: has_next.then_some((metrics_start, spans_start)),
        });
    }

    /// Trace-query/push messages — arbitrary node names, span batches,
    /// drop counts, and both cursor shapes — survive the trip.
    #[test]
    fn trace_messages_roundtrip_through_frames(
        job in any::<u64>(),
        start in any::<u64>(),
        dropped in any::<u64>(),
        has_next in any::<bool>(),
        node in prop::collection::vec(any::<u8>(), 0..12),
        spans in prop::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(),
             prop::collection::vec(any::<u8>(), 0..16), any::<u64>()),
            0..8,
        ),
    ) {
        roundtrip_req(Request::TraceQuery { job, start });
        let wire: Vec<WireSpan> = spans
            .into_iter()
            .map(|(seq, job, span, parent, op, start_ns)| WireSpan {
                seq,
                job,
                span,
                parent,
                op: ident(&op),
                peer: "127.0.0.1:0".to_string(),
                start_ns,
                end_ns: start_ns.wrapping_add(29),
                bytes: seq ^ span,
                outcome: "ok".to_string(),
            })
            .collect();
        roundtrip_req(Request::TracePush {
            node: ident(&node),
            spans: wire.clone(),
        });
        roundtrip_resp(Response::Trace {
            spans: wire.into_iter().map(|s| (ident(&node), s)).collect(),
            dropped,
            next: has_next.then_some(start),
        });
    }

    /// Truncating an encoded trace message at any boundary is a hard
    /// error, never a panic or a silently shortened span list.
    #[test]
    fn truncated_trace_messages_are_errors(
        cut_fraction in 0.0f64..1.0,
        as_response in any::<bool>(),
    ) {
        let span = WireSpan {
            seq: 1,
            job: 2,
            span: 3,
            parent: 0,
            op: "TaskRun".to_string(),
            peer: "127.0.0.1:0".to_string(),
            start_ns: 5,
            end_ns: 6,
            bytes: 7,
            outcome: "ok".to_string(),
        };
        let enc = if as_response {
            Response::Trace {
                spans: vec![("w0".to_string(), span)],
                dropped: 9,
                next: Some(4),
            }
            .encode()
        } else {
            Request::TracePush {
                node: "driver".to_string(),
                spans: vec![span],
            }
            .encode()
        };
        let cut = ((enc.len() as f64) * cut_fraction) as usize;
        if cut < enc.len() {
            if as_response {
                prop_assert!(Response::decode(&enc[..cut]).is_err());
            } else {
                prop_assert!(Request::decode(&enc[..cut]).is_err());
            }
        }
    }

    /// Arbitrary garbage bytes never panic either trace-side decoder.
    #[test]
    fn garbage_never_panics_trace_decoders(
        junk in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let _ = Request::decode(&junk);
        let _ = Response::decode(&junk);
    }
}

/// A span push bigger than one frame is refused on the send side, like
/// oversized pages and repair batches — a runaway driver ring can never
/// desynchronize the manager connection.
#[test]
fn oversized_trace_push_is_rejected_at_the_frame() {
    let fat = WireSpan {
        seq: 0,
        job: 0,
        span: 0,
        parent: 0,
        op: "x".repeat(MAX_FRAME / 4),
        peer: String::new(),
        start_ns: 0,
        end_ns: 0,
        bytes: 0,
        outcome: "ok".into(),
    };
    let push = Request::TracePush {
        node: "driver".into(),
        spans: vec![fat.clone(), fat.clone(), fat.clone(), fat],
    };
    let mut buf = Vec::new();
    match write_frame(&mut buf, &push.encode()) {
        Err(PangeaError::InvalidUsage(_)) => {}
        other => panic!("oversized trace push must be refused, got {other:?}"),
    }
    assert!(buf.is_empty(), "nothing may reach the wire");
}
