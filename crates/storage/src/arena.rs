//! The shared-memory arena backing one node's buffer pool.
//!
//! Stands in for the paper's anonymous `mmap` region (§5): one large,
//! page-aligned allocation whose lifetime equals the storage node's. The
//! arena itself is dumb memory; placement comes from `pangea-alloc` and
//! aliasing discipline from the buffer pool's per-frame locks.
//!
//! # Safety invariants
//!
//! * The allocation lives until the `Arena` is dropped; all raw slices
//!   handed out are invalidated before then by the buffer pool (guards
//!   borrow from frames, frames are dropped before the pool's arena).
//! * Callers of [`Arena::slice`] / [`Arena::slice_mut`] must guarantee that
//!   `[offset, offset+len)` lies inside the arena (checked here with
//!   asserts) **and** that the range is not aliased mutably elsewhere —
//!   the buffer pool guarantees this by (a) allocating non-overlapping
//!   blocks and (b) wrapping access in per-frame RwLocks.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::ptr::NonNull;

/// Alignment of the arena base; matches a typical OS page.
const ARENA_ALIGN: usize = 4096;

/// One contiguous, heap-allocated memory region.
#[derive(Debug)]
pub struct Arena {
    base: NonNull<u8>,
    len: usize,
}

// SAFETY: the arena is a plain byte region; synchronization of access is
// the caller's responsibility (enforced by the buffer pool's frame locks).
unsafe impl Send for Arena {}
unsafe impl Sync for Arena {}

impl Arena {
    /// Allocates a zeroed arena of `len` bytes.
    ///
    /// # Panics
    /// Panics if `len` is zero or allocation fails (a storage node cannot
    /// run without its buffer pool).
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "arena must be non-empty");
        let layout = Layout::from_size_align(len, ARENA_ALIGN).expect("bad arena layout");
        // SAFETY: layout has non-zero size (asserted above).
        let ptr = unsafe { alloc_zeroed(layout) };
        let base = NonNull::new(ptr).expect("arena allocation failed");
        Self { base, len }
    }

    /// Arena size in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the arena has zero length (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a shared slice of the range.
    ///
    /// # Safety
    /// Caller must ensure no concurrent mutable access to this range. The
    /// buffer pool enforces this with per-frame RwLocks.
    #[inline]
    pub unsafe fn slice(&self, offset: usize, len: usize) -> &[u8] {
        assert!(
            offset.checked_add(len).is_some_and(|end| end <= self.len),
            "arena slice [{offset}, {offset}+{len}) out of bounds ({})",
            self.len
        );
        std::slice::from_raw_parts(self.base.as_ptr().add(offset), len)
    }

    /// Returns a mutable slice of the range.
    ///
    /// # Safety
    /// Caller must ensure this range is not aliased at all for the duration
    /// of the borrow. The buffer pool enforces this with per-frame RwLocks
    /// plus the non-overlap guarantee of the pool allocator.
    #[inline]
    #[allow(clippy::mut_from_ref)] // interior mutability via external locking
    pub unsafe fn slice_mut(&self, offset: usize, len: usize) -> &mut [u8] {
        assert!(
            offset.checked_add(len).is_some_and(|end| end <= self.len),
            "arena slice [{offset}, {offset}+{len}) out of bounds ({})",
            self.len
        );
        std::slice::from_raw_parts_mut(self.base.as_ptr().add(offset), len)
    }
}

impl Drop for Arena {
    fn drop(&mut self) {
        let layout = Layout::from_size_align(self.len, ARENA_ALIGN).expect("bad arena layout");
        // SAFETY: base was allocated with exactly this layout in `new`.
        unsafe { dealloc(self.base.as_ptr(), layout) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_is_zeroed_and_writable() {
        let a = Arena::new(4096);
        // SAFETY: test owns the arena exclusively.
        unsafe {
            assert!(a.slice(0, 4096).iter().all(|&b| b == 0));
            a.slice_mut(100, 4).copy_from_slice(&[1, 2, 3, 4]);
            assert_eq!(a.slice(100, 4), &[1, 2, 3, 4]);
            // Neighbouring bytes untouched.
            assert_eq!(a.slice(99, 1), &[0]);
            assert_eq!(a.slice(104, 1), &[0]);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_slice_panics() {
        let a = Arena::new(64);
        // SAFETY: bounds check fires before any deref.
        unsafe {
            let _ = a.slice(60, 8);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn overflowing_range_panics() {
        let a = Arena::new(64);
        // SAFETY: bounds check fires before any deref.
        unsafe {
            let _ = a.slice(usize::MAX, 2);
        }
    }
}
